//! FaaSnap reproduction — umbrella crate.
//!
//! Re-exports the workspace's public API so examples and integration
//! tests can use one import root. See the individual crates for detail:
//!
//! - [`sim_core`], [`sim_storage`], [`sim_mm`], [`sim_vm`] — the
//!   simulated host substrate.
//! - [`faas_workloads`] — the Table 2 functions.
//! - [`faasnap`] — the paper's contribution and its baselines.
//! - [`faasnap_daemon`] — the platform layer.

#![forbid(unsafe_code)]
pub use faas_workloads;
pub use faasnap;
pub use faasnap_daemon;
pub use sim_core;
pub use sim_mm;
pub use sim_storage;
pub use sim_vm;
