//! Burst-parallel serverless invocations (the §6.6 scenario): an IoT
//! event or analytics job fans out many simultaneous invocations.
//!
//! Runs 1–32-way bursts of the `json` function under Firecracker, REAP,
//! and FaaSnap, from both shared and per-application snapshots, on one
//! simulated host (shared page cache, disk queue, and CPU pool).
//!
//! ```sh
//! cargo run --release --example bursty_platform
//! ```

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::TextTable;
use faasnap_daemon::platform::{BurstKind, Platform};
use sim_storage::profiles::DiskProfile;

fn main() {
    let mut table = TextTable::new(
        "json bursts: mean per-invocation latency (ms)",
        &["snapshots", "parallelism", "Firecracker", "REAP", "FaaSnap"],
    );
    for (kind, kind_label) in [
        (BurstKind::SameSnapshot, "same"),
        (BurstKind::DifferentSnapshots, "different"),
    ] {
        for parallelism in [1u32, 4, 16, 32] {
            let mut cells = Vec::new();
            for strategy in [
                RestoreStrategy::Vanilla,
                RestoreStrategy::Reap,
                RestoreStrategy::faasnap(),
            ] {
                // Fresh platform per cell so disk/cache state is comparable.
                let mut platform = Platform::new(DiskProfile::nvme_c5d(), 99);
                let json = faas_workloads::by_name("json").expect("catalog");
                platform.register(json.clone());
                platform
                    .record("json", "burst", &json.input_a())
                    .expect("record");
                let outs = platform
                    .burst(
                        "json",
                        "burst",
                        &json.input_b(),
                        strategy,
                        parallelism,
                        kind,
                    )
                    .expect("burst");
                let mean_ms = outs
                    .iter()
                    .map(|o| o.report.total_time().as_millis_f64())
                    .sum::<f64>()
                    / outs.len() as f64;
                cells.push(format!("{mean_ms:.1}"));
            }
            let mut row = vec![kind_label.to_string(), parallelism.to_string()];
            row.extend(cells);
            table.row(row);
        }
    }
    println!("{table}");
    println!(
        "Same-snapshot bursts share the page cache (VMs load it for each\n\
         other); REAP's O_DIRECT fetches bypass the cache and pay the full\n\
         disk cost per VM; FaaSnap's loader reads the loading set exactly\n\
         once and serves every VM from cache."
    );
}
