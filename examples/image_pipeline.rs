//! A multimedia FaaS scenario: an image-processing API backend whose
//! inputs vary wildly between requests (the paper's motivating case for
//! working-set drift, §3.1/§6.3).
//!
//! Records with a small input, then serves a stream of requests whose
//! sizes range from 1/4× to 4× the recorded input, comparing how each
//! restore strategy holds up — the Figure 8 story as an application.
//!
//! ```sh
//! cargo run --release --example image_pipeline
//! ```

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::TextTable;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

fn main() {
    let mut platform = Platform::new(DiskProfile::nvme_c5d(), 7);
    let image = faas_workloads::by_name("image").expect("catalog function");
    platform.register(image.clone());
    platform
        .record("image", "api", &image.input_a())
        .expect("record");

    let mut table = TextTable::new(
        "image API: per-request latency (ms) vs request size",
        &[
            "request size",
            "Firecracker",
            "REAP",
            "FaaSnap",
            "slowdown FaaSnap/warm",
        ],
    );

    // A request stream: sizes drawn from a realistic spread.
    let request_sizes = [0.25, 0.5, 1.0, 2.0, 3.0, 4.0];
    for (i, &ratio) in request_sizes.iter().enumerate() {
        let input = image.input_scaled(ratio, 0x1000 + i as u64);
        let mut cells = Vec::new();
        for strategy in [
            RestoreStrategy::Vanilla,
            RestoreStrategy::Reap,
            RestoreStrategy::faasnap(),
        ] {
            let out = platform
                .invoke("image", "api", &input, strategy)
                .expect("invoke");
            cells.push(out.report.total_time().as_millis_f64());
        }
        let warm = platform
            .invoke("image", "api", &input, RestoreStrategy::Warm)
            .expect("invoke")
            .report
            .total_time()
            .as_millis_f64();
        table.row(vec![
            format!("{ratio}x"),
            format!("{:.1}", cells[0]),
            format!("{:.1}", cells[1]),
            format!("{:.1}", cells[2]),
            format!("{:.2}", cells[2] / warm),
        ]);
    }
    println!("{table}");
    println!(
        "FaaSnap keeps cold-start latency close to a warm VM across the whole\n\
         size range, while REAP degrades as requests diverge from the recorded\n\
         working set (compare the REAP and FaaSnap columns at 2x-4x)."
    );
}
