//! Quickstart: record a snapshot for a function, then invoke it under
//! vanilla Firecracker restore and under FaaSnap, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

fn main() {
    // A platform on a simulated host with the paper's local NVMe SSD.
    let mut platform = Platform::new(DiskProfile::nvme_c5d(), 42);

    // Register the `image` function (FunctionBench JPEG rotation) and run
    // its record phase with input A: this restores a clean snapshot,
    // executes once while recording the working set via mincore scans,
    // sanitizes freed pages, and emits the warm snapshot, the loading-set
    // file, and REAP's working-set file.
    let image = faas_workloads::by_name("image").expect("catalog function");
    platform.register(image.clone());
    platform
        .record("image", "demo", &image.input_a())
        .expect("record phase");

    let artifacts = platform.registry().artifacts("image", "demo").unwrap();
    println!("record phase done:");
    println!(
        "  working set      : {} pages ({} groups)",
        artifacts.ws.len(),
        artifacts.ws.group_count()
    );
    println!(
        "  loading set      : {} regions, {} file pages ({} before merging)",
        artifacts.ls.region_count(),
        artifacts.ls.file_pages(),
        artifacts.ls.unmerged_region_count()
    );
    println!("  REAP working set : {} pages", artifacts.reap_ws.len());
    println!();

    // Test phase: invoke with input B (different, larger input — the
    // realistic case) under each strategy. Caches are dropped before each
    // run, as in the paper's methodology.
    for strategy in [
        RestoreStrategy::Vanilla,
        RestoreStrategy::Reap,
        RestoreStrategy::faasnap(),
        RestoreStrategy::Cached,
    ] {
        let out = platform
            .invoke("image", "demo", &image.input_b(), strategy)
            .expect("invoke");
        let r = &out.report;
        println!(
            "{:>12}: total {:>7.1} ms (setup {:>6.1} + invoke {:>6.1}) | faults: {:>5} anon, {:>5} minor, {:>5} major, {:>5} uffd",
            strategy.label(),
            r.total_time().as_millis_f64(),
            r.setup_time.as_millis_f64(),
            r.invocation_time.as_millis_f64(),
            r.anon_faults,
            r.minor_faults,
            r.major_faults,
            r.uffd_faults,
        );
    }
}
