//! Disaggregated-storage deployment (the §6.7 scenario): snapshots live
//! on remote block storage (EBS) instead of a local NVMe SSD, plus the
//! §7.2 tiered layout (small loading-set file local, big memory file
//! remote).
//!
//! ```sh
//! cargo run --release --example remote_storage
//! ```

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::TextTable;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

fn run_platform(profile: DiskProfile, name: &str) -> Vec<f64> {
    let mut platform = Platform::new(profile, 1234);
    let f = faas_workloads::by_name(name).expect("catalog");
    platform.register(f.clone());
    platform.record(name, "r", &f.input_a()).expect("record");
    [
        RestoreStrategy::Vanilla,
        RestoreStrategy::Reap,
        RestoreStrategy::faasnap(),
    ]
    .into_iter()
    .map(|s| {
        platform
            .invoke(name, "r", &f.input_b(), s)
            .expect("invoke")
            .report
            .total_time()
            .as_millis_f64()
    })
    .collect()
}

fn main() {
    let functions = ["hello-world", "json", "image", "pagerank"];

    let mut table = TextTable::new(
        "snapshot restore latency (ms): local NVMe vs remote EBS",
        &[
            "function",
            "FC nvme",
            "FC ebs",
            "REAP ebs",
            "FaaSnap ebs",
            "FaaSnap vs FC (ebs)",
        ],
    );
    for name in functions {
        let nvme = run_platform(DiskProfile::nvme_c5d(), name);
        let ebs = run_platform(DiskProfile::ebs_io2(), name);
        table.row(vec![
            name.into(),
            format!("{:.0}", nvme[0]),
            format!("{:.0}", ebs[0]),
            format!("{:.0}", ebs[1]),
            format!("{:.0}", ebs[2]),
            format!("{:.2}x", ebs[0] / ebs[2]),
        ]);
    }
    println!("{table}");

    // Tiered layout (§7.2): loading-set file on local SSD, memory file on
    // EBS — "storing relatively small loading set files on local SSD and
    // larger memory files on remote storage".
    let mut platform = Platform::new(DiskProfile::nvme_c5d(), 1234);
    let f = faas_workloads::by_name("image").expect("catalog");
    platform.register(f.clone());
    platform
        .record("image", "tier", &f.input_a())
        .expect("record");
    let ebs = platform.host_mut().add_device(DiskProfile::ebs_io2());
    let mem_file = platform
        .registry()
        .artifacts("image", "tier")
        .unwrap()
        .snapshot
        .mem_file();
    platform.host_mut().fs.set_device(mem_file, ebs);
    let tiered = platform
        .invoke("image", "tier", &f.input_b(), RestoreStrategy::faasnap())
        .expect("invoke")
        .report
        .total_time()
        .as_millis_f64();
    println!(
        "tiered layout (image): loading set on NVMe + memory file on EBS -> {tiered:.0} ms\n\
         (remote capacity at near-local latency for the hot path)"
    );
}
