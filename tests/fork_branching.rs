//! Snapshot-branching acceptance: read amplification of N-way fan-out.
//!
//! The headline claim of the branching refactor: forking N concurrent
//! siblings from one snapshot issues close to the disk reads of a
//! *single* restore, not N of them — sibling faults on a page already
//! in flight coalesce onto one read, and later siblings hit the cache
//! the earlier ones loaded. The acceptance bar pinned here is ≥10×
//! fewer disk-read pages at N = 1000 than 1000 independent restores;
//! the realized ratio is close to 1000×.

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

fn recorded(name: &str) -> Platform {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xF04C);
    let f = faas_workloads::by_name(name).unwrap();
    p.register(f.clone());
    p.record(name, "t", &f.input_a()).unwrap();
    p
}

#[test]
fn thousand_way_fork_beats_independent_restores_by_10x() {
    let mut p = recorded("hello-world");
    let f = faas_workloads::by_name("hello-world").unwrap();
    for strategy in [RestoreStrategy::Vanilla, RestoreStrategy::faasnap()] {
        // Every fork call drops the caches first, so the N = 1 fork is
        // exactly the cost of one independent cold restore.
        let solo = p
            .fork("hello-world", "t", &f.input_b(), strategy, 1)
            .unwrap();
        let fork = p
            .fork("hello-world", "t", &f.input_b(), strategy, 1000)
            .unwrap();
        assert_eq!(fork.outcomes.len(), 1000);
        let independent = solo.disk_read_pages * 1000;
        assert!(
            independent >= 10 * fork.disk_read_pages,
            "{}: 1000-way fork read {} pages, 1000 independent restores read {} \
             — less than the 10x acceptance bar",
            strategy.label(),
            fork.disk_read_pages,
            independent
        );
        // Sharing is visible in the memory accounting too: the base
        // image is counted once, and per-sibling private overlays stay
        // far smaller than the base. (hello-world's scratch pages sit
        // over zero base pages and are sanitized back at guest exit, so
        // its overlays end empty — COW cost is bounded by the dirty
        // set, not the working set.)
        assert!(fork.shared_pages > 0);
        assert!(
            fork.private_pages / 1000 < fork.shared_pages,
            "per-sibling private pages ({} total) should be far below the \
             shared base ({} pages)",
            fork.private_pages,
            fork.shared_pages
        );
        // And it never trades correctness: all siblings end byte-equal
        // to the independent restore.
        let independent_sum = solo.outcomes[0].final_memory.checksum();
        for o in &fork.outcomes {
            assert_eq!(o.final_memory.checksum(), independent_sum);
        }
    }
}
