//! Cross-strategy restore correctness.
//!
//! The load-bearing invariant of the whole system (DESIGN.md): every
//! restore strategy must give the guest exactly the snapshot's bytes —
//! the strategies may only differ in *when and how* data moves, never in
//! what the guest observes. Since the runtime verifies each fault against
//! the mapping (offset preservation for the memory file, recorded layout
//! for the loading-set file, zero content for anonymous mappings), simply
//! completing a run under `verify_mappings` is already a strong check;
//! these tests additionally require the final guest memory to be
//! *identical* across all strategies.

use faasnap::strategy::{FaasnapConfig, RestoreStrategy};
use faasnap_daemon::platform::Platform;
use faasnap_obs::{chrome_trace_json, Metrics, Tracer};
use sim_storage::profiles::DiskProfile;

/// Every strategy plus the full Figure 9 ablation lattice: all valid
/// [`FaasnapConfig`] combinations (4 feature rungs × hierarchical
/// mmap on/off), so byte-identity is pinned for each ablation the
/// paper measures, not only the presets.
fn all_strategies() -> Vec<RestoreStrategy> {
    let mut v = vec![
        RestoreStrategy::Warm,
        RestoreStrategy::Vanilla,
        RestoreStrategy::Cached,
        RestoreStrategy::Reap,
    ];
    v.extend(
        FaasnapConfig::lattice()
            .into_iter()
            .map(RestoreStrategy::FaaSnap),
    );
    v
}

fn final_checksums(name: &str, test_b: bool) -> Vec<(String, u64)> {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xC0FFEE);
    let f = faas_workloads::by_name(name).unwrap();
    p.register(f.clone());
    p.record(name, "t", &f.input_a()).unwrap();
    let input = if test_b { f.input_b() } else { f.input_a() };
    all_strategies()
        .into_iter()
        .map(|s| {
            let out = p.invoke(name, "t", &input, s).unwrap();
            (format!("{s:?}"), out.final_memory.checksum())
        })
        .collect()
}

#[test]
fn json_final_memory_identical_across_strategies() {
    let sums = final_checksums("json", true);
    let first = sums[0].1;
    for (label, sum) in &sums {
        assert_eq!(*sum, first, "{label} diverged from Warm");
    }
}

#[test]
fn image_final_memory_identical_across_strategies() {
    let sums = final_checksums("image", true);
    let first = sums[0].1;
    for (label, sum) in &sums {
        assert_eq!(*sum, first, "{label} diverged from Warm");
    }
}

#[test]
fn hello_world_same_input_identical() {
    let sums = final_checksums("hello-world", false);
    let first = sums[0].1;
    for (label, sum) in &sums {
        assert_eq!(*sum, first, "{label} diverged");
    }
}

#[test]
fn faasnap_mapping_verification_active() {
    // verify_mappings is on for every non-warm strategy; a FaaSnap run
    // over a function with anonymous, cold, and loading-set populations
    // exercises all three verification arms without panicking.
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xC0FFEE);
    let f = faas_workloads::by_name("chameleon").unwrap();
    p.register(f.clone());
    p.record("chameleon", "t", &f.input_a()).unwrap();
    let out = p
        .invoke("chameleon", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    assert!(out.report.anon_faults > 0, "anonymous arm exercised");
    assert!(
        out.report.minor_faults + out.report.major_faults > 0,
        "file arms exercised"
    );
    assert!(!out.report.degraded);
}

#[test]
fn writes_overwrite_snapshot_state() {
    // A page written by the test invocation must hold the new token, not
    // the snapshot's, under every strategy.
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xC0FFEE);
    let f = faas_workloads::by_name("json").unwrap();
    p.register(f.clone());
    p.record("json", "t", &f.input_a()).unwrap();
    let snapshot_sum = p
        .registry()
        .artifacts("json", "t")
        .unwrap()
        .snapshot
        .memory()
        .checksum();
    for s in all_strategies() {
        let out = p.invoke("json", "t", &f.input_b(), s).unwrap();
        assert_ne!(
            out.final_memory.checksum(),
            snapshot_sum,
            "{}: invocation must mutate guest memory",
            s.label()
        );
    }
}

/// One fully observed run on a fresh platform: the Chrome trace, the
/// Prometheus snapshot, and the final guest-memory checksum. `fork_path`
/// routes through the branching entry point with N = 1 instead of the
/// independent-restore entry point.
fn traced_artifacts(fork_path: bool, strategy: RestoreStrategy) -> (String, String, u64) {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xC0FFEE);
    let f = faas_workloads::by_name("json").unwrap();
    p.register(f.clone());
    p.record("json", "t", &f.input_a()).unwrap();
    let tracer = Tracer::enabled();
    let metrics = Metrics::enabled();
    p.set_tracer(tracer.clone());
    p.set_metrics(metrics.clone());
    let checksum = if fork_path {
        let out = p.fork("json", "t", &f.input_b(), strategy, 1).unwrap();
        out.outcomes[0].final_memory.checksum()
    } else {
        let out = p.invoke("json", "t", &f.input_b(), strategy).unwrap();
        out.final_memory.checksum()
    };
    (
        chrome_trace_json(&tracer),
        metrics.render_prometheus(),
        checksum,
    )
}

#[test]
fn fork_of_one_is_byte_identical_to_independent_restore() {
    // The differential fork harness at its base case: branching one
    // sibling must be indistinguishable — trace, metrics, and guest
    // memory, byte for byte — from not branching at all, under every
    // strategy including the full ablation lattice.
    for s in all_strategies() {
        let solo = traced_artifacts(false, s);
        let fork = traced_artifacts(true, s);
        assert_eq!(solo.0, fork.0, "{}: trace diverged", s.label());
        assert_eq!(solo.1, fork.1, "{}: metrics diverged", s.label());
        assert_eq!(solo.2, fork.2, "{}: final memory diverged", s.label());
    }
}
