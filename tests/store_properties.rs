//! Property and acceptance tests for the content-addressed snapshot
//! store (`faasnap-store`) and its fleet integration:
//!
//! - chunk/dechunk identity: a base layer materializes back to exactly
//!   the sparse page image it was recorded from;
//! - delta-over-base equivalence: resolving base+delta yields the same
//!   image as recording the mutated memory flat;
//! - refcount conservation: random insert/touch/remove sequences on the
//!   store-aware registry keep the chunk table's internal accounting
//!   exact (`debug_validate`) and never exceed the budget;
//! - fleet determinism: with dedup enabled, a seed produces
//!   byte-identical fleet JSON;
//! - capacity: under the same snapshot budget and a Zipf workload,
//!   chunk dedup keeps ≥5× more distinct function snapshots resident
//!   than whole-file LRU accounting.

use std::collections::BTreeMap;

use faasnap_cluster::{run_cluster, ClusterConfig, RoutePolicy, StoreParams, StoreRegistry};
use faasnap_store::{SnapshotStore, StoreConfig};
use proptest::prelude::*;

/// A small sparse page image: page index → nonzero token. (The in-tree
/// proptest shim has no `btree_map`, so collect pairs.)
fn sparse_image() -> impl Strategy<Value = BTreeMap<u64, u64>> {
    proptest::collection::vec((0u64..256, 1u64..u64::MAX), 0..64)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    /// Recording a base layer and materializing the composed snapshot
    /// round-trips the sparse image exactly (zero pages stay absent).
    #[test]
    fn base_layer_roundtrips_identity(pages in sparse_image()) {
        let mut store = SnapshotStore::new(StoreConfig { chunk_pages: 16 });
        let base = store.put_base_layer(&pages);
        let snap = store.compose_snapshot(&[base], 0).unwrap();
        prop_assert_eq!(store.materialize(snap).unwrap(), pages);
        store.debug_validate().unwrap();
    }

    /// A delta layer over a base resolves to the same image as
    /// recording the mutated memory as a flat base snapshot.
    #[test]
    fn delta_over_base_equals_flat(
        base_pages in sparse_image(),
        write_pairs in proptest::collection::vec((0u64..256, 0u64..u64::MAX), 0..32),
    ) {
        let mut store = SnapshotStore::new(StoreConfig { chunk_pages: 16 });
        let base = store.put_base_layer(&base_pages);
        let parent = store.compose_snapshot(&[base], 0).unwrap();

        // Apply the writes (token 0 = page zeroed → removed).
        let writes: BTreeMap<u64, u64> = write_pairs.into_iter().collect();
        let mut mutated = base_pages.clone();
        for (&page, &token) in &writes {
            if token == 0 {
                mutated.remove(&page);
            } else {
                mutated.insert(page, token);
            }
        }
        let delta = store.put_delta_layer(parent, &mutated).unwrap();
        let layered = store.compose_snapshot(&[base, delta], 0).unwrap();

        let mut flat_store = SnapshotStore::new(StoreConfig { chunk_pages: 16 });
        let flat_base = flat_store.put_base_layer(&mutated);
        let flat = flat_store.compose_snapshot(&[flat_base], 0).unwrap();

        prop_assert_eq!(
            store.materialize(layered).unwrap(),
            flat_store.materialize(flat).unwrap()
        );
        store.debug_validate().unwrap();
    }

    /// Random record/evict sequences conserve refcounts and byte
    /// accounting, and the budget is never exceeded after an insert.
    #[test]
    fn registry_refcounts_conserved(
        budget in (20u64..200).prop_map(|mb| mb << 20),
        ops in proptest::collection::vec(
            (0usize..12, 0u64..4, 1u64..64, any::<bool>()), 1..60),
    ) {
        let mut reg = StoreRegistry::new(budget, StoreParams::default());
        for &(tenant, family, size_mb, remove) in &ops {
            if remove {
                reg.remove(tenant);
            } else {
                for evicted in reg.insert(tenant, family, size_mb << 20) {
                    prop_assert!(!reg.contains(evicted));
                }
                prop_assert!(
                    reg.total_bytes() <= budget,
                    "unique {} over budget {}",
                    reg.total_bytes(),
                    budget
                );
            }
            reg.store().debug_validate().unwrap();
            // Unique bytes can never exceed logical bytes.
            prop_assert!(reg.total_bytes() <= reg.logical_bytes());
        }
    }
}

/// The same seed with dedup enabled yields byte-identical fleet JSON —
/// the store integration draws no entropy and iterates no hash maps.
#[test]
fn fleet_json_deterministic_with_dedup() {
    let run = |seed| {
        let mut cfg = ClusterConfig::demo(4, RoutePolicy::SnapshotLocality, seed);
        assert!(cfg.host.store.dedup, "dedup is the default");
        cfg.horizon = sim_core::time::SimDuration::from_secs(60);
        run_cluster(&cfg).to_json().to_string_pretty()
    };
    assert_eq!(run(42), run(42), "same seed, byte-identical fleet JSON");
    assert_ne!(run(42), run(43));
}

/// Under one host's default 24 GiB snapshot budget and a Zipf-skewed
/// 72-tenant workload of 2 GiB snapshots, chunk-level dedup keeps ≥5×
/// more distinct function snapshots resident than whole-file LRU.
#[test]
fn dedup_keeps_5x_more_snapshots_resident_under_zipf() {
    let run = |dedup: bool| {
        let workloads = ["hello-world", "json", "compression", "image"];
        let mut cfg = ClusterConfig::demo(1, RoutePolicy::SnapshotLocality, 42);
        cfg.workload = faasnap_cluster::WorkloadSpec::zipf(72, &workloads, 40.0, 1.2);
        cfg.host.store.dedup = dedup;
        run_cluster(&cfg)
    };
    let whole = run(false);
    let chunked = run(true);
    let (w, c) = (
        whole.snapshots_resident_total(),
        chunked.snapshots_resident_total(),
    );
    assert!(w > 0, "whole-file baseline kept nothing resident");
    assert!(
        c >= 5 * w,
        "dedup resident {c} !>= 5x whole-file resident {w}"
    );
    // Same budget is actually being charged in both runs.
    assert!(whole.store_unique_total() <= 24 << 30);
    assert!(chunked.store_unique_total() <= 24 << 30);
    // The mechanism, reported: logical bytes dwarf unique bytes.
    assert!(
        chunked.store_dedup_ratio() > 4.0,
        "dedup ratio only {}",
        chunked.store_dedup_ratio()
    );
    assert!((whole.store_dedup_ratio() - 1.0).abs() < 1e-9);
}
