//! End-to-end record → test pipeline invariants.

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

fn recorded_platform(name: &str) -> (Platform, faas_workloads::Function) {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0x9192);
    let f = faas_workloads::by_name(name).unwrap();
    p.register(f.clone());
    p.record(name, "t", &f.input_a()).unwrap();
    (p, f)
}

#[test]
fn host_page_recording_supersets_fault_recording() {
    // §4.4: mincore-based recording includes readahead pages, so it must
    // contain every page REAP's fault tracking saw, and usually more.
    let (p, _) = recorded_platform("image");
    let a = p.registry().artifacts("image", "t").unwrap();
    let ws = a.ws.page_set();
    for page in a.reap_ws.pages() {
        assert!(
            ws.contains(page),
            "fault-recorded page {page} missing from mincore WS"
        );
    }
    assert!(
        a.ws.len() > a.reap_ws.len(),
        "readahead should add pages: {} vs {}",
        a.ws.len(),
        a.reap_ws.len()
    );
}

#[test]
fn loading_set_excludes_sanitized_pages() {
    // Freed+sanitized heap pages are zero in the warm snapshot and must
    // not appear in the loading set even though they are in the WS.
    let (p, f) = recorded_platform("mmap");
    let a = p.registry().artifacts("mmap", "t").unwrap();
    // mmap frees its whole 512 MB buffer: the loading set must be tiny
    // (runtime only), while REAP's working set holds the full buffer.
    assert!(
        a.ls.file_pages() < 20_000,
        "mmap loading set should be runtime-sized, got {} pages",
        a.ls.file_pages()
    );
    assert!(
        a.reap_ws.len() > 100_000,
        "REAP's working set holds the written buffer, got {}",
        a.reap_ws.len()
    );
    let _ = f;
}

#[test]
fn loading_set_pages_are_nonzero_or_merged_gaps() {
    let (p, _) = recorded_platform("json");
    let a = p.registry().artifacts("json", "t").unwrap();
    let ws = a.ws.page_set();
    let mem = a.snapshot.memory();
    for r in a.ls.regions() {
        for page in r.guest.iter() {
            // Every covered page is either a proper loading-set page
            // (non-zero AND in the WS) or a merged gap page.
            let proper = mem.is_nonzero(page) && ws.contains(&page);
            let gap_ok = r.guest.len() > 1; // merged region may hold gaps
            assert!(proper || gap_ok, "page {page} unexpectedly in loading set");
        }
    }
}

#[test]
fn region_merge_matches_paper_shape() {
    // §4.6: merging collapses hello-world's fragmented loading set into
    // far fewer mappable regions at a bounded data cost. (The paper
    // reports >1000 → <100 at +5 %; our synthetic scatter yields a few
    // hundred → ~100 at a somewhat higher but still bounded overhead —
    // see EXPERIMENTS.md.)
    let (p, _) = recorded_platform("hello-world");
    let a = p.registry().artifacts("hello-world", "t").unwrap();
    assert!(
        a.ls.unmerged_region_count() > 3 * a.ls.region_count(),
        "merging should collapse regions by >3x: {} -> {}",
        a.ls.unmerged_region_count(),
        a.ls.region_count()
    );
    assert!(
        a.ls.region_count() < 130,
        "expected <130 merged regions, got {}",
        a.ls.region_count()
    );
    // The paper reports +5 % data for hello-world; our synthetic runtime
    // scatter has wider intra-library gaps, so the overhead is larger
    // (documented as a deviation in EXPERIMENTS.md). It must stay well
    // under doubling the file, or merging would hurt more than it helps.
    assert!(
        a.ls.merge_overhead() < 1.0,
        "merge data overhead {:.0}% too high",
        a.ls.merge_overhead() * 100.0
    );
}

#[test]
fn performance_ordering_holds() {
    // The paper's headline ordering for an input-B test: FaaSnap beats
    // Firecracker and REAP; Warm beats everything; FaaSnap is within a
    // modest factor of Cached.
    let (mut p, f) = recorded_platform("image");
    let ms = |p: &mut Platform, s| {
        p.invoke("image", "t", &f.input_b(), s)
            .unwrap()
            .report
            .total_time()
            .as_millis_f64()
    };
    let warm = ms(&mut p, RestoreStrategy::Warm);
    let vanilla = ms(&mut p, RestoreStrategy::Vanilla);
    let cached = ms(&mut p, RestoreStrategy::Cached);
    let reap = ms(&mut p, RestoreStrategy::Reap);
    let faasnap = ms(&mut p, RestoreStrategy::faasnap());
    assert!(warm < faasnap, "warm {warm} < faasnap {faasnap}");
    assert!(
        faasnap < vanilla,
        "faasnap {faasnap} < firecracker {vanilla}"
    );
    assert!(faasnap < reap, "faasnap {faasnap} < reap {reap}");
    assert!(
        faasnap < cached * 1.25,
        "faasnap {faasnap} ~ cached {cached}"
    );
}

#[test]
fn fault_class_signatures_per_strategy() {
    let (mut p, f) = recorded_platform("image");
    // Cached: no majors (everything pre-cached).
    let cached = p
        .invoke("image", "t", &f.input_b(), RestoreStrategy::Cached)
        .unwrap();
    assert_eq!(cached.report.major_faults, 0);
    assert_eq!(cached.report.uffd_faults, 0);
    // Vanilla: no uffd, no host-pte.
    let vanilla = p
        .invoke("image", "t", &f.input_b(), RestoreStrategy::Vanilla)
        .unwrap();
    assert_eq!(vanilla.report.uffd_faults, 0);
    assert_eq!(vanilla.report.host_pte_faults, 0);
    assert!(vanilla.report.major_faults > 0);
    // REAP: host-pte for prefetched pages, uffd outside the set, no plain
    // minors/majors (everything routes through uffd or the PTE fast path).
    let reap = p
        .invoke("image", "t", &f.input_b(), RestoreStrategy::Reap)
        .unwrap();
    assert!(reap.report.host_pte_faults > 0);
    assert!(
        reap.report.uffd_faults > 0,
        "input B must fault outside REAP's WS"
    );
    assert_eq!(reap.report.major_faults, 0);
    // FaaSnap: anonymous faults (fresh buffers) + minors (prefetched) and
    // usually a few majors where the guest outruns the loader; never uffd.
    let fs = p
        .invoke("image", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    assert!(fs.report.anon_faults > 0);
    assert!(fs.report.minor_faults > 0);
    assert_eq!(fs.report.uffd_faults, 0);
}

#[test]
fn degraded_restore_falls_back_to_vanilla() {
    let (p, f) = recorded_platform("json");
    let mut spec = p
        .build_spec("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    // Simulate lost loading-set artifacts.
    spec.ls = None;
    spec.ws = None;
    let mut host = faasnap::runtime::Host::new(DiskProfile::nvme_c5d(), 7);
    // Re-register the memory file on the fresh host's fs.
    let dev = host.primary_device();
    let pages = spec.memory.total_pages();
    let mem_file = host.fs.create(
        "json.mem",
        sim_storage::file::FileKind::SnapshotMemory,
        pages,
        dev,
    );
    spec.mem_file = mem_file;
    let out = faasnap::runtime::run_invocation(&mut host, spec);
    assert!(out.report.degraded, "missing artifacts must flag degraded");
    assert!(
        out.report.major_faults > 0,
        "degraded run demand-pages from disk"
    );
    assert_eq!(out.report.fetch_pages, 0, "no loader without artifacts");
}

#[test]
fn setup_times_reflect_strategy_work() {
    let (mut p, f) = recorded_platform("read-list");
    let warm = p
        .invoke("read-list", "t", &f.input_a(), RestoreStrategy::Warm)
        .unwrap();
    assert_eq!(warm.report.setup_time.as_nanos(), 0, "warm has no setup");
    let vanilla = p
        .invoke("read-list", "t", &f.input_a(), RestoreStrategy::Vanilla)
        .unwrap();
    let reap = p
        .invoke("read-list", "t", &f.input_a(), RestoreStrategy::Reap)
        .unwrap();
    // REAP's setup includes the blocking 526 MB working-set fetch (§6.2:
    // "the setup step takes a long time to load and install the working
    // set" for read-list and mmap).
    assert!(
        reap.report.setup_time.as_millis_f64() > vanilla.report.setup_time.as_millis_f64() + 300.0,
        "REAP setup {} must dwarf vanilla {}",
        reap.report.setup_time,
        vanilla.report.setup_time
    );
}
