//! Bursty-workload (§6.6) and remote-storage (§6.7) integration tests.

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::platform::{BurstKind, Platform};
use sim_storage::device::IoKind;
use sim_storage::profiles::DiskProfile;

fn platform(seed: u64, profile: DiskProfile) -> (Platform, faas_workloads::Function) {
    let mut p = Platform::new(profile, seed);
    let f = faas_workloads::by_name("json").unwrap();
    p.register(f.clone());
    p.record("json", "t", &f.input_a()).unwrap();
    (p, f)
}

fn mean_total_s(outs: &[faasnap::runtime::InvocationOutcome]) -> f64 {
    outs.iter()
        .map(|o| o.report.total_time().as_secs_f64())
        .sum::<f64>()
        / outs.len() as f64
}

#[test]
fn same_snapshot_burst_reads_loading_set_once() {
    let (mut p, f) = platform(0xB1, DiskProfile::nvme_c5d());
    let outs = p
        .burst(
            "json",
            "t",
            &f.input_b(),
            RestoreStrategy::faasnap(),
            8,
            BurstKind::SameSnapshot,
        )
        .unwrap();
    assert_eq!(outs.len(), 8);
    let ls_pages = p.registry().artifacts("json", "t").unwrap().ls.file_pages();
    let loader_pages = p.host().disks[0].stats().pages_of(IoKind::LoaderPrefetch);
    assert!(
        loader_pages < ls_pages + ls_pages / 2,
        "read-once lock violated: {loader_pages} loader pages for {ls_pages}-page LS"
    );
}

#[test]
fn reap_burst_bypasses_cache_and_rereads() {
    // §6.6: "REAP bypasses the page cache" — every VM fetches its own copy
    // of the working set even from the same snapshot.
    let (mut p, f) = platform(0xB2, DiskProfile::nvme_c5d());
    let n = 6u64;
    p.burst(
        "json",
        "t",
        &f.input_b(),
        RestoreStrategy::Reap,
        n as u32,
        BurstKind::SameSnapshot,
    )
    .unwrap();
    let ws_pages = p.registry().artifacts("json", "t").unwrap().reap_ws.len();
    let fetch_pages = p.host().disks[0].stats().pages_of(IoKind::ReapFetch);
    assert_eq!(fetch_pages, ws_pages * n, "each VM fetches the full WS");
}

#[test]
fn different_snapshots_slower_than_same_for_firecracker() {
    // §6.6: "When using different snapshots, Firecracker performance
    // degrades quickly" — no cache sharing across distinct memory files.
    let (mut p, f) = platform(0xB3, DiskProfile::nvme_c5d());
    let same = p
        .burst(
            "json",
            "t",
            &f.input_b(),
            RestoreStrategy::Vanilla,
            16,
            BurstKind::SameSnapshot,
        )
        .unwrap();
    let (mut p2, f2) = platform(0xB3, DiskProfile::nvme_c5d());
    let diff = p2
        .burst(
            "json",
            "t",
            &f2.input_b(),
            RestoreStrategy::Vanilla,
            16,
            BurstKind::DifferentSnapshots,
        )
        .unwrap();
    assert!(
        mean_total_s(&diff) > mean_total_s(&same),
        "diff {:.3}s should exceed same {:.3}s",
        mean_total_s(&diff),
        mean_total_s(&same)
    );
}

#[test]
fn faasnap_beats_reap_under_bursts() {
    let (mut p, f) = platform(0xB4, DiskProfile::nvme_c5d());
    let fs = p
        .burst(
            "json",
            "t",
            &f.input_b(),
            RestoreStrategy::faasnap(),
            16,
            BurstKind::SameSnapshot,
        )
        .unwrap();
    let (mut p2, f2) = platform(0xB4, DiskProfile::nvme_c5d());
    let reap = p2
        .burst(
            "json",
            "t",
            &f2.input_b(),
            RestoreStrategy::Reap,
            16,
            BurstKind::SameSnapshot,
        )
        .unwrap();
    assert!(mean_total_s(&fs) < mean_total_s(&reap));
}

#[test]
fn burst_correctness_every_vm_completes_identically() {
    let (mut p, f) = platform(0xB5, DiskProfile::nvme_c5d());
    // Same input seed for every VM => identical final memory.
    let mut outs = Vec::new();
    for _ in 0..3 {
        let spec = p
            .build_spec("json", "t", &f.input_b(), RestoreStrategy::faasnap())
            .unwrap();
        outs.push(spec);
    }
    p.host_mut().drop_caches();
    let results = faasnap::runtime::run_invocations(p.host_mut(), outs);
    let sum = results[0].final_memory.checksum();
    for r in &results {
        assert_eq!(r.final_memory.checksum(), sum);
        assert!(r.report.total_time().as_nanos() > 0);
    }
}

#[test]
fn ebs_slower_than_nvme_but_faasnap_still_wins() {
    // §6.7: baseline Firecracker ~33 % slower on EBS; FaaSnap remains
    // ~2x faster than Firecracker and faster than REAP.
    let (mut nv, f) = platform(0xB6, DiskProfile::nvme_c5d());
    let (mut eb, fe) = platform(0xB6, DiskProfile::ebs_io2());
    let nv_fc = nv
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Vanilla)
        .unwrap()
        .report
        .total_time()
        .as_millis_f64();
    let eb_fc = eb
        .invoke("json", "t", &fe.input_b(), RestoreStrategy::Vanilla)
        .unwrap()
        .report
        .total_time()
        .as_millis_f64();
    assert!(eb_fc > nv_fc * 1.1, "EBS vanilla {eb_fc} vs NVMe {nv_fc}");
    let eb_fs = eb
        .invoke("json", "t", &fe.input_b(), RestoreStrategy::faasnap())
        .unwrap()
        .report
        .total_time()
        .as_millis_f64();
    let eb_reap = eb
        .invoke("json", "t", &fe.input_b(), RestoreStrategy::Reap)
        .unwrap()
        .report
        .total_time()
        .as_millis_f64();
    assert!(
        eb_fs < eb_fc,
        "FaaSnap {eb_fs} < Firecracker {eb_fc} on EBS"
    );
    assert!(eb_fs < eb_reap, "FaaSnap {eb_fs} < REAP {eb_reap} on EBS");
}

#[test]
fn mixed_devices_loading_set_local_memory_remote() {
    // §7.2 future work: "storing relatively small loading set files on
    // local SSD and larger memory files on remote storage". Implemented:
    // move the memory file to EBS, keep the loading-set file on NVMe.
    // hello-world's execution is dominated by its loading set, so moving
    // only the memory file to EBS should cost little, while moving the
    // loading-set file too visibly slows the prefetch.
    let mut p = Platform::new(DiskProfile::nvme_c5d(), 0xB7);
    let f = faas_workloads::by_name("hello-world").unwrap();
    p.register(f.clone());
    p.record("hello-world", "t", &f.input_a()).unwrap();
    let ebs = p.host_mut().add_device(DiskProfile::ebs_io2());
    let mem_file = p
        .registry()
        .artifacts("hello-world", "t")
        .unwrap()
        .snapshot
        .mem_file();
    p.host_mut().fs.set_device(mem_file, ebs);

    let run = |p: &mut Platform| {
        let mut cell = sim_core::stats::Summary::new();
        for _ in 0..3 {
            let out = p
                .invoke("hello-world", "t", &f.input_a(), RestoreStrategy::faasnap())
                .unwrap();
            cell.record(out.report.total_time().as_millis_f64());
        }
        cell.mean()
    };
    let mixed = run(&mut p);
    // Compare with everything remote.
    let ls_file = p.registry().artifacts("hello-world", "t").unwrap().ls_file;
    p.host_mut().fs.set_device(ls_file, ebs);
    let all_remote = run(&mut p);
    assert!(
        mixed <= all_remote * 1.02,
        "local loading set should not hurt: mixed {mixed} vs remote {all_remote}"
    );
}
