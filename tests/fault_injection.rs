//! Differential robustness harness over the restore stack's fault
//! injection (the counterpart to `restore_correctness.rs`).
//!
//! The contract under test, end to end through the daemon API:
//!
//! 1. **Byte identity** — under any fault schedule that does not exhaust
//!    a retry budget, every restore strategy (including the full
//!    Figure 9 ablation lattice) still hands the guest exactly the
//!    snapshot's bytes. Retries and degradations may change *timing*,
//!    never *content*.
//! 2. **Fail closed** — a schedule that does exhaust a budget surfaces
//!    as a typed [`RestoreError::ReadRetriesExhausted`]; it never
//!    silently corrupts guest memory or half-writes artifacts.
//! 3. **Determinism** — the same seed produces the same injection
//!    schedule, retry trace, and metrics artifacts, byte for byte.

use faasnap::runtime::MmDelaySpec;
use faasnap::strategy::{FaasnapConfig, RestoreStrategy};
use faasnap::{FaultReport, RestoreError, RetrySite};
use faasnap_daemon::platform::{InvokeError, Platform};
use faasnap_obs::Metrics;
use sim_core::time::SimDuration;
use sim_storage::faults::{FaultPlan, FaultProfile, FaultRule, InjectedFaultKind};
use sim_storage::profiles::DiskProfile;
use sim_storage::IoKind;

fn platform_with(name: &str, seed: u64) -> Platform {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), seed);
    let f = faas_workloads::by_name(name).unwrap();
    p.register(f);
    p
}

fn recorded_platform(name: &str, seed: u64) -> Platform {
    let mut p = platform_with(name, seed);
    let f = faas_workloads::by_name(name).unwrap();
    p.record(name, "t", &f.input_a()).unwrap();
    p
}

/// Every strategy, including the full ablation lattice — the same
/// population `restore_correctness.rs` pins on healthy runs.
fn all_strategies() -> Vec<RestoreStrategy> {
    let mut v = vec![
        RestoreStrategy::Warm,
        RestoreStrategy::Vanilla,
        RestoreStrategy::Cached,
        RestoreStrategy::Reap,
    ];
    v.extend(
        FaasnapConfig::lattice()
            .into_iter()
            .map(RestoreStrategy::FaaSnap),
    );
    v
}

/// A bounded mixed-fault schedule guaranteed not to exhaust any retry
/// budget: every data-loss rule's global `times` budget is below the
/// smallest per-access retry limit, and the probabilistic profile only
/// injects latency spikes (which never fail a read).
fn bounded_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::with_profile(
        seed,
        FaultProfile {
            latency_spike_prob: 0.2,
            spike: SimDuration::from_micros(400),
            max_injections: 12,
            ..FaultProfile::default()
        },
    );
    plan.push_rule(FaultRule::on_kind(
        IoKind::LoaderPrefetch,
        InjectedFaultKind::ReadError,
        2,
    ));
    plan.push_rule(FaultRule::any(InjectedFaultKind::ShortRead, 2));
    plan.push_rule(FaultRule::on_kind(
        IoKind::FaultRead,
        InjectedFaultKind::Corruption,
        1,
    ));
    plan
}

#[test]
fn byte_identity_across_all_strategies_under_bounded_faults() {
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let input = f.input_b();
    let baseline = p
        .invoke("json", "t", &input, RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    let mut injected_somewhere = 0u64;
    for s in all_strategies() {
        // A fresh plan per strategy: each one faces the same schedule
        // function, not whatever budget its predecessor left behind.
        p.inject_storage_faults(bounded_plan(0xD1FF));
        let out = p
            .invoke("json", "t", &input, s)
            .unwrap_or_else(|e| panic!("{s:?} failed under bounded faults: {e}"));
        assert_eq!(
            out.final_memory.checksum(),
            baseline,
            "{s:?} diverged from Warm under injected faults"
        );
        injected_somewhere += out.report.faults.injected_total();
        let plan = p.clear_storage_faults().unwrap();
        assert_eq!(
            out.report.faults.injected_total(),
            plan.injected(),
            "{s:?}: report and plan log disagree on injection count"
        );
    }
    assert!(
        injected_somewhere > 0,
        "the schedule never fired; the differential run tested nothing"
    );
}

#[test]
fn retries_heal_data_loss_without_degradation() {
    // A FaaSnap run whose loader prefetches fail twice: the retry path
    // must heal (no degradation) and preserve bytes.
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let baseline = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule::on_kind(
        IoKind::LoaderPrefetch,
        InjectedFaultKind::ReadError,
        2,
    ));
    p.inject_storage_faults(plan);
    let out = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    assert_eq!(out.final_memory.checksum(), baseline);
    assert!(!out.report.degraded, "two failures must heal via retries");
    assert_eq!(out.report.faults.injected_read_errors, 2);
    assert_eq!(out.report.faults.loader_retries, 2);
    assert!(out.report.faults.backoff_wait > SimDuration::ZERO);
}

/// One faulted run under metrics: the realized schedule, the fault
/// report, and the rendered metrics snapshot.
fn faulted_run(seed: u64) -> (String, FaultReport, String) {
    let mut p = recorded_platform("json", 0xFA17);
    p.set_metrics(Metrics::enabled());
    let f = faas_workloads::by_name("json").unwrap();
    p.inject_storage_faults(bounded_plan(seed));
    let out = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    let schedule = p.fault_schedule();
    (schedule, out.report.faults, p.metrics().render_prometheus())
}

#[test]
fn same_seed_same_schedule_retry_trace_and_metrics() {
    let (sched_a, faults_a, prom_a) = faulted_run(5);
    let (sched_b, faults_b, prom_b) = faulted_run(5);
    assert!(!sched_a.is_empty(), "the plan must actually fire");
    assert_eq!(sched_a, sched_b, "same seed, same schedule, byte for byte");
    assert_eq!(faults_a, faults_b, "same seed, same retry trace");
    assert_eq!(prom_a, prom_b, "same seed, same metrics artifact");
    let (sched_c, _, _) = faulted_run(6);
    assert_ne!(sched_a, sched_c, "different seed, different spike schedule");
}

#[test]
fn faulted_runs_emit_fault_metrics_and_healthy_runs_do_not() {
    let (_, faults, prom) = faulted_run(5);
    assert!(faults.injected_total() > 0);
    assert!(prom.contains("faasnap_fault_injected_total"));
    // A healthy run with metrics enabled must emit none of the fault
    // series — the families only exist when injections occur.
    let mut p = recorded_platform("json", 0xFA17);
    p.set_metrics(Metrics::enabled());
    let f = faas_workloads::by_name("json").unwrap();
    p.invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    let healthy = p.metrics().render_prometheus();
    for family in [
        "faasnap_fault_injected_total",
        "faasnap_retry_total",
        "faasnap_degraded_total",
        "faasnap_restore_failed_total",
    ] {
        assert!(
            !healthy.contains(family),
            "{family} leaked into healthy run"
        );
    }
}

#[test]
fn exhausted_retries_fail_closed_with_typed_error() {
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let clean = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Vanilla)
        .unwrap()
        .final_memory
        .checksum();
    let mut plan = FaultPlan::new(3);
    plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, u64::MAX));
    p.inject_storage_faults(plan);
    let err = p
        .try_invoke("json", "t", &f.input_b(), RestoreStrategy::Vanilla)
        .expect_err("every read failing forever must exhaust the budget");
    match err {
        InvokeError::Restore(RestoreError::ReadRetriesExhausted { site, attempts, .. }) => {
            assert_eq!(site, RetrySite::GuestFault);
            assert!(
                attempts >= 2,
                "budget allows several attempts, got {attempts}"
            );
        }
        other => panic!("expected ReadRetriesExhausted, got {other:?}"),
    }
    // Recovery: disarm the plan and the same platform serves the same
    // bytes again — the failed run left no poisoned state behind.
    p.clear_storage_faults();
    let out = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Vanilla)
        .unwrap();
    assert_eq!(out.final_memory.checksum(), clean);
}

#[test]
fn loading_set_failure_degrades_to_vanilla_semantics() {
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let baseline = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    let ls_file = p.registry().artifacts("json", "t").unwrap().ls_file;
    // The loading-set file is unreadable to the loader, forever.
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule {
        file: Some(ls_file),
        kind: Some(IoKind::LoaderPrefetch),
        pages: None,
        fault: InjectedFaultKind::ReadError,
        times: u64::MAX,
    });
    p.inject_storage_faults(plan);
    let out = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    assert!(out.report.degraded, "loader exhaustion must degrade");
    assert_eq!(
        out.final_memory.checksum(),
        baseline,
        "vanilla fallback still hands the guest the snapshot's bytes"
    );
}

#[test]
fn memfile_prefetch_failure_degrades_to_demand_paging() {
    // The concurrent-paging ablation prefetches the memory file; killing
    // those prefetches abandons the loader but demand paging (which uses
    // FaultRead, untouched here) finishes the run byte-identically.
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let baseline = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule::on_kind(
        IoKind::LoaderPrefetch,
        InjectedFaultKind::ReadError,
        u64::MAX,
    ));
    p.inject_storage_faults(plan);
    let out = p
        .invoke(
            "json",
            "t",
            &f.input_b(),
            RestoreStrategy::FaaSnap(FaasnapConfig::concurrent_paging_only()),
        )
        .unwrap();
    assert!(out.report.degraded);
    assert_eq!(out.final_memory.checksum(), baseline);
}

#[test]
fn reap_fetch_failure_degrades_and_miss_failure_fails_closed() {
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let baseline = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    // The blocking working-set fetch never succeeds: REAP must fall back
    // to pure uffd demand paging, not fail the invocation.
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule::on_kind(
        IoKind::ReapFetch,
        InjectedFaultKind::ReadError,
        u64::MAX,
    ));
    p.inject_storage_faults(plan);
    let out = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Reap)
        .unwrap();
    assert!(out.report.degraded, "fetch exhaustion degrades");
    assert_eq!(out.final_memory.checksum(), baseline);
    assert_eq!(out.report.fetch_pages, 0, "no prefetch happened");
    // Miss-handler reads failing forever is different: those pages can
    // come from nowhere else, so the restore fails closed.
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule::on_kind(
        IoKind::ReapMiss,
        InjectedFaultKind::ReadError,
        u64::MAX,
    ));
    p.clear_storage_faults();
    p.inject_storage_faults(plan);
    let err = p
        .try_invoke("json", "t", &f.input_b(), RestoreStrategy::Reap)
        .expect_err("unreadable miss pages must fail the restore");
    match err {
        InvokeError::Restore(RestoreError::ReadRetriesExhausted { site, .. }) => {
            assert_eq!(site, RetrySite::ReapMiss);
        }
        other => panic!("expected ReadRetriesExhausted at reap_miss, got {other:?}"),
    }
}

#[test]
fn mm_delay_injection_shifts_timing_never_bytes() {
    let f = faas_workloads::by_name("json").unwrap();
    let run = |delay: Option<MmDelaySpec>| {
        let mut p = recorded_platform("json", 0xFA17);
        let mut spec = p
            .build_spec("json", "t", &f.input_b(), RestoreStrategy::faasnap())
            .unwrap();
        spec.mm_delay = delay;
        let host = p.host_mut();
        host.drop_caches();
        faasnap::runtime::try_run_invocation(host, spec).unwrap()
    };
    let clean = run(None);
    let delayed = MmDelaySpec {
        seed: 11,
        prob: 0.3,
        extra: SimDuration::from_micros(500),
        budget: 64,
    };
    let a = run(Some(delayed));
    let b = run(Some(delayed));
    assert_eq!(
        a.final_memory.checksum(),
        clean.final_memory.checksum(),
        "resolution delays must not change guest bytes"
    );
    assert!(
        a.report.faults.injected_mm_delays > 0,
        "injector armed but idle"
    );
    assert_eq!(clean.report.faults.injected_mm_delays, 0);
    assert!(
        a.report.total_time() > clean.report.total_time(),
        "injected delays must show up in timing"
    );
    assert_eq!(a.report.total_time(), b.report.total_time());
    assert_eq!(
        a.report.faults.injected_mm_delays,
        b.report.faults.injected_mm_delays
    );
}

#[test]
fn crashed_record_leaves_artifacts_cleanly_absent() {
    let mut p = platform_with("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let mut plan = FaultPlan::new(9);
    plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, u64::MAX));
    p.inject_storage_faults(plan);
    let err = p.record("json", "t", &f.input_a());
    assert!(err.is_err(), "record under permanent read errors must fail");
    assert!(
        p.registry().artifacts("json", "t").is_none(),
        "failed record must not leave half-written artifacts"
    );
    // Same platform, faults cleared: record completes and serves.
    p.clear_storage_faults();
    p.record("json", "t", &f.input_a()).unwrap();
    p.invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
}

#[test]
fn platform_recreation_after_mid_invoke_crash_is_deterministic() {
    // Reference: a never-faulted platform.
    let mut reference = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let expected = reference
        .invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap()
        .final_memory
        .checksum();
    // Crash path: same seed, invocation dies mid-restore, the platform
    // is dropped (the "daemon process" is killed) and re-created.
    let mut crashed = recorded_platform("json", 0xFA17);
    let mut plan = FaultPlan::new(1);
    plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, u64::MAX));
    crashed.inject_storage_faults(plan);
    crashed
        .try_invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .expect_err("the mid-invoke crash");
    drop(crashed);
    let mut restarted = recorded_platform("json", 0xFA17);
    let out = restarted
        .invoke("json", "t", &f.input_b(), RestoreStrategy::faasnap())
        .unwrap();
    assert_eq!(
        out.final_memory.checksum(),
        expected,
        "a restarted platform replays the same bytes"
    );
}

// ---------------------------------------------------------------------
// Schedule shrinking
// ---------------------------------------------------------------------

/// Delta-debugs a failing fault schedule down to a 1-minimal one: every
/// remaining rule is necessary (removing any single rule makes the
/// predicate pass). `fails` must hold for the initial schedule.
fn shrink_to_minimal(
    mut rules: Vec<FaultRule>,
    mut fails: impl FnMut(&[FaultRule]) -> bool,
) -> Vec<FaultRule> {
    assert!(fails(&rules), "initial schedule must fail");
    let mut i = 0;
    while i < rules.len() {
        let mut candidate = rules.clone();
        candidate.remove(i);
        if fails(&candidate) {
            rules = candidate;
        } else {
            i += 1;
        }
    }
    rules
}

#[test]
fn shrinking_isolates_the_rule_that_causes_retries() {
    // Four benign latency rules around one data-loss rule: shrinking the
    // "invocation retried" predicate must isolate the data-loss rule.
    let rules = vec![
        FaultRule::any(InjectedFaultKind::LatencySpike, 2),
        FaultRule::on_kind(IoKind::LoaderPrefetch, InjectedFaultKind::LatencySpike, 1),
        FaultRule::on_kind(IoKind::FaultRead, InjectedFaultKind::ReadError, 1),
        FaultRule::any(InjectedFaultKind::LatencySpike, 1),
    ];
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let input = f.input_b();
    let minimal = shrink_to_minimal(rules, |rules| {
        let mut plan = FaultPlan::new(0);
        for r in rules {
            plan.push_rule(r.clone());
        }
        p.inject_storage_faults(plan);
        let out = p
            .invoke("json", "t", &input, RestoreStrategy::Vanilla)
            .unwrap();
        p.clear_storage_faults();
        out.report.faults.retries_total() > 0
    });
    assert_eq!(minimal.len(), 1, "exactly one rule is load-bearing");
    assert_eq!(minimal[0].fault, InjectedFaultKind::ReadError);
    assert_eq!(minimal[0].kind, Some(IoKind::FaultRead));
}

#[test]
fn shrinking_over_seeds_finds_minimal_schedules() {
    // Property-style sweep: for a handful of seeds, build a randomized
    // rule soup (latency noise + one or more data-loss rules), shrink
    // against the retry predicate, and check 1-minimality: the shrunk
    // schedule still fails, and dropping any single remaining rule makes
    // it pass.
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let input = f.input_b();
    let mut predicate = |rules: &[FaultRule]| {
        let mut plan = FaultPlan::new(0);
        for r in rules {
            plan.push_rule(r.clone());
        }
        p.inject_storage_faults(plan);
        let out = p
            .invoke("json", "t", &input, RestoreStrategy::Vanilla)
            .unwrap();
        p.clear_storage_faults();
        out.report.faults.retries_total() > 0
    };
    for seed in 0..4u64 {
        let mut rng = sim_core::rng::Prng::new(seed);
        let mut rules = Vec::new();
        for _ in 0..rng.range(2, 5) {
            rules.push(FaultRule::any(
                InjectedFaultKind::LatencySpike,
                rng.range(1, 3),
            ));
        }
        for _ in 0..rng.range(1, 2) {
            rules.push(FaultRule::on_kind(
                IoKind::FaultRead,
                InjectedFaultKind::ReadError,
                1,
            ));
        }
        let minimal = shrink_to_minimal(rules, &mut predicate);
        assert!(predicate(&minimal), "shrunk schedule still fails");
        assert!(
            minimal
                .iter()
                .all(|r| r.fault == InjectedFaultKind::ReadError),
            "seed {seed}: latency noise survived shrinking: {minimal:?}"
        );
        for i in 0..minimal.len() {
            let mut without = minimal.clone();
            without.remove(i);
            assert!(
                !predicate(&without),
                "seed {seed}: rule {i} is not load-bearing"
            );
        }
    }
}

#[test]
fn concurrent_sibling_faults_share_one_disk_read_stream() {
    // Eight siblings demand-page the same snapshot concurrently. A
    // sibling faulting on a page another sibling is already reading
    // waits on that one in-flight read instead of issuing its own, and
    // later faults hit the cache the earlier reads loaded — so the
    // branched burst must not read more pages than a single restore.
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let solo = p
        .fork("json", "t", &f.input_b(), RestoreStrategy::Vanilla, 1)
        .unwrap();
    let branched = p
        .fork("json", "t", &f.input_b(), RestoreStrategy::Vanilla, 8)
        .unwrap();
    assert!(
        branched.disk_read_pages <= solo.disk_read_pages,
        "8 siblings read {} pages, one restore reads {}",
        branched.disk_read_pages,
        solo.disk_read_pages
    );
    // Sharing the read stream never shares dirty state: every sibling
    // still ends with exactly the bytes an independent restore yields.
    let independent = solo.outcomes[0].final_memory.checksum();
    for (i, o) in branched.outcomes.iter().enumerate() {
        assert_eq!(
            o.final_memory.checksum(),
            independent,
            "sibling {i} diverged from the independent restore"
        );
    }
}

#[test]
fn injected_error_on_shared_read_heals_for_every_waiting_sibling() {
    // A bounded schedule (two read errors, under every retry budget)
    // against a 4-way fork: the retried read must heal for *all*
    // waiters — every sibling finishes with the snapshot's bytes and
    // the injection log agrees the schedule fired.
    let mut p = recorded_platform("json", 0xFA17);
    let f = faas_workloads::by_name("json").unwrap();
    let clean = p
        .invoke("json", "t", &f.input_b(), RestoreStrategy::Warm)
        .unwrap()
        .final_memory
        .checksum();
    let mut plan = FaultPlan::new(9);
    plan.push_rule(FaultRule::on_kind(
        IoKind::FaultRead,
        InjectedFaultKind::ReadError,
        2,
    ));
    p.inject_storage_faults(plan);
    let branched = p
        .fork("json", "t", &f.input_b(), RestoreStrategy::Vanilla, 4)
        .unwrap();
    let plan = p.clear_storage_faults().unwrap();
    assert_eq!(plan.injected(), 2, "the schedule never fired");
    for (i, o) in branched.outcomes.iter().enumerate() {
        assert_eq!(
            o.final_memory.checksum(),
            clean,
            "sibling {i} corrupted by a healed read fault"
        );
    }
}

#[test]
fn exhausted_retries_fail_the_whole_fork_closed_and_deterministically() {
    // Every read failing forever: the fork must surface one typed
    // error — no sibling half-completes — and the same seed must
    // produce the identical error, byte for byte.
    let run = || {
        let mut p = recorded_platform("json", 0xFA17);
        let f = faas_workloads::by_name("json").unwrap();
        let mut plan = FaultPlan::new(3);
        plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, u64::MAX));
        p.inject_storage_faults(plan);
        let err = p
            .try_fork("json", "t", &f.input_b(), RestoreStrategy::Vanilla, 4)
            .expect_err("every read failing forever must fail the fork");
        match &err {
            InvokeError::Restore(RestoreError::ReadRetriesExhausted { site, .. }) => {
                assert_eq!(*site, RetrySite::GuestFault);
            }
            other => panic!("expected ReadRetriesExhausted, got {other:?}"),
        }
        format!("{err:?}")
    };
    assert_eq!(run(), run(), "fork failure is not deterministic");
}
