//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use faasnap::loadingset::LoadingSet;
use faasnap::mapper;
use faasnap::wset::WorkingSet;
use sim_mm::addr::{normalize, PageRange};
use sim_mm::vma::{AddressSpace, Backing, Resolved};
use sim_storage::file::FileId;
use sim_vm::guest_memory::GuestMemory;
use sim_vm::{CowMemory, GuestMem};

/// A small arbitrary set of distinct pages below `max`.
fn arb_pages(max: u64) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(0..max, 0..120).prop_map(|s| s.into_iter().collect())
}

proptest! {
    /// MAP_FIXED overlay semantics: the address space must agree with a
    /// naive "last mapping wins per page" model for any mapping sequence.
    #[test]
    fn vma_overlay_matches_naive_model(
        ops in proptest::collection::vec((0u64..200, 1u64..60, 0u8..3), 1..25)
    ) {
        let total = 260u64;
        let mut aspace = AddressSpace::new();
        let mut naive: Vec<Option<(u8, u64, u64)>> = vec![None; total as usize];
        for (start, len, kind) in ops {
            let end = (start + len).min(total);
            let range = PageRange::new(start, end);
            let backing = match kind {
                0 => Backing::Anonymous,
                1 => Backing::File { file: FileId(1), offset_page: start },
                _ => Backing::File { file: FileId(2), offset_page: 1000 + start },
            };
            aspace.map_fixed(range, backing);
            for p in start..end {
                naive[p as usize] = Some(match kind {
                    0 => (0, 0, 0),
                    1 => (1, 1, p),
                    _ => (2, 2, 1000 + p),
                });
            }
        }
        for p in 0..total {
            let got = aspace.resolve(p);
            match (naive[p as usize], got) {
                (None, None) => {}
                (Some((0, _, _)), Some(Resolved::Anonymous)) => {}
                (Some((_, f, fp)), Some(Resolved::File { file, file_page })) => {
                    prop_assert_eq!(file, FileId(f));
                    prop_assert_eq!(file_page, fp);
                }
                (expect, got) => prop_assert!(false, "page {}: {:?} vs {:?}", p, expect, got),
            }
        }
    }

    /// normalize() produces sorted, disjoint, non-adjacent ranges covering
    /// exactly the input's page set.
    #[test]
    fn normalize_preserves_page_set(
        ranges in proptest::collection::vec((0u64..500, 0u64..40), 0..30)
    ) {
        let input: Vec<PageRange> =
            ranges.iter().map(|&(s, l)| PageRange::with_len(s, l)).collect();
        let mut expected: Vec<bool> = vec![false; 600];
        for r in &input {
            for p in r.iter() {
                expected[p as usize] = true;
            }
        }
        let out = normalize(input);
        // Coverage identical.
        let mut got = vec![false; 600];
        for r in &out {
            for p in r.iter() {
                prop_assert!(!got[p as usize], "overlap in output");
                got[p as usize] = true;
            }
        }
        prop_assert_eq!(got, expected);
        // Sorted and non-adjacent.
        for w in out.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
    }

    /// Loading set = working set ∩ non-zero pages, modulo merged gaps:
    /// every proper loading-set page is covered; no covered page lies
    /// outside [min, max] of proper pages; zero pages only appear as gap
    /// filler inside merged regions.
    #[test]
    fn loading_set_invariants(
        ws_pages in arb_pages(4000),
        nonzero in arb_pages(4000),
        gap in 0u64..64
    ) {
        let mut ws = WorkingSet::with_group_size(64);
        ws.extend(&ws_pages);
        let mut mem = GuestMemory::new(4096);
        for &p in &nonzero {
            mem.write(p, p + 1);
        }
        let ls = LoadingSet::build(&ws, &mem, gap);

        let proper: std::collections::BTreeSet<u64> = ws_pages
            .iter()
            .copied()
            .filter(|p| mem.is_nonzero(*p))
            .collect();
        // Every proper page is covered with a valid file offset.
        for &p in &proper {
            prop_assert!(ls.covers(p), "proper page {} uncovered", p);
            prop_assert!(ls.file_page_of(p).is_some());
        }
        prop_assert_eq!(ls.core_pages(), proper.len() as u64);
        // File layout is a bijection: offsets are dense and unique.
        let mut seen = vec![false; ls.file_pages() as usize];
        for r in ls.regions() {
            for (i, _) in r.guest.iter().enumerate() {
                let fp = (r.file_start + i as u64) as usize;
                prop_assert!(!seen[fp], "file page reused");
                seen[fp] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "file has holes");
        // Regions sorted by (group, address).
        for w in ls.regions().windows(2) {
            prop_assert!(
                (w[0].group, w[0].guest.start) < (w[1].group, w[1].guest.start)
            );
        }
        // Merging respects the gap threshold: consecutive regions in
        // address order are separated by more than `gap` pages.
        let mut by_addr: Vec<_> = ls.regions().to_vec();
        by_addr.sort_by_key(|r| r.guest.start);
        for w in by_addr.windows(2) {
            prop_assert!(w[1].guest.start - w[0].guest.end > gap);
        }
    }

    /// Working-set groups are access-order-major: `pages()` preserves
    /// scan order, and the `i`-th recorded page lands in group
    /// `i / group_size`, so group numbers are non-decreasing in scan
    /// order (§4.3's prioritization signal).
    #[test]
    fn wset_groups_follow_access_order(
        accesses in proptest::collection::vec(0u64..300, 1..400),
        group_size in 1u64..65
    ) {
        // First-touch order with duplicates removed models one page
        // appearing across repeated mincore scans.
        let mut order: Vec<u64> = Vec::new();
        for &p in &accesses {
            if !order.contains(&p) {
                order.push(p);
            }
        }
        let mut ws = WorkingSet::with_group_size(group_size);
        ws.extend(&order);
        prop_assert_eq!(ws.pages(), &order[..]);
        let mut prev_group = 0u32;
        for (idx, (page, group)) in ws.pages_with_groups().enumerate() {
            prop_assert_eq!(page, order[idx]);
            prop_assert_eq!(u64::from(group), idx as u64 / group_size);
            prop_assert_eq!(ws.group_of_index(idx as u64), group);
            prop_assert!(group >= prev_group, "groups non-decreasing in scan order");
            prev_group = group;
        }
        prop_assert_eq!(ws.group_count(), (order.len() as u64).div_ceil(group_size));
    }

    /// Merged loading-set regions respect the gap bound: region
    /// endpoints are always *core* pages (working set ∩ non-zero), and
    /// any interior run of non-core filler spans at most `gap` pages —
    /// merging never bridges a hole wider than the threshold (§4.6).
    /// With `gap = 0` this degenerates to: the loading set contains no
    /// zero page at all.
    #[test]
    fn merged_regions_respect_gap_bound(
        ws_pages in arb_pages(4000),
        nonzero in arb_pages(4000),
        gap in 0u64..64
    ) {
        let mut ws = WorkingSet::with_group_size(64);
        ws.extend(&ws_pages);
        let mut mem = GuestMemory::new(4096);
        for &p in &nonzero {
            mem.write(p, p + 1);
        }
        let ls = LoadingSet::build(&ws, &mem, gap);
        let core: std::collections::BTreeSet<u64> = ws_pages
            .iter()
            .copied()
            .filter(|p| mem.is_nonzero(*p))
            .collect();
        for r in ls.regions() {
            prop_assert!(core.contains(&r.guest.start), "region starts on a core page");
            prop_assert!(core.contains(&(r.guest.end - 1)), "region ends on a core page");
            // Consecutive core pages inside a region are separated by at
            // most `gap` filler pages.
            let members: Vec<u64> = r.guest.iter().filter(|p| core.contains(p)).collect();
            for w in members.windows(2) {
                prop_assert!(
                    w[1] - w[0] <= gap + 1,
                    "interior hole of {} pages exceeds gap {}",
                    w[1] - w[0] - 1,
                    gap
                );
            }
        }
        if gap == 0 {
            for r in ls.regions() {
                for p in r.guest.iter() {
                    prop_assert!(mem.is_nonzero(p), "zero page {} in unmerged loading set", p);
                }
            }
        }
    }

    /// Hierarchical and flat FaaSnap mappings are observationally
    /// identical for arbitrary loading sets.
    #[test]
    fn mapping_variants_agree(
        ws_pages in arb_pages(1500),
        nonzero_extra in arb_pages(1500)
    ) {
        let total = 1600u64;
        let mut mem = GuestMemory::new(total);
        for &p in ws_pages.iter().chain(nonzero_extra.iter()) {
            mem.write(p, p + 1);
        }
        let mut ws = WorkingSet::new();
        ws.extend(&ws_pages);
        let ls = LoadingSet::build(&ws, &mem, 8);
        let nz = mem.nonzero_regions();
        let mut h = AddressSpace::new();
        mapper::map_faasnap_hierarchical(&mut h, total, &nz, &ls, FileId(1), FileId(2));
        let mut fl = AddressSpace::new();
        mapper::map_faasnap_flat(&mut fl, total, &nz, &ls, FileId(1), FileId(2));
        for p in 0..total {
            prop_assert_eq!(h.resolve(p), fl.resolve(p), "page {} differs", p);
        }
    }

    /// The guest-memory zero/non-zero scan partitions the address space.
    #[test]
    fn region_scan_partitions(pages in arb_pages(2000)) {
        let mut mem = GuestMemory::new(2048);
        for &p in &pages {
            mem.write(p, 1);
        }
        let nz = mem.nonzero_regions();
        let z = mem.zero_regions();
        let mut covered = vec![0u8; 2048];
        for r in nz.iter().chain(z.iter()) {
            for p in r.iter() {
                covered[p as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
        for r in &nz {
            for p in r.iter() {
                prop_assert!(mem.is_nonzero(p));
            }
        }
    }
}

proptest! {
    /// COW overlay conservation over random fork trees. N siblings'
    /// N× logical pages are physically backed by exactly one shared
    /// base plus each sibling's private overlay, and the accounting is
    /// exact: every sibling's `private_pages()` equals an independent
    /// replay model of its own write history (the inherited prefix
    /// included), while the base never changes. Because each sibling's
    /// materialized image equals its own replay, no sibling ever
    /// observes another's dirty write.
    #[test]
    fn cow_fork_tree_conservation_and_isolation(
        base_pages in arb_pages(200),
        // Each op: (kind, sibling selector, page, token). kind % 4 == 0
        // forks a new sibling off an existing one; anything else writes
        // the token (0 = zero the page) to a page of an existing
        // sibling.
        ops in proptest::collection::vec((0u8..8, 0usize..64, 0u64..200, 0u64..40), 1..160)
    ) {
        let mut base = GuestMemory::new(200);
        for &p in &base_pages {
            base.write(p, p * 7 + 1);
        }
        let base_sum = base.checksum();
        let base = std::rc::Rc::new(base);
        let mut siblings = vec![CowMemory::new(base.clone())];
        // The replay model: per sibling, the overlay an independent
        // bookkeeper expects — write inserts, zero over a non-zero base
        // page tombstones, zero over a zero base page erases.
        let mut model: Vec<std::collections::BTreeMap<u64, u64>> = vec![Default::default()];
        for (kind, sel, page, token) in ops {
            let i = sel % siblings.len();
            if kind % 4 == 0 && siblings.len() < 8 {
                siblings.push(siblings[i].fork());
                model.push(model[i].clone());
            } else if token == 0 {
                siblings[i].zero_range(PageRange::new(page, page + 1));
                if base.is_nonzero(page) {
                    model[i].insert(page, 0);
                } else {
                    model[i].remove(&page);
                }
            } else {
                siblings[i].write(page, token);
                model[i].insert(page, token);
            }
        }
        // Physical sharing: every sibling holds the one base (plus our
        // local handle), never a copy.
        prop_assert_eq!(
            std::rc::Rc::strong_count(&base),
            siblings.len() + 1,
            "fork tree must share a single base image"
        );
        prop_assert_eq!(base.checksum(), base_sum, "base mutated by a sibling");
        // Conservation: shared + Σ private == base pages + exactly the
        // distinct pages each sibling dirtied, nothing double-counted.
        let shared = base.nonzero_count();
        let private: u64 = siblings.iter().map(CowMemory::private_pages).sum();
        let expected_private: u64 = model.iter().map(|m| m.len() as u64).sum();
        prop_assert_eq!(private, expected_private);
        prop_assert_eq!(shared + private, base.nonzero_count() + expected_private);
        // Isolation: each sibling materializes to its own replay.
        for (i, (sib, m)) in siblings.iter().zip(&model).enumerate() {
            let mut expect = (*base).clone();
            for (&p, &t) in m {
                expect.write(p, t);
            }
            prop_assert_eq!(
                sib.materialize(),
                expect,
                "sibling {} observed foreign dirty state",
                i
            );
        }
    }
}
