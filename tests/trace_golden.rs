//! Golden tests for the observability layer: the Chrome trace, text
//! tree, and Prometheus snapshots produced by the CLI's exact code
//! paths are pinned byte-for-byte.
//!
//! The goldens live in `tests/golden/`. After an intentional change to
//! the span taxonomy or metric set, regenerate them with
//! `FAASNAP_BLESS=1 cargo test --test trace_golden` and review the diff
//! like any other code change.

use std::sync::OnceLock;

use faasnap::strategy::RestoreStrategy;
use faasnap_cluster::{run_cluster, ClusterConfig, RoutePolicy};
use faasnap_daemon::observe::traced_invoke;
use faasnap_obs::{
    chrome_trace_json, folded_stacks, render_phase_table, render_text_tree, Metrics, Tracer,
};
use proptest::prelude::*;
use sim_storage::profiles::DiskProfile;

/// Compares `actual` against the golden at `rel` (repo-relative),
/// rewriting it instead when `FAASNAP_BLESS` is set.
fn check_golden(rel: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    if std::env::var_os("FAASNAP_BLESS").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {rel}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {rel}: {e}\nregenerate with FAASNAP_BLESS=1 cargo test")
    });
    assert_eq!(
        expected, actual,
        "{rel} drifted; regenerate with FAASNAP_BLESS=1 and review the diff"
    );
}

/// One traced hello-world invocation with the CLI's exact parameters
/// (`faasnapd invoke hello-world`): input B, FaaSnap strategy, NVMe
/// profile, seed 0xFA5D. Rendered once and shared across tests.
fn cli_artifacts() -> &'static (String, String, String) {
    static RUN: OnceLock<(String, String, String)> = OnceLock::new();
    RUN.get_or_init(|| {
        let run = invoke_once();
        (
            chrome_trace_json(&run.tracer),
            render_text_tree(&run.tracer),
            run.metrics.render_prometheus(),
        )
    })
}

fn invoke_once() -> faasnap_daemon::observe::TraceRun {
    let f = faas_workloads::by_name("hello-world").unwrap();
    traced_invoke(
        "hello-world",
        &f.input_b(),
        RestoreStrategy::faasnap(),
        DiskProfile::nvme_c5d(),
        0xFA5D,
    )
    .unwrap()
}

#[test]
fn invoke_trace_matches_golden_and_is_valid() {
    let (json, _, _) = cli_artifacts();
    // Structurally a Chrome trace: top-level displayTimeUnit +
    // traceEvents, first event the process-name metadata record.
    let doc = sim_core::json::parse(json).expect("trace must parse as JSON");
    assert_eq!(doc.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(events.len() > 10, "only {} trace events", events.len());
    assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));

    // The span taxonomy crosses at least three layers of the stack:
    // daemon (platform/*), runtime (vm/loader), memory manager (mm +
    // fault/*) — and covers at least six distinct span names.
    let mut names = Vec::new();
    let mut cats = Vec::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let name = e.get("name").unwrap().as_str().unwrap().to_string();
        let cat = e.get("cat").unwrap().as_str().unwrap().to_string();
        if !names.contains(&name) {
            names.push(name);
        }
        if !cats.contains(&cat) {
            cats.push(cat);
        }
    }
    assert!(
        names.len() >= 6,
        "only {} span names: {names:?}",
        names.len()
    );
    assert!(
        cats.len() >= 3,
        "only {} span categories: {cats:?}",
        cats.len()
    );

    check_golden("tests/golden/invoke_trace.json", json);
}

#[test]
fn invoke_trace_byte_identical_across_runs() {
    let (json, _, _) = cli_artifacts();
    let again = chrome_trace_json(&invoke_once().tracer);
    assert_eq!(*json, again, "same seed must give byte-identical traces");
}

#[test]
fn invoke_text_tree_matches_golden() {
    let (_, text, _) = cli_artifacts();
    assert!(text.contains("platform/invoke"));
    assert!(text.contains("loader/prefetch"));
    check_golden("tests/golden/invoke_trace.txt", text);
}

#[test]
fn invoke_metrics_match_golden() {
    let (_, _, prom) = cli_artifacts();
    assert!(prom.contains("# TYPE faasnap_faults_total counter"));
    assert!(prom.contains("faasnap_prefetch_bytes_total"));
    assert!(prom.contains("faasnap_fault_wait_us_bucket"));
    check_golden("tests/golden/invoke_metrics.prom", prom);
}

/// The folded flamegraph stacks `faasnapd invoke hello-world
/// --profile-out` writes: collapse format, one `stack self-ns` line,
/// lexicographically sorted — loadable in speedscope/inferno as-is.
#[test]
fn invoke_folded_stacks_match_golden() {
    let run = invoke_once();
    let folded = folded_stacks(&run.tracer);
    for line in folded.lines() {
        let (stack, ns) = line.rsplit_once(' ').expect("stack <self-ns>");
        assert!(!stack.is_empty());
        assert!(ns.parse::<u64>().is_ok(), "bad self-ns in {line:?}");
    }
    // Every phase the profiler attributes must come from a real span;
    // restore + prefetch + faults all show up for the FaaSnap strategy.
    assert!(folded.contains(";setup "));
    assert!(folded.contains("loader/prefetch;loader/chunk "));
    assert!(folded.contains(";fault/minor "));
    check_golden("tests/golden/invoke_profile.folded", &folded);
}

/// The per-phase self/total table printed alongside `--profile-out`.
#[test]
fn invoke_phase_table_matches_golden() {
    let run = invoke_once();
    let table = render_phase_table(&run.tracer);
    assert!(table.contains("restore"));
    assert!(table.contains("guest-fault-wait"));
    assert!(table.contains("loader-prefetch"));
    assert!(table.contains("compute"));
    check_golden("tests/golden/invoke_phases.txt", &table);
}

/// The engine self-profile report `--self-profile-out` writes. The
/// counters are pure functions of the simulated run; wall-ns reads zero
/// in default builds (the `wallclock` feature is off), so the report is
/// golden-pinnable.
#[test]
#[cfg_attr(feature = "obs-wallclock", ignore = "wall-ns nonzero under wallclock")]
fn invoke_self_profile_matches_golden() {
    let run = invoke_once();
    let report = run.selfprof.render_report();
    assert!(report.contains("engine/delivered"));
    assert!(report.contains("mm/resolve_calls"));
    assert!(report.contains("mm/map_ops"));
    check_golden("tests/golden/invoke_selfprof.txt", &report);
}

fn smoke_metrics(seed: u64) -> (String, String) {
    let mut cfg = ClusterConfig::smoke(RoutePolicy::SnapshotLocality, seed);
    cfg.obs = Metrics::enabled();
    cfg.tracer = Tracer::enabled();
    run_cluster(&cfg);
    (cfg.obs.render_prometheus(), chrome_trace_json(&cfg.tracer))
}

#[test]
fn cluster_metrics_match_golden() {
    let (prom, _) = smoke_metrics(42);
    assert!(prom.contains("fleet_requests_total"));
    assert!(prom.contains("fleet_latency_ms_bucket"));
    assert!(prom.contains("fleet_store_unique_bytes"));
    assert!(prom.contains("fleet_store_dedup_ratio"));
    check_golden("tests/golden/cluster_metrics.prom", &prom);
}

/// The fleet JSON document for the smoke config — byte-for-byte what
/// `faasnapd cluster --smoke --policy snapshot-locality --seed 42`
/// prints to stdout, including the snapshot-store dedup metrics.
#[test]
fn cluster_fleet_json_matches_golden() {
    let cfg = ClusterConfig::smoke(RoutePolicy::SnapshotLocality, 42);
    let m = run_cluster(&cfg);
    let doc = sim_core::json::Value::object()
        .with("runs", sim_core::json::Value::Array(vec![m.to_json()]));
    let mut out = doc.to_string_pretty();
    out.push('\n');
    assert!(out.contains("\"store\""));
    assert!(out.contains("\"dedup_ratio\""));
    assert!(out.contains("\"snapshots_resident\""));
    check_golden("tests/golden/cluster_fleet.json", &out);
}

proptest! {
    /// Fleet observability is a pure function of the seed: metrics and
    /// trace bytes replay exactly.
    #[test]
    fn cluster_observability_deterministic(seed in 0u64..10_000) {
        let (prom_a, trace_a) = smoke_metrics(seed);
        let (prom_b, trace_b) = smoke_metrics(seed);
        prop_assert_eq!(prom_a, prom_b);
        prop_assert_eq!(trace_a, trace_b);
    }
}
