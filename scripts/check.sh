#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify (build + tests).
# Everything runs offline; there are no registry dependencies.
#
# Usage: scripts/check.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> faasnap-lint: determinism & architecture rules (deep)"
# Fails on any diagnostic; the final lines report the unwrap-budget and
# panic-path ratchets (call sites used vs. the caps in faasnap-lint).
# --deep adds the interprocedural passes: call-graph determinism taint,
# env reads, float hazards, dead allows.
cargo run --release -q -p faasnap-lint -- --deep

echo "==> faasnap-lint: --json report matches tests/golden/lint_deep.json"
# Pins the machine-readable report (budgets included) byte-for-byte, so
# a budget bump or a new diagnostic is always a reviewed diff.
LINT_TMP="$(mktemp)"
cargo run --release -q -p faasnap-lint -- --deep --json > "$LINT_TMP"
diff -u tests/golden/lint_deep.json "$LINT_TMP" \
    || { rm -f "$LINT_TMP"; echo "deep lint JSON drifted from tests/golden/lint_deep.json"; exit 1; }
rm -f "$LINT_TMP"

echo "==> tier-1 verify: cargo build --release"
cargo build --release

echo "==> tier-1 verify: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> fault-injection suite: differential byte-identity under fixed seeds"
# The fault schedules in these tests are seeded constants, so this gate
# is deterministic: a pass today is a pass everywhere.
cargo test --release -q --test fault_injection

echo "==> trace-schema smoke: faasnapd invoke/cluster artifacts match goldens"
# The tier-1 build above only covers the root package; make sure the
# CLI binary is current before diffing its artifacts.
cargo build --release -q -p faasnap-cluster --bin faasnapd
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./target/release/faasnapd invoke hello-world \
    --trace-out "$OBS_TMP/invoke_trace.json" \
    --metrics-out "$OBS_TMP/invoke_metrics.prom" \
    --profile-out "$OBS_TMP/invoke_profile.folded" >/dev/null
./target/release/faasnapd cluster --smoke --policy snapshot-locality --seed 42 \
    --metrics-out "$OBS_TMP/cluster_metrics.prom" > "$OBS_TMP/cluster_fleet.json"
# Snapshot branching: the fixed fork_smoke fleet must branch the same
# requests and save the same disk bytes on every machine.
./target/release/faasnapd cluster --smoke --branch --policy snapshot-locality --seed 42 \
    > "$OBS_TMP/fork_fleet.json"
for artifact in invoke_trace.json invoke_metrics.prom invoke_profile.folded \
    cluster_metrics.prom cluster_fleet.json fork_fleet.json; do
    diff -u "tests/golden/$artifact" "$OBS_TMP/$artifact" \
        || { echo "CLI $artifact drifted from tests/golden/$artifact"; exit 1; }
done

echo "==> cluster_mega: >=10^6 invocations across >=1000 hosts in budget"
# Trace-scale gate (ROADMAP item 2): the fixed mega fleet must finish
# inside a 120 s budget — far above its expected few-second wall, so
# only an asymptotic regression (a reintroduced per-event scan) trips
# it — and must actually serve a million invocations on 1000 hosts.
timeout 120 ./target/release/faasnapd cluster --mega --policy snapshot-locality --seed 42 \
    > "$OBS_TMP/cluster_mega.json" \
    || { echo "cluster_mega exceeded its 120 s budget"; exit 1; }
python3 - "$OBS_TMP/cluster_mega.json" << 'EOF'
import json, sys
run = json.load(open(sys.argv[1]))["runs"][0]
served, hosts = run["fleet"]["served"], run["hosts"]
assert served >= 1_000_000, f"cluster_mega served {served} < 1e6"
assert hosts >= 1000, f"cluster_mega hosts {hosts} < 1000"
print(f"cluster_mega: {served} invocations across {hosts} hosts")
EOF

echo "==> bench trajectory: regression-gate self-test, then compare"
# The self-test proves a 2x injected slowdown trips the gate; the
# compare then diffs this machine's run against the latest committed
# BENCH_*.json and appends the new trajectory point.
scripts/bench.sh --selftest
scripts/bench.sh --compare

echo "All checks passed."
