#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 verify (build + tests).
# Everything runs offline; there are no registry dependencies.
#
# Usage: scripts/check.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1 verify: cargo build --release"
cargo build --release

echo "==> tier-1 verify: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "All checks passed."
