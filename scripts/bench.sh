#!/usr/bin/env bash
# Benchmark harness: times the main CLI drivers end-to-end and emits a
# JSON report — wall-clock per driver, fleet events/sec, and the
# snapshot-store dedup ratio with dedup on vs off.
#
# Usage: scripts/bench.sh [out.json]
#
# Default output is BENCH_<YYYY-MM-DD>.json in the repo root. A baseline
# (BENCH_2026-08-08.json) is committed; wall-clock numbers are
# machine-dependent and only comparable across runs on the same machine,
# but served counts and dedup ratios are deterministic per seed.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_$(date +%F).json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "==> building release faasnapd"
cargo build --release -q -p faasnap-cluster --bin faasnapd

: > "$TMP/wall.txt"
time_driver() {
    local name="$1"
    shift
    echo "==> $name: $*"
    local t0 t1
    t0=$(date +%s%N)
    "$@" > "$TMP/$name.out" 2> /dev/null
    t1=$(date +%s%N)
    echo "$name $(((t1 - t0) / 1000000))" >> "$TMP/wall.txt"
}

FD=./target/release/faasnapd
time_driver invoke_hello_faasnap "$FD" invoke hello-world
time_driver invoke_json_reap "$FD" invoke json --strategy reap
time_driver burst_json_x8 "$FD" burst json --parallelism 8
time_driver cluster_smoke "$FD" cluster --smoke --policy snapshot-locality --seed 42
time_driver cluster_smoke_dedup_off "$FD" cluster --smoke --policy snapshot-locality \
    --seed 42 --dedup off

python3 - "$TMP" "$OUT" << 'EOF'
import json, sys, datetime, pathlib

tmp, out = pathlib.Path(sys.argv[1]), sys.argv[2]
walls = dict(
    (name, int(ms))
    for name, ms in (line.split() for line in (tmp / "wall.txt").read_text().splitlines())
)

drivers = []
for name, wall_ms in walls.items():
    entry = {"name": name, "wall_ms": wall_ms}
    if name.startswith("cluster"):
        doc = json.loads((tmp / f"{name}.out").read_text())
        fleet = doc["runs"][0]["fleet"]
        served = fleet["served"]
        entry["served"] = served
        entry["events_per_sec"] = round(served / (wall_ms / 1000.0), 1) if wall_ms else None
        entry["dedup_ratio"] = fleet["store"]["dedup_ratio"]
        entry["snapshots_resident"] = fleet["store"]["snapshots_resident"]
    drivers.append(entry)

report = {"date": datetime.date.today().isoformat(), "drivers": drivers}
pathlib.Path(out).write_text(json.dumps(report, indent=2) + "\n")
print(f"wrote {out}")
EOF

cat "$OUT"
