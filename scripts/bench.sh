#!/usr/bin/env bash
# Benchmark harness: times the main CLI drivers end-to-end and emits a
# JSON report — wall-clock per driver, fleet events/sec, and the
# snapshot-store dedup ratio with dedup on vs off.
#
# Usage:
#   scripts/bench.sh [out.json]      measure and write a report
#                                    (default BENCH_<YYYY-MM-DD>.json)
#   scripts/bench.sh --compare       measure, diff against the latest
#                                    committed BENCH_*.json, fail on a
#                                    >15% wall-clock or events/sec
#                                    regression, then append the new
#                                    point to the trajectory
#   scripts/bench.sh --selftest      verify the regression gate itself:
#                                    a 2x injected slowdown of the run
#                                    just measured MUST trip the compare
#
# Report schema (schema_version 2): a top-level `config` records the
# driver parameters the numbers depend on (seed, chunk size), and each
# cluster driver carries its dedup flag. `--compare` refuses to diff
# reports whose schema_version or config differ — cross-config deltas
# are not regressions, they are different experiments.
#
# Wall-clock numbers are machine-dependent and only comparable across
# runs on the same machine; served counts and dedup ratios are
# deterministic per seed, and `--compare` treats a drift in those as a
# failure too (it means behavior changed without re-blessing the
# baseline: rerun `scripts/bench.sh` and review the new report).
#
# Methodology: every driver except cluster_mega is sampled 5 times and
# the median wall is reported; the smoke fleets also use `faasnapd
# --repeat` to amortize process startup over 20 in-process runs, so
# their wall_ms is per-simulation (fractional ms). Ratio-based gates
# skip sub-25 ms measurements unless the absolute slowdown is >= 5 ms.
#
# FAASNAP_BENCH_SLOW=<factor> multiplies measured wall times in the
# generated report — the hook `--selftest` uses to prove the gate trips.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE=run
OUT=""
for arg in "$@"; do
    case "$arg" in
        --compare) MODE=compare ;;
        --selftest) MODE=selftest ;;
        --*) echo "bench.sh: unknown flag $arg" >&2; exit 2 ;;
        *) OUT="$arg" ;;
    esac
done
OUT="${OUT:-BENCH_$(date +%F).json}"

SEED=42
CHUNK_BYTES=2097152
# Each non-mega driver is sampled MEDIAN_RUNS times and the report
# records the median wall, so a single scheduler hiccup cannot move the
# trajectory. The smoke fleets additionally run SMOKE_REPEAT in-process
# repetitions per sample (faasnapd --repeat asserts they are
# byte-identical) and record wall/SMOKE_REPEAT — per-simulation time
# with the ~2 ms process-startup floor amortized away, which at ~1-2 ms
# per fleet would otherwise dominate the measurement.
MEDIAN_RUNS=5
SMOKE_REPEAT=20

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "==> building release faasnapd + faasnap-lint"
cargo build --release -q -p faasnap-cluster --bin faasnapd
cargo build --release -q -p faasnap-lint

: > "$TMP/wall.txt"
# time_driver <name> <divisor> <cmd...>: appends one "<name> <ns>
# <divisor>" sample; the report takes the median over samples of
# ns/divisor per name.
time_driver() {
    local name="$1" divisor="$2"
    shift 2
    echo "==> $name: $*"
    local t0 t1
    t0=$(date +%s%N)
    "$@" > "$TMP/$name.out" 2> /dev/null
    t1=$(date +%s%N)
    echo "$name $((t1 - t0)) $divisor" >> "$TMP/wall.txt"
}

FD=./target/release/faasnapd
for _ in $(seq "$MEDIAN_RUNS"); do
    time_driver invoke_hello_faasnap 1 "$FD" invoke hello-world
    time_driver invoke_json_reap 1 "$FD" invoke json --strategy reap
    time_driver burst_json_x8 1 "$FD" burst json --parallelism 8
    # Snapshot branching: 100 sibling restores from one snapshot —
    # tracks the shared-fault-path cost (cache + in-flight dedup + COW).
    time_driver fork_fanout_x100 1 "$FD" invoke json --fork 100
    time_driver cluster_smoke "$SMOKE_REPEAT" "$FD" cluster --smoke --policy snapshot-locality \
        --seed "$SEED" --repeat "$SMOKE_REPEAT"
    time_driver cluster_smoke_dedup_off "$SMOKE_REPEAT" "$FD" cluster --smoke \
        --policy snapshot-locality --seed "$SEED" --dedup off --repeat "$SMOKE_REPEAT"
    # Deep static analysis over the whole workspace: parse, call graph,
    # taint. Tracks analyzer cost as the codebase and the analyzer grow.
    time_driver lint_deep 1 ./target/release/faasnap-lint --deep
done
# Trace scale: ≥10⁶ invocations across 1000 hosts, one sample (its
# multi-second wall is far above timer noise).
time_driver cluster_mega 1 "$FD" cluster --mega --policy snapshot-locality --seed "$SEED"

# Renders $TMP measurements into a schema v2 report at $1. Honors
# FAASNAP_BENCH_SLOW as a wall-time multiplier (self-test hook).
generate() {
    python3 - "$TMP" "$1" "$SEED" "$CHUNK_BYTES" << 'EOF'
import json, os, sys, datetime, pathlib, statistics

tmp, out = pathlib.Path(sys.argv[1]), sys.argv[2]
seed, chunk_bytes = int(sys.argv[3]), int(sys.argv[4])
slow = float(os.environ.get("FAASNAP_BENCH_SLOW", "1"))
# Median over the samples of each driver (ns / in-process divisor),
# insertion-ordered by first appearance.
samples = {}
for line in (tmp / "wall.txt").read_text().splitlines():
    name, ns, divisor = line.split()
    samples.setdefault(name, []).append(int(ns) / 1e6 / int(divisor))
walls = dict(
    (name, round(statistics.median(vals) * slow, 3)) for name, vals in samples.items()
)

drivers = []
for name, wall_ms in walls.items():
    entry = {"name": name, "wall_ms": wall_ms}
    if name.startswith("cluster"):
        doc = json.loads((tmp / f"{name}.out").read_text())
        fleet = doc["runs"][0]["fleet"]
        served = fleet["served"]
        entry["dedup"] = not name.endswith("_dedup_off")
        entry["served"] = served
        entry["events_per_sec"] = round(served / (wall_ms / 1000.0), 1) if wall_ms else None
        entry["dedup_ratio"] = fleet["store"]["dedup_ratio"]
        entry["snapshots_resident"] = fleet["store"]["snapshots_resident"]
    drivers.append(entry)

report = {
    "schema_version": 2,
    "date": datetime.date.today().isoformat(),
    "config": {"seed": seed, "chunk_bytes": chunk_bytes},
    "drivers": drivers,
}
pathlib.Path(out).write_text(json.dumps(report, indent=2) + "\n")
EOF
}

# compare <baseline.json> <current.json>: exit 1 on a perf regression or
# deterministic-value drift, exit 3 on a schema/config mismatch.
compare() {
    python3 - "$1" "$2" << 'EOF'
import json, sys, pathlib

old = json.loads(pathlib.Path(sys.argv[1]).read_text())
new = json.loads(pathlib.Path(sys.argv[2]).read_text())

# Cross-schema diffs are different experiments, not regressions.
if old.get("schema_version") != new.get("schema_version"):
    print(f"bench compare: schema_version {old.get('schema_version')} vs "
          f"{new.get('schema_version')} — refusing to diff", file=sys.stderr)
    sys.exit(3)
if old.get("config") != new.get("config"):
    print(f"bench compare: config {old.get('config')} vs {new.get('config')} "
          f"— refusing to diff", file=sys.stderr)
    sys.exit(3)

# Wall-clock gate: >15% slower, with an absolute slack so millisecond
# noise on tiny drivers cannot trip it. The suite total gets a tighter
# slack — aggregate noise averages out.
RATIO, DRIVER_SLACK_MS, TOTAL_SLACK_MS = 1.15, 30, 10
# A 15% ratio on a sub-25 ms measurement is within a timer tick or two
# of noise: ratio-based checks (events/sec) only apply above this wall
# floor, unless the absolute slowdown is itself >= 5 ms — a real
# regression on a tiny driver still trips on magnitude.
MIN_RATE_WALL_MS, MIN_ABS_DELTA_MS = 25, 5

olds = {d["name"]: d for d in old["drivers"]}
news = {d["name"]: d for d in new["drivers"]}
failures = []
for name in sorted(olds.keys() & news.keys()):
    o, n = olds[name], news[name]
    if o.get("dedup") != n.get("dedup"):
        print(f"bench compare: {name}: dedup flag changed — refusing to diff",
              file=sys.stderr)
        sys.exit(3)
    if n["wall_ms"] > o["wall_ms"] * RATIO + DRIVER_SLACK_MS:
        failures.append(f"{name}: wall {o['wall_ms']} ms -> {n['wall_ms']} ms "
                        f"(>{int((RATIO - 1) * 100)}% + {DRIVER_SLACK_MS} ms)")
    rate_eligible = (o["wall_ms"] >= MIN_RATE_WALL_MS
                     or n["wall_ms"] - o["wall_ms"] >= MIN_ABS_DELTA_MS)
    if (o.get("events_per_sec") and n.get("events_per_sec") and rate_eligible
            and n["events_per_sec"] < o["events_per_sec"] / RATIO):
        failures.append(f"{name}: events/sec {o['events_per_sec']} -> "
                        f"{n['events_per_sec']}")
    for det in ("served", "dedup_ratio", "snapshots_resident"):
        if det in o and o[det] != n.get(det):
            failures.append(f"{name}: deterministic {det} {o[det]} -> {n.get(det)} "
                            f"(behavior changed; rerun scripts/bench.sh to re-bless)")

# Totals compare only drivers both reports know: a newly-added driver
# is new coverage, not a regression of the old suite.
common = olds.keys() & news.keys()
o_total = round(sum(olds[name]["wall_ms"] for name in common), 3)
n_total = round(sum(news[name]["wall_ms"] for name in common), 3)
if n_total > o_total * RATIO + TOTAL_SLACK_MS:
    failures.append(f"suite total: {o_total} ms -> {n_total} ms")

if failures:
    print("bench compare: REGRESSION vs " + sys.argv[1], file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print(f"bench compare: OK vs {sys.argv[1]} (suite {o_total} ms -> {n_total} ms)")
EOF
}

generate "$TMP/current.json"

case "$MODE" in
    run)
        cp "$TMP/current.json" "$OUT"
        echo "wrote $OUT"
        cat "$OUT"
        ;;
    compare)
        BASELINE="$(ls BENCH_*.json 2> /dev/null | sort | tail -n 1 || true)"
        if [[ -z "$BASELINE" ]]; then
            echo "bench compare: no committed BENCH_*.json baseline" >&2
            exit 2
        fi
        compare "$BASELINE" "$TMP/current.json"
        cp "$TMP/current.json" "$OUT"
        echo "appended trajectory point $OUT"
        ;;
    selftest)
        # The gate must trip on a 2x slowdown of this very run — no
        # dependence on how fast the committed baseline's machine was.
        FAASNAP_BENCH_SLOW=2 generate "$TMP/slowed.json"
        if compare "$TMP/current.json" "$TMP/slowed.json" > /dev/null 2>&1; then
            echo "bench selftest: FAIL — 2x slowdown did not trip the gate" >&2
            exit 1
        fi
        echo "bench selftest: OK — 2x slowdown trips the regression gate"
        ;;
esac
