//! Disk performance profiles.
//!
//! The paper measures two storage configurations:
//! - a local NVMe SSD on the c5d.metal host: "measured maximum throughput
//!   of 1589 MB/s and 285,000 IOPS" (§3.1, §6.1);
//! - an AWS EBS io2 volume: "64K maximum IOPS and 1 GB/s maximum
//!   throughput" (§6.7).
//!
//! Setup latencies are not reported directly; they are calibrated so that
//! the simulated fault-time distributions match Figure 2 (major page
//! faults mostly in the 32–512 µs buckets on NVMe) and so that baseline
//! Firecracker on EBS lands ~33 % slower than on NVMe (§6.7).

use sim_core::time::SimDuration;

/// Performance parameters of a simulated block device.
#[derive(Clone, Debug, PartialEq)]
pub struct DiskProfile {
    /// Human-readable name, e.g. `"nvme-c5d"`.
    pub name: &'static str,
    /// Sustained data-bus bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Maximum request admission rate (requests per second).
    pub max_iops: u64,
    /// Per-request setup latency for a random (non-sequential) read.
    pub random_setup: SimDuration,
    /// Per-request setup latency when the request continues the previous
    /// request on the same file (controller/FTL locality, no full seek).
    pub sequential_setup: SimDuration,
    /// Relative spread applied as multiplicative jitter on setup latency
    /// (0.0 disables jitter; the paper's distributions have visible tails).
    pub latency_jitter: f64,
    /// Per-command device-side processing charged against the shared bus
    /// for random requests. This is what makes many small scattered reads
    /// aggregate worse than few large sequential ones even at high queue
    /// depth (the §4.7 motivation for the compact loading-set file).
    pub random_bus_overhead: SimDuration,
    /// Per-command bus overhead for sequential continuations.
    pub sequential_bus_overhead: SimDuration,
}

impl DiskProfile {
    /// The paper's local NVMe SSD (c5d.metal instance store).
    pub fn nvme_c5d() -> Self {
        DiskProfile {
            name: "nvme-c5d",
            bandwidth_bytes_per_sec: 1589 * 1_000_000,
            max_iops: 285_000,
            random_setup: SimDuration::from_micros(68),
            sequential_setup: SimDuration::from_micros(6),
            latency_jitter: 0.35,
            random_bus_overhead: SimDuration::from_micros(12),
            sequential_bus_overhead: SimDuration::from_nanos(1_500),
        }
    }

    /// The paper's remote EBS io2 volume (§6.7).
    pub fn ebs_io2() -> Self {
        DiskProfile {
            name: "ebs-io2",
            bandwidth_bytes_per_sec: 1_000 * 1_000_000,
            max_iops: 64_000,
            random_setup: SimDuration::from_micros(450),
            sequential_setup: SimDuration::from_micros(90),
            latency_jitter: 0.25,
            random_bus_overhead: SimDuration::from_micros(24),
            sequential_bus_overhead: SimDuration::from_micros(3),
        }
    }

    /// An idealized infinitely fast device (useful in tests to isolate
    /// non-storage costs; approximates the `Cached` reference setting when
    /// combined with a pre-populated page cache).
    pub fn instant() -> Self {
        DiskProfile {
            name: "instant",
            bandwidth_bytes_per_sec: u64::MAX,
            max_iops: u64::MAX,
            random_setup: SimDuration::ZERO,
            sequential_setup: SimDuration::ZERO,
            latency_jitter: 0.0,
            random_bus_overhead: SimDuration::ZERO,
            sequential_bus_overhead: SimDuration::ZERO,
        }
    }

    /// Time to push `bytes` through the data bus.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }

    /// Minimum spacing between request admissions imposed by the IOPS cap.
    pub fn iops_gap(&self) -> SimDuration {
        if self.max_iops == u64::MAX {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(1.0 / self.max_iops as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_transfer_times() {
        let p = DiskProfile::nvme_c5d();
        // 4 KiB at 1589 MB/s is ~2.6 us.
        let t = p.transfer_time(4096).as_micros_f64();
        assert!((2.0..3.5).contains(&t), "4KiB transfer {t}us");
        // 512 MiB takes ~338 ms.
        let t = p.transfer_time(512 * 1024 * 1024).as_millis_f64();
        assert!((300.0..380.0).contains(&t), "512MiB transfer {t}ms");
    }

    #[test]
    fn nvme_iops_gap() {
        let p = DiskProfile::nvme_c5d();
        let g = p.iops_gap().as_micros_f64();
        assert!((3.0..4.0).contains(&g), "iops gap {g}us");
    }

    #[test]
    fn ebs_slower_than_nvme() {
        let nvme = DiskProfile::nvme_c5d();
        let ebs = DiskProfile::ebs_io2();
        assert!(ebs.random_setup > nvme.random_setup);
        assert!(ebs.iops_gap() > nvme.iops_gap());
        assert!(ebs.transfer_time(1 << 20) > nvme.transfer_time(1 << 20));
    }

    #[test]
    fn instant_profile_is_free() {
        let p = DiskProfile::instant();
        assert!(p.transfer_time(u64::MAX / 2).is_zero());
        assert!(p.iops_gap().is_zero());
    }
}
