//! Simulated file registry.
//!
//! Snapshot artifacts (memory files, working-set files, loading-set files,
//! VM state files) are modeled as files with a length, a kind, and a home
//! device. Page *contents* are tracked by the VM layer; the storage layer
//! only needs identity and extent so the device and page cache can account
//! for reads.

use std::collections::BTreeMap;

/// Identifies a simulated file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Identifies a simulated block device within a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// What role a file plays, for reporting and sanity checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Full copy of guest physical memory (one per snapshot).
    SnapshotMemory,
    /// Firecracker VM state (device + vCPU state); small.
    SnapshotState,
    /// REAP compact working-set file.
    WorkingSet,
    /// FaaSnap compact loading-set file.
    LoadingSet,
    /// Content-addressed chunk-store extent file (see `chunked`): holds
    /// deduplicated chunks that logical snapshot files resolve into.
    ChunkStore,
    /// Guest rootfs / kernel image, or anything else.
    Other,
}

/// Metadata for one simulated file.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Display name, e.g. `"image.snap.mem"`.
    pub name: String,
    /// Role of the file.
    pub kind: FileKind,
    /// Length in pages.
    pub len_pages: u64,
    /// Device the file lives on.
    pub device: DeviceId,
}

/// Registry of simulated files.
#[derive(Clone, Debug, Default)]
pub struct SimFs {
    files: BTreeMap<FileId, FileMeta>,
    next_id: u64,
}

impl SimFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a file and returns its id.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        kind: FileKind,
        len_pages: u64,
        device: DeviceId,
    ) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            FileMeta {
                name: name.into(),
                kind,
                len_pages,
                device,
            },
        );
        id
    }

    /// Looks up file metadata.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown (a wiring bug, not a runtime condition).
    pub fn meta(&self, id: FileId) -> &FileMeta {
        self.files.get(&id).expect("unknown FileId")
    }

    /// Looks up file metadata, returning `None` for unknown ids.
    pub fn try_meta(&self, id: FileId) -> Option<&FileMeta> {
        self.files.get(&id)
    }

    /// Changes a file's length (e.g. when a loading-set file is written).
    /// Unknown ids are ignored.
    pub fn set_len_pages(&mut self, id: FileId, len_pages: u64) {
        if let Some(meta) = self.files.get_mut(&id) {
            meta.len_pages = len_pages;
        }
    }

    /// Moves a file to a different device (e.g. local SSD vs. remote EBS).
    /// Unknown ids are ignored.
    pub fn set_device(&mut self, id: FileId, device: DeviceId) {
        if let Some(meta) = self.files.get_mut(&id) {
            meta.device = device;
        }
    }

    /// Removes a file. Returns its metadata if it existed.
    pub fn remove(&mut self, id: FileId) -> Option<FileMeta> {
        self.files.remove(&id)
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files are registered.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterates over all files.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &FileMeta)> {
        self.files.iter().map(|(id, m)| (*id, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let mut fs = SimFs::new();
        let dev = DeviceId(0);
        let a = fs.create("a.mem", FileKind::SnapshotMemory, 524_288, dev);
        let b = fs.create("a.ls", FileKind::LoadingSet, 100, dev);
        assert_ne!(a, b);
        assert_eq!(fs.meta(a).len_pages, 524_288);
        assert_eq!(fs.meta(b).kind, FileKind::LoadingSet);
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn resize_and_move() {
        let mut fs = SimFs::new();
        let f = fs.create("x", FileKind::WorkingSet, 10, DeviceId(0));
        fs.set_len_pages(f, 99);
        fs.set_device(f, DeviceId(1));
        assert_eq!(fs.meta(f).len_pages, 99);
        assert_eq!(fs.meta(f).device, DeviceId(1));
    }

    #[test]
    fn remove_file() {
        let mut fs = SimFs::new();
        let f = fs.create("x", FileKind::Other, 1, DeviceId(0));
        assert!(fs.remove(f).is_some());
        assert!(fs.try_meta(f).is_none());
        assert!(fs.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown FileId")]
    fn unknown_id_panics() {
        let fs = SimFs::new();
        fs.meta(FileId(42));
    }
}
