//! Linux-style readahead window model.
//!
//! When a file-backed fault misses the page cache, the host kernel reads a
//! window of pages around/after the faulting page, and grows the window
//! when it detects a sequential stream. Two paper observations depend on
//! this behavior:
//!
//! - §3.3: "the readahead mechanism in the host kernel fetches pages near
//!   the faulting page into the page cache to reduce future disk reads" —
//!   so vanilla Firecracker faults are a mix of slow majors and fast
//!   cache-hit minors;
//! - §4.4 (*host page recording*): "the pages touched by readahead can be
//!   accessed in future invocations ... readahead can 'predict' some future
//!   guest memory accesses", which is why FaaSnap records working sets with
//!   `mincore` (which sees readahead pages) rather than `userfaultfd`
//!   (which sees only faulting pages).
//!
//! The model keeps per-stream state: a miss adjacent to (or inside) the
//! previous window doubles the window size up to `max_pages`; an isolated
//! miss resets it to `initial_pages`. Windows start at the faulting page
//! and extend forward, clamped by the caller to the mapping/file extent.

/// Readahead tracking for one sequential-access detector (typically one
/// per mapped file per address space).
#[derive(Clone, Debug)]
pub struct ReadaheadState {
    initial_pages: u64,
    max_pages: u64,
    window_pages: u64,
    /// End (exclusive) of the last window issued.
    last_end: Option<u64>,
}

impl Default for ReadaheadState {
    fn default() -> Self {
        Self::new(8, 32)
    }
}

impl ReadaheadState {
    /// Creates a detector with the given initial and maximum window sizes
    /// (pages). Linux defaults to 128 KiB max readahead (32 pages).
    pub fn new(initial_pages: u64, max_pages: u64) -> Self {
        assert!(initial_pages >= 1 && max_pages >= initial_pages);
        ReadaheadState {
            initial_pages,
            max_pages,
            window_pages: initial_pages,
            last_end: None,
        }
    }

    /// Computes the read window for a cache miss at `page`.
    ///
    /// Returns `(start, len)` in file pages. The caller clamps to the
    /// mapping and drops already-cached pages.
    pub fn on_miss(&mut self, page: u64) -> (u64, u64) {
        let sequentialish = match self.last_end {
            // A miss just past (or within one window of) the previous
            // window counts as a sequential stream.
            Some(end) => page >= end.saturating_sub(self.window_pages) && page <= end + 1,
            None => false,
        };
        if sequentialish {
            self.window_pages = (self.window_pages * 2).min(self.max_pages);
        } else {
            self.window_pages = self.initial_pages;
        }
        let start = page;
        let len = self.window_pages;
        self.last_end = Some(start + len);
        (start, len)
    }

    /// Current window size in pages (for inspection/tests).
    pub fn window_pages(&self) -> u64 {
        self.window_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_miss_uses_initial_window() {
        let mut ra = ReadaheadState::new(8, 32);
        assert_eq!(ra.on_miss(100), (100, 8));
    }

    #[test]
    fn sequential_stream_grows_to_max() {
        let mut ra = ReadaheadState::new(8, 32);
        let (s1, l1) = ra.on_miss(0);
        assert_eq!((s1, l1), (0, 8));
        let (s2, l2) = ra.on_miss(8);
        assert_eq!((s2, l2), (8, 16));
        let (s3, l3) = ra.on_miss(24);
        assert_eq!((s3, l3), (24, 32));
        let (_s4, l4) = ra.on_miss(56);
        assert_eq!(l4, 32, "window capped at max");
    }

    #[test]
    fn random_miss_resets_window() {
        let mut ra = ReadaheadState::new(8, 32);
        ra.on_miss(0);
        ra.on_miss(8);
        assert_eq!(ra.window_pages(), 16);
        let (s, l) = ra.on_miss(10_000);
        assert_eq!((s, l), (10_000, 8));
        assert_eq!(ra.window_pages(), 8);
    }

    #[test]
    fn near_sequential_within_window_still_grows() {
        let mut ra = ReadaheadState::new(8, 32);
        ra.on_miss(0); // window [0,8)
                       // A miss at page 5 (inside the previous window region) keeps the
                       // stream alive — models interleaved readers.
        let (_, l) = ra.on_miss(5);
        assert_eq!(l, 16);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        ReadaheadState::new(16, 8);
    }
}
