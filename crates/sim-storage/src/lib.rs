//! Simulated storage stack: block devices, files, and readahead policy.
//!
//! The FaaSnap paper's results hinge on disk behavior: scattered 4 KiB
//! demand reads are slow, sequential reads of a compact loading-set file
//! are fast, IOPS and bandwidth saturate under bursts, and remote block
//! storage (EBS) adds latency. This crate models exactly those effects:
//!
//! - [`device::Disk`] — a queued block device with per-request setup
//!   latency (cheaper for sequential continuation), a shared-bandwidth data
//!   bus, and an IOPS admission gate. Profiles for the paper's NVMe SSD
//!   (1589 MB/s, 285 k IOPS) and EBS io2 volume (1 GB/s, 64 k IOPS) are in
//!   [`profiles`].
//! - [`file`] — a registry of simulated files (snapshot memory files,
//!   working-set files, loading-set files) placed on devices.
//! - [`readahead`] — a Linux-style per-stream readahead window model
//!   (initial window, doubling on sequential access, reset on random),
//!   which is what makes FaaSnap's *host page recording* observation work:
//!   readahead pulls in pages nearby the faulting page, and those pages are
//!   visible to `mincore`.

//! - [`faults`] — a seeded, deterministic fault-injection plan (read
//!   errors, short reads, latency spikes, detectable corruption) that
//!   attaches to a device; fault-aware callers submit through
//!   [`device::Disk::submit_checked`].
//!
#![forbid(unsafe_code)]
pub mod chunked;
pub mod device;
pub mod faults;
pub mod file;
pub mod profiles;
pub mod readahead;

pub use chunked::{merge_completions, ChunkExtent, ChunkedFile};
pub use device::{Disk, IoCompletion, IoKind, IoRequest, IoStats};
pub use faults::{
    FaultPlan, FaultProfile, FaultRecord, FaultRule, InjectedFault, InjectedFaultKind,
};
pub use file::{DeviceId, FileId, FileKind, SimFs};
pub use profiles::DiskProfile;
pub use readahead::ReadaheadState;
