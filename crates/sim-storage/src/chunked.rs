//! Chunk-store-backed files: logical reads resolved through an extent map.
//!
//! A [`ChunkedFile`] describes a *logical* file (a snapshot memory file, a
//! loading-set file) whose bytes physically live as fixed-size chunks
//! inside a content-addressed store file. Reads against the logical file
//! are translated — split at chunk boundaries and redirected to the
//! physical `(file, page)` extents — before they reach the device, so
//! device timing (sequential detection, IOPS, bandwidth) and per-chunk
//! fault injection all operate on the *physical* layout, exactly as they
//! would on a real dedup store.
//!
//! The crate stays agnostic about *how* the mapping is produced: the
//! store layer above (`faasnap-store`) owns chunk identity and dedup, and
//! callers hand this type a finished chunk-index → extent map. A chunk
//! index absent from the map is a hole: it resolves to zeros and costs no
//! I/O (the dedup analogue of a sparse-file hole).

use std::collections::BTreeMap;

use sim_core::time::SimTime;

use crate::device::{Disk, IoCompletion, IoRequest};
use crate::file::FileId;

/// Physical placement of one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkExtent {
    /// Store file holding the chunk.
    pub file: FileId,
    /// First physical page of the chunk within that file.
    pub page: u64,
}

/// A logical file resolved chunk-by-chunk into store extents.
#[derive(Clone, Debug)]
pub struct ChunkedFile {
    chunk_pages: u64,
    extents: BTreeMap<u64, ChunkExtent>,
}

impl ChunkedFile {
    /// An empty mapping with the given chunk size in pages.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_pages` is zero (a configuration bug).
    pub fn new(chunk_pages: u64) -> ChunkedFile {
        assert!(chunk_pages > 0, "chunk_pages must be nonzero");
        ChunkedFile {
            chunk_pages,
            extents: BTreeMap::new(),
        }
    }

    /// Pages per chunk.
    pub fn chunk_pages(&self) -> u64 {
        self.chunk_pages
    }

    /// Maps logical chunk `idx` to a physical extent. Remapping an index
    /// replaces the previous placement (layer update).
    pub fn map_chunk(&mut self, idx: u64, extent: ChunkExtent) {
        self.extents.insert(idx, extent);
    }

    /// Number of mapped (non-hole) chunks.
    pub fn mapped_chunks(&self) -> usize {
        self.extents.len()
    }

    /// True if no chunk is mapped (the whole file is zeros).
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// The extent of chunk `idx`, if mapped.
    pub fn extent(&self, idx: u64) -> Option<ChunkExtent> {
        self.extents.get(&idx).copied()
    }

    /// All mapped `(chunk index, extent)` pairs in chunk order.
    pub fn extents(&self) -> impl Iterator<Item = (u64, ChunkExtent)> + '_ {
        self.extents.iter().map(|(&idx, &ext)| (idx, ext))
    }

    /// Translates one logical request into physical per-chunk requests:
    /// split at chunk boundaries, offsets preserved within each chunk,
    /// holes (unmapped chunks) dropped. The accounting tag carries over so
    /// device statistics still attribute translated traffic to its logical
    /// cause.
    pub fn plan(&self, req: &IoRequest) -> Vec<IoRequest> {
        let mut out = Vec::new();
        let end = req.page + req.pages;
        let mut page = req.page;
        while page < end {
            let idx = page / self.chunk_pages;
            let chunk_end = (idx + 1) * self.chunk_pages;
            let span = end.min(chunk_end) - page;
            if let Some(ext) = self.extents.get(&idx) {
                out.push(IoRequest {
                    file: ext.file,
                    page: ext.page + (page - idx * self.chunk_pages),
                    pages: span,
                    kind: req.kind,
                });
            }
            page += span;
        }
        out
    }

    /// Submits a logical request through the mapping against one disk,
    /// merging the per-chunk completions (latest completion wins, first
    /// injected fault wins). A request resolving entirely to holes
    /// completes instantly and fault-free. Callers whose extents span
    /// devices should iterate [`ChunkedFile::plan`] themselves.
    pub fn submit_checked(&self, disk: &mut Disk, now: SimTime, req: &IoRequest) -> IoCompletion {
        merge_completions(
            now,
            self.plan(req)
                .into_iter()
                .map(|phys| disk.submit_checked(now, phys)),
        )
    }
}

/// Folds per-chunk completions into one logical completion: the logical
/// request is done when its last chunk is done, and injured if any chunk
/// was injured (the first fault in submission order is reported).
pub fn merge_completions(
    now: SimTime,
    parts: impl IntoIterator<Item = IoCompletion>,
) -> IoCompletion {
    let mut done = now;
    let mut fault = None;
    for c in parts {
        done = done.max(c.done);
        if fault.is_none() {
            fault = c.fault;
        }
    }
    IoCompletion { done, fault }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::IoKind;
    use crate::faults::{FaultPlan, FaultRule, InjectedFaultKind};
    use crate::profiles::DiskProfile;

    fn req(page: u64, pages: u64) -> IoRequest {
        IoRequest {
            file: FileId(99),
            page,
            pages,
            kind: IoKind::LoaderPrefetch,
        }
    }

    fn mapping() -> ChunkedFile {
        // 8-page chunks; chunks 0 and 2 mapped into store file 5 (at
        // non-contiguous physical offsets, as dedup placement produces),
        // chunk 1 is a hole.
        let mut cf = ChunkedFile::new(8);
        cf.map_chunk(
            0,
            ChunkExtent {
                file: FileId(5),
                page: 64,
            },
        );
        cf.map_chunk(
            2,
            ChunkExtent {
                file: FileId(5),
                page: 8,
            },
        );
        cf
    }

    #[test]
    fn plan_splits_translates_and_skips_holes() {
        let cf = mapping();
        // Logical pages 4..20 touch chunk 0 (pages 4..8), the hole
        // (8..16), and chunk 2 (16..20).
        let plan = cf.plan(&req(4, 16));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            (plan[0].file, plan[0].page, plan[0].pages),
            (FileId(5), 68, 4)
        );
        assert_eq!(
            (plan[1].file, plan[1].page, plan[1].pages),
            (FileId(5), 8, 4)
        );
        assert!(plan.iter().all(|r| r.kind == IoKind::LoaderPrefetch));
    }

    #[test]
    fn plan_within_one_chunk_is_exact() {
        let cf = mapping();
        let plan = cf.plan(&req(17, 3));
        assert_eq!(plan.len(), 1);
        assert_eq!((plan[0].page, plan[0].pages), (9, 3));
    }

    #[test]
    fn all_hole_request_completes_instantly() {
        let cf = mapping();
        let mut disk = Disk::new(DiskProfile::nvme_c5d(), 1);
        let now = SimTime::from_nanos(10_000);
        let c = cf.submit_checked(&mut disk, now, &req(8, 8));
        assert_eq!(c.done, now);
        assert!(c.fault.is_none());
        assert_eq!(disk.stats().requests, 0, "holes cost no I/O");
    }

    #[test]
    fn per_chunk_fault_injection_targets_physical_extent() {
        // A fault rule keyed on the *physical* window of chunk 2 must fire
        // for logical reads of chunk 2 and spare chunk 0.
        let mut disk = Disk::new(DiskProfile::nvme_c5d(), 1);
        let mut plan = FaultPlan::new(7);
        plan.push_rule(FaultRule {
            file: Some(FileId(5)),
            kind: None,
            pages: Some((8, 16)),
            fault: InjectedFaultKind::ReadError,
            times: u64::MAX,
        });
        disk.set_fault_plan(plan);
        let cf = mapping();
        let clean = cf.submit_checked(&mut disk, SimTime::ZERO, &req(0, 8));
        assert!(
            clean.fault.is_none(),
            "chunk 0's extent is outside the window"
        );
        let injured = cf.submit_checked(&mut disk, SimTime::ZERO, &req(16, 8));
        assert_eq!(
            injured.fault.map(|f| f.kind),
            Some(InjectedFaultKind::ReadError)
        );
    }

    #[test]
    fn merged_completion_is_latest_chunk() {
        let cf = mapping();
        let mut disk = Disk::new(DiskProfile::nvme_c5d(), 1);
        let c = cf.submit_checked(&mut disk, SimTime::ZERO, &req(0, 24));
        // Two physical requests were admitted; the merged completion must
        // be at least as late as either individually would be.
        assert_eq!(disk.stats().requests, 2);
        assert!(c.done > SimTime::ZERO);
    }
}
