//! Deterministic storage fault injection.
//!
//! A [`FaultPlan`] attaches to a [`crate::Disk`] and decides, per read
//! request, whether to inject a failure: a hard read error, a short read
//! (only a prefix of the requested pages arrives), a latency spike, or
//! detectable corruption (the device reports success but the consumer's
//! integrity check must treat the data as unusable). Decisions come from
//! two sources, in order:
//!
//! 1. **Rules** — targeted, finite schedules ("fail the first two loader
//!    prefetches of file 3 at pages 0..128"). Each rule carries a `times`
//!    budget and is consulted in order; the first live match fires.
//! 2. **Profile** — seeded background probabilities per fault kind, capped
//!    by `max_injections` so a probabilistic plan can never starve a
//!    bounded-retry consumer forever.
//!
//! The plan owns its own [`Prng`] stream, separate from the device's
//! latency-jitter stream: attaching a plan must not perturb the timing of
//! requests it chooses not to touch, and a no-plan device draws nothing.
//! Every injection is appended to a log; [`FaultPlan::schedule`] renders
//! it as a stable text artifact so tests can assert that the same seed
//! produces the same fault schedule byte-for-byte.

use sim_core::rng::Prng;
use sim_core::time::{SimDuration, SimTime};

use crate::device::{IoKind, IoRequest};
use crate::file::FileId;

/// The ways an injected read can go wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFaultKind {
    /// The read fails outright; no data arrives.
    ReadError,
    /// Only the first `served_pages` of the request arrive.
    ShortRead,
    /// The read succeeds but completes late by `extra_latency`.
    LatencySpike,
    /// The read "succeeds" but the payload fails its integrity check;
    /// consumers must discard it exactly as if the read had failed.
    Corruption,
}

impl InjectedFaultKind {
    /// Stable lowercase label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            InjectedFaultKind::ReadError => "read_error",
            InjectedFaultKind::ShortRead => "short_read",
            InjectedFaultKind::LatencySpike => "latency_spike",
            InjectedFaultKind::Corruption => "corruption",
        }
    }

    /// True if no request data is usable (the consumer must retry).
    pub fn is_data_loss(self) -> bool {
        matches!(
            self,
            InjectedFaultKind::ReadError | InjectedFaultKind::Corruption
        )
    }
}

/// The outcome of a fault decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// What kind of failure was injected.
    pub kind: InjectedFaultKind,
    /// Pages actually delivered (`< req.pages` for short reads, `0` for
    /// read errors and corruption, `req.pages` for latency spikes).
    pub served_pages: u64,
    /// Extra completion delay (nonzero only for latency spikes).
    pub extra_latency: SimDuration,
}

/// A targeted, finite injection rule.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Restrict to one file, or `None` for any file.
    pub file: Option<FileId>,
    /// Restrict to one accounting tag, or `None` for any read kind.
    pub kind: Option<IoKind>,
    /// Restrict to requests overlapping `[start, end)` file pages.
    pub pages: Option<(u64, u64)>,
    /// What to inject when the rule fires.
    pub fault: InjectedFaultKind,
    /// Remaining firings; the rule is dead at zero.
    pub times: u64,
}

impl FaultRule {
    /// A rule matching every read, `times` times.
    pub fn any(fault: InjectedFaultKind, times: u64) -> Self {
        FaultRule {
            file: None,
            kind: None,
            pages: None,
            fault,
            times,
        }
    }

    /// A rule matching reads of one file, `times` times.
    pub fn on_file(file: FileId, fault: InjectedFaultKind, times: u64) -> Self {
        FaultRule {
            file: Some(file),
            kind: None,
            pages: None,
            fault,
            times,
        }
    }

    /// A rule matching one accounting tag, `times` times.
    pub fn on_kind(kind: IoKind, fault: InjectedFaultKind, times: u64) -> Self {
        FaultRule {
            file: None,
            kind: Some(kind),
            pages: None,
            fault,
            times,
        }
    }

    fn matches(&self, req: &IoRequest) -> bool {
        if self.times == 0 {
            return false;
        }
        if let Some(f) = self.file {
            if f != req.file {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if k != req.kind {
                return false;
            }
        }
        if let Some((start, end)) = self.pages {
            if req.page >= end || req.page + req.pages <= start {
                return false;
            }
        }
        true
    }
}

/// Background (probabilistic) injection rates.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Per-read probability of a hard read error.
    pub read_error_prob: f64,
    /// Per-read probability of a short read (multi-page reads only).
    pub short_read_prob: f64,
    /// Per-read probability of a latency spike.
    pub latency_spike_prob: f64,
    /// Per-read probability of detectable corruption.
    pub corruption_prob: f64,
    /// Added latency when a spike fires.
    pub spike: SimDuration,
    /// Hard cap on total probabilistic injections; targeted rules are
    /// bounded by their own `times` budgets and do not count against this.
    pub max_injections: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            read_error_prob: 0.0,
            short_read_prob: 0.0,
            latency_spike_prob: 0.0,
            corruption_prob: 0.0,
            spike: SimDuration::from_micros(500),
            max_injections: u64::MAX,
        }
    }
}

impl FaultProfile {
    fn is_quiet(&self) -> bool {
        self.read_error_prob <= 0.0
            && self.short_read_prob <= 0.0
            && self.latency_spike_prob <= 0.0
            && self.corruption_prob <= 0.0
    }
}

/// One injected fault, as recorded in the plan's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// Submission instant of the afflicted request.
    pub at: SimTime,
    /// Target file.
    pub file: FileId,
    /// First file page of the request.
    pub page: u64,
    /// Requested page count.
    pub pages: u64,
    /// Accounting tag of the request.
    pub io_kind: IoKind,
    /// What was injected.
    pub fault: InjectedFaultKind,
    /// Pages actually delivered.
    pub served_pages: u64,
}

/// A seeded, deterministic fault schedule for one device.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    profile: FaultProfile,
    rules: Vec<FaultRule>,
    rng: Prng,
    injected_by_profile: u64,
    log: Vec<FaultRecord>,
}

impl FaultPlan {
    /// An empty plan (no rules, quiet profile) with its own rng stream.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            profile: FaultProfile::default(),
            rules: Vec::new(),
            rng: Prng::new(seed ^ 0xFA17_1A17_0000_5EED),
            injected_by_profile: 0,
            log: Vec::new(),
        }
    }

    /// A plan with background probabilities from `profile`.
    pub fn with_profile(seed: u64, profile: FaultProfile) -> Self {
        let mut plan = FaultPlan::new(seed);
        plan.profile = profile;
        plan
    }

    /// Appends a targeted rule; rules fire in insertion order.
    pub fn push_rule(&mut self, rule: FaultRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Total injections so far (rules and profile).
    pub fn injected(&self) -> u64 {
        self.log.len() as u64
    }

    /// The full injection log.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// True if every rule is exhausted and the profile is quiet — no
    /// further injections can occur.
    pub fn is_exhausted(&self) -> bool {
        self.rules.iter().all(|r| r.times == 0)
            && (self.profile.is_quiet() || self.injected_by_profile >= self.profile.max_injections)
    }

    /// Renders the injection log as a stable line-per-fault artifact so
    /// differential tests can byte-compare schedules across runs.
    pub fn schedule(&self) -> String {
        let mut out = String::new();
        for r in &self.log {
            out.push_str(&format!(
                "{} file={} page={} pages={} io={:?} fault={} served={}\n",
                r.at.as_nanos(),
                r.file.0,
                r.page,
                r.pages,
                r.io_kind,
                r.fault.label(),
                r.served_pages,
            ));
        }
        out
    }

    /// Decides whether to injure the request submitted at `now`.
    ///
    /// Writes are never injured (snapshot write-out errors are a different
    /// failure domain, out of scope here). The decision and the rng draws
    /// behind it live entirely on the plan's private stream.
    pub fn decide(&mut self, now: SimTime, req: &IoRequest) -> Option<InjectedFault> {
        if req.kind == IoKind::SnapshotWrite {
            return None;
        }
        let fault = self
            .decide_kind(req)
            .map(|kind| self.materialize(kind, req));
        if let Some(f) = fault {
            self.log.push(FaultRecord {
                at: now,
                file: req.file,
                page: req.page,
                pages: req.pages,
                io_kind: req.kind,
                fault: f.kind,
                served_pages: f.served_pages,
            });
        }
        fault
    }

    fn decide_kind(&mut self, req: &IoRequest) -> Option<InjectedFaultKind> {
        for rule in &mut self.rules {
            if rule.matches(req) {
                rule.times -= 1;
                return Some(rule.fault);
            }
        }
        if self.profile.is_quiet() || self.injected_by_profile >= self.profile.max_injections {
            return None;
        }
        // One draw per fault class, in a fixed order, so the schedule is a
        // pure function of (seed, request sequence).
        let kind = if self.rng.chance(self.profile.read_error_prob) {
            Some(InjectedFaultKind::ReadError)
        } else if self.rng.chance(self.profile.corruption_prob) {
            Some(InjectedFaultKind::Corruption)
        } else if req.pages > 1 && self.rng.chance(self.profile.short_read_prob) {
            Some(InjectedFaultKind::ShortRead)
        } else if self.rng.chance(self.profile.latency_spike_prob) {
            Some(InjectedFaultKind::LatencySpike)
        } else {
            None
        };
        if kind.is_some() {
            self.injected_by_profile += 1;
        }
        kind
    }

    fn materialize(&mut self, kind: InjectedFaultKind, req: &IoRequest) -> InjectedFault {
        match kind {
            InjectedFaultKind::ReadError | InjectedFaultKind::Corruption => InjectedFault {
                kind,
                served_pages: 0,
                extra_latency: SimDuration::ZERO,
            },
            InjectedFaultKind::ShortRead => {
                // Serve a non-empty strict prefix; single-page requests
                // cannot be short, so degrade them to a hard error.
                if req.pages <= 1 {
                    InjectedFault {
                        kind: InjectedFaultKind::ReadError,
                        served_pages: 0,
                        extra_latency: SimDuration::ZERO,
                    }
                } else {
                    InjectedFault {
                        kind,
                        served_pages: self.rng.range(1, req.pages - 1),
                        extra_latency: SimDuration::ZERO,
                    }
                }
            }
            InjectedFaultKind::LatencySpike => InjectedFault {
                kind,
                served_pages: req.pages,
                extra_latency: self.profile.spike,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(file: u64, page: u64, pages: u64, kind: IoKind) -> IoRequest {
        IoRequest {
            file: FileId(file),
            page,
            pages,
            kind,
        }
    }

    #[test]
    fn empty_plan_never_fires() {
        let mut plan = FaultPlan::new(1);
        for i in 0..1000 {
            assert!(plan
                .decide(SimTime::ZERO, &read(0, i, 4, IoKind::FaultRead))
                .is_none());
        }
        assert_eq!(plan.injected(), 0);
        assert!(plan.is_exhausted());
    }

    #[test]
    fn rule_fires_times_then_dies() {
        let mut plan = FaultPlan::new(1);
        plan.push_rule(FaultRule::on_kind(
            IoKind::LoaderPrefetch,
            InjectedFaultKind::ReadError,
            2,
        ));
        let r = read(3, 0, 8, IoKind::LoaderPrefetch);
        assert!(plan.decide(SimTime::ZERO, &r).is_some());
        assert!(plan.decide(SimTime::ZERO, &r).is_some());
        assert!(plan.decide(SimTime::ZERO, &r).is_none());
        // Unmatched kind never fires.
        assert!(plan
            .decide(SimTime::ZERO, &read(3, 0, 8, IoKind::FaultRead))
            .is_none());
        assert!(plan.is_exhausted());
        assert_eq!(plan.injected(), 2);
    }

    #[test]
    fn rule_filters_by_file_and_pages() {
        let mut plan = FaultPlan::new(1);
        plan.push_rule(FaultRule {
            file: Some(FileId(7)),
            kind: None,
            pages: Some((100, 200)),
            fault: InjectedFaultKind::ReadError,
            times: u64::MAX,
        });
        assert!(plan
            .decide(SimTime::ZERO, &read(7, 150, 4, IoKind::FaultRead))
            .is_some());
        // Overlap at the boundary counts.
        assert!(plan
            .decide(SimTime::ZERO, &read(7, 96, 8, IoKind::FaultRead))
            .is_some());
        // Outside the window or on another file does not.
        assert!(plan
            .decide(SimTime::ZERO, &read(7, 200, 4, IoKind::FaultRead))
            .is_none());
        assert!(plan
            .decide(SimTime::ZERO, &read(8, 150, 4, IoKind::FaultRead))
            .is_none());
    }

    #[test]
    fn writes_are_never_injured() {
        let mut plan = FaultPlan::new(1);
        plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, u64::MAX));
        assert!(plan
            .decide(SimTime::ZERO, &read(0, 0, 64, IoKind::SnapshotWrite))
            .is_none());
    }

    #[test]
    fn short_read_serves_nonempty_strict_prefix() {
        let mut plan = FaultPlan::new(42);
        plan.push_rule(FaultRule::any(InjectedFaultKind::ShortRead, u64::MAX));
        for i in 0..200 {
            let f = plan
                .decide(SimTime::ZERO, &read(0, i * 16, 16, IoKind::LoaderPrefetch))
                .unwrap();
            assert_eq!(f.kind, InjectedFaultKind::ShortRead);
            assert!(f.served_pages >= 1 && f.served_pages < 16);
        }
        // A single-page request degrades to a hard error.
        let f = plan
            .decide(SimTime::ZERO, &read(0, 0, 1, IoKind::FaultRead))
            .unwrap();
        assert_eq!(f.kind, InjectedFaultKind::ReadError);
    }

    #[test]
    fn profile_respects_max_injections() {
        let mut plan = FaultPlan::with_profile(
            9,
            FaultProfile {
                read_error_prob: 1.0,
                max_injections: 3,
                ..FaultProfile::default()
            },
        );
        let hits = (0..100)
            .filter(|&i| {
                plan.decide(SimTime::ZERO, &read(0, i, 2, IoKind::FaultRead))
                    .is_some()
            })
            .count();
        assert_eq!(hits, 3);
        assert!(plan.is_exhausted());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let mut plan = FaultPlan::with_profile(
                seed,
                FaultProfile {
                    read_error_prob: 0.1,
                    short_read_prob: 0.1,
                    latency_spike_prob: 0.1,
                    ..FaultProfile::default()
                },
            );
            for i in 0..500 {
                plan.decide(
                    SimTime::from_nanos(i * 10),
                    &read(i % 3, i * 4, 8, IoKind::FaultRead),
                );
            }
            plan.schedule()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
        assert!(!run(5).is_empty());
    }

    #[test]
    fn latency_spike_carries_profile_spike() {
        let mut plan = FaultPlan::with_profile(
            1,
            FaultProfile {
                latency_spike_prob: 1.0,
                spike: SimDuration::from_millis(2),
                ..FaultProfile::default()
            },
        );
        let f = plan
            .decide(SimTime::ZERO, &read(0, 0, 4, IoKind::FaultRead))
            .unwrap();
        assert_eq!(f.kind, InjectedFaultKind::LatencySpike);
        assert_eq!(f.extra_latency, SimDuration::from_millis(2));
        assert_eq!(f.served_pages, 4);
    }
}
