//! Queued block device model.
//!
//! The device is a passive state machine: callers submit a read request at
//! the current simulated instant and receive the completion time; the DES
//! world schedules the completion event. Three resources shape timing:
//!
//! 1. **Setup latency** — each request pays a fixed setup cost; requests
//!    that continue the previous request on the same file pay the (much
//!    smaller) sequential setup. This is what makes FaaSnap's compact,
//!    sequentially laid-out loading-set file fast and scattered 4 KiB
//!    demand reads slow (§4.7: "Scattered reads ... usually lead to lower
//!    disk performance").
//! 2. **Shared data bus** — transfers serialize on device bandwidth; setup
//!    of one request overlaps with transfers of others (queued device).
//! 3. **IOPS gate** — admissions are spaced at least `1 / max_iops` apart.
//!
//! Per-request statistics are tagged with an [`IoKind`] so experiments can
//! report loader traffic vs. guest-fault traffic separately (Figure 9's
//! "# of block requests", Table 3's fetch sizes).

use sim_core::rng::Prng;
use sim_core::time::SimTime;
use sim_core::units::PAGE_SIZE;

use crate::faults::{FaultPlan, InjectedFault, InjectedFaultKind};
use crate::file::FileId;
use crate::profiles::DiskProfile;

/// Why a read was issued; used only for accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Host kernel demand read triggered by a guest page fault (plus its
    /// readahead window).
    FaultRead,
    /// FaaSnap daemon loader prefetch (concurrent paging).
    LoaderPrefetch,
    /// REAP working-set fetch at invocation start.
    ReapFetch,
    /// REAP user-level handler read for an out-of-working-set fault.
    ReapMiss,
    /// Snapshot creation write-out.
    SnapshotWrite,
    /// Page-cache warm-up for the `Cached` reference setting.
    CacheWarmup,
    /// Anything else.
    Other,
}

/// A read (or write) request against a file region.
#[derive(Clone, Copy, Debug)]
pub struct IoRequest {
    /// Target file.
    pub file: FileId,
    /// First page within the file.
    pub page: u64,
    /// Number of pages.
    pub pages: u64,
    /// Accounting tag.
    pub kind: IoKind,
}

impl IoRequest {
    /// Total bytes moved by this request.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }
}

/// Aggregate device statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Total requests admitted.
    pub requests: u64,
    /// Total pages transferred.
    pub pages: u64,
    /// Requests that hit the sequential fast path.
    pub sequential_requests: u64,
    /// Requests by kind: (fault, loader, reap_fetch, reap_miss, write, warmup, other).
    pub by_kind: [u64; 7],
    /// Pages by kind, same order as `by_kind`.
    pub pages_by_kind: [u64; 7],
}

impl IoStats {
    fn kind_index(kind: IoKind) -> usize {
        match kind {
            IoKind::FaultRead => 0,
            IoKind::LoaderPrefetch => 1,
            IoKind::ReapFetch => 2,
            IoKind::ReapMiss => 3,
            IoKind::SnapshotWrite => 4,
            IoKind::CacheWarmup => 5,
            IoKind::Other => 6,
        }
    }

    /// Requests issued with the given tag.
    pub fn requests_of(&self, kind: IoKind) -> u64 {
        self.by_kind[Self::kind_index(kind)]
    }

    /// Pages transferred with the given tag.
    pub fn pages_of(&self, kind: IoKind) -> u64 {
        self.pages_by_kind[Self::kind_index(kind)]
    }

    /// Bytes transferred with the given tag.
    pub fn bytes_of(&self, kind: IoKind) -> u64 {
        self.pages_of(kind) * PAGE_SIZE
    }
}

/// A completed submission, as seen by fault-aware callers.
#[derive(Clone, Copy, Debug)]
pub struct IoCompletion {
    /// When the device reports completion (including any injected spike).
    pub done: SimTime,
    /// The injected fault, if the attached [`FaultPlan`] fired.
    pub fault: Option<InjectedFault>,
}

/// A queued block device.
#[derive(Clone, Debug)]
pub struct Disk {
    profile: DiskProfile,
    rng: Prng,
    /// When the shared data bus next frees.
    bus_free: SimTime,
    /// IOPS admission gate: earliest next admission.
    iops_gate: SimTime,
    /// Last request's (file, end page), for sequential detection.
    last_extent: Option<(FileId, u64)>,
    stats: IoStats,
    /// Optional injection schedule; absent on healthy devices. The plan
    /// owns its own rng stream, so attaching one never perturbs the
    /// latency jitter of requests it leaves alone.
    fault_plan: Option<FaultPlan>,
}

impl Disk {
    /// Creates a device with the given profile. The seed controls latency
    /// jitter only.
    pub fn new(profile: DiskProfile, seed: u64) -> Self {
        Disk {
            profile,
            rng: Prng::new(seed),
            bus_free: SimTime::ZERO,
            iops_gate: SimTime::ZERO,
            last_extent: None,
            stats: IoStats::default(),
            fault_plan: None,
        }
    }

    /// The device's performance profile.
    pub fn profile(&self) -> &DiskProfile {
        &self.profile
    }

    /// Attaches a fault-injection plan; replaces any existing one.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Detaches the fault plan, returning it (with its injection log).
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Submits a request at instant `now`; returns its completion time.
    ///
    /// The model: the request is admitted at
    /// `start = max(now, iops_gate)`; it pays setup latency (sequential or
    /// random, jittered), then its transfer serializes on the shared bus.
    ///
    /// This entry point ignores any attached [`FaultPlan`]: callers that
    /// cannot act on a fault (snapshot write-out, cache warm-up) keep the
    /// infallible path, and fault-aware callers use [`Disk::submit_checked`].
    pub fn submit(&mut self, now: SimTime, req: IoRequest) -> SimTime {
        assert!(req.pages > 0, "zero-length I/O request");
        let sequential = self.last_extent == Some((req.file, req.page));
        self.last_extent = Some((req.file, req.page + req.pages));

        let base_setup = if sequential {
            self.profile.sequential_setup
        } else {
            self.profile.random_setup
        };
        let setup = if self.profile.latency_jitter > 0.0 {
            base_setup.mul_f64(self.rng.jitter(self.profile.latency_jitter))
        } else {
            base_setup
        };

        let admitted = now.max(self.iops_gate);
        self.iops_gate = admitted + self.profile.iops_gap();

        // Setup overlaps with other requests' transfers; the transfer
        // (plus per-command processing) serializes on the bus.
        let bus_overhead = if sequential {
            self.profile.sequential_bus_overhead
        } else {
            self.profile.random_bus_overhead
        };
        let busy = bus_overhead + self.profile.transfer_time(req.bytes());
        let transfer_start = (admitted + setup).max(self.bus_free);
        let completion = transfer_start + busy;
        self.bus_free = completion;

        self.stats.requests += 1;
        self.stats.pages += req.pages;
        if sequential {
            self.stats.sequential_requests += 1;
        }
        let k = IoStats::kind_index(req.kind);
        self.stats.by_kind[k] += 1;
        self.stats.pages_by_kind[k] += req.pages;

        completion
    }

    /// Submits a request, consulting the attached [`FaultPlan`].
    ///
    /// With no plan attached this is exactly [`Disk::submit`] — same
    /// timings, same rng draws, same stats. With a plan, an injected
    /// short read transfers (and accounts) only the served prefix, a
    /// latency spike holds the bus through the extra delay, and read
    /// errors/corruption take the device time of the full transfer (the
    /// data moved; it just cannot be used).
    pub fn submit_checked(&mut self, now: SimTime, req: IoRequest) -> IoCompletion {
        assert!(req.pages > 0, "zero-length I/O request");
        let fault = match self.fault_plan.as_mut() {
            Some(plan) => plan.decide(now, &req),
            None => None,
        };
        let effective = match fault {
            Some(f) if f.kind == InjectedFaultKind::ShortRead => IoRequest {
                pages: f.served_pages,
                ..req
            },
            _ => req,
        };
        let mut done = self.submit(now, effective);
        if let Some(f) = fault {
            if !f.extra_latency.is_zero() {
                done += f.extra_latency;
                self.bus_free = self.bus_free.max(done);
            }
        }
        IoCompletion { done, fault }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Resets statistics (e.g. between the record and test phases) without
    /// touching queue state.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Resets queue state (bus, IOPS gate, sequential detector) to idle.
    ///
    /// Each simulation run starts its clock at zero, so the runtime must
    /// reset device queues between runs — otherwise a new run's requests
    /// would queue behind the previous run's (stale, absolute-time)
    /// backlog.
    pub fn reset_queue(&mut self) {
        self.bus_free = SimTime::ZERO;
        self.iops_gate = SimTime::ZERO;
        self.last_extent = None;
    }

    /// Earliest instant at which a request submitted now could complete;
    /// useful for tests and back-pressure heuristics.
    pub fn queue_free_at(&self) -> SimTime {
        self.bus_free.max(self.iops_gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;
    use sim_core::units::MIB;

    fn req(file: u64, page: u64, pages: u64) -> IoRequest {
        IoRequest {
            file: FileId(file),
            page,
            pages,
            kind: IoKind::FaultRead,
        }
    }

    fn quiet_nvme() -> Disk {
        let mut p = DiskProfile::nvme_c5d();
        p.latency_jitter = 0.0;
        Disk::new(p, 1)
    }

    #[test]
    fn single_random_read_latency() {
        let mut d = quiet_nvme();
        let done = d.submit(SimTime::ZERO, req(0, 100, 1));
        let us = done.as_micros_f64();
        // setup 68us + 12us command overhead + ~2.6us transfer.
        assert!((65.0..95.0).contains(&us), "latency {us}us");
    }

    #[test]
    fn sequential_follow_up_is_cheap() {
        let mut d = quiet_nvme();
        let t1 = d.submit(SimTime::ZERO, req(0, 0, 8));
        let t2 = d.submit(t1, req(0, 8, 8));
        let gap = (t2 - t1).as_micros_f64();
        // Sequential setup (6us) + 32KiB transfer (~20us).
        assert!(gap < 40.0, "sequential continuation took {gap}us");
        assert_eq!(d.stats().sequential_requests, 1);
    }

    #[test]
    fn non_contiguous_is_random() {
        let mut d = quiet_nvme();
        let t1 = d.submit(SimTime::ZERO, req(0, 0, 8));
        let t2 = d.submit(t1, req(0, 100, 8));
        assert!((t2 - t1).as_micros_f64() > 60.0);
        assert_eq!(d.stats().sequential_requests, 0);
    }

    #[test]
    fn different_file_breaks_sequence() {
        let mut d = quiet_nvme();
        d.submit(SimTime::ZERO, req(0, 0, 8));
        d.submit(SimTime::from_nanos(1_000_000), req(1, 8, 8));
        assert_eq!(d.stats().sequential_requests, 0);
    }

    #[test]
    fn bandwidth_serializes_transfers() {
        let mut d = quiet_nvme();
        // Two 64 MiB reads submitted back-to-back at t=0: the second's
        // transfer must wait for the first.
        let one = d.submit(SimTime::ZERO, req(0, 0, 16384));
        let two = d.submit(SimTime::ZERO, req(1, 0, 16384));
        let t_one = one.as_millis_f64();
        let t_two = two.as_millis_f64();
        let expect_one = 64.0 * MIB as f64 / 1589e6 * 1e3;
        assert!(
            (t_one - expect_one).abs() < 5.0,
            "first {t_one}ms vs {expect_one}ms"
        );
        assert!(t_two > 1.9 * t_one, "second must queue: {t_two} vs {t_one}");
    }

    #[test]
    fn iops_gate_spaces_admissions() {
        let mut p = DiskProfile::nvme_c5d();
        p.latency_jitter = 0.0;
        let mut d = Disk::new(p.clone(), 1);
        // 1000 tiny reads at t=0; admissions spaced by ~3.5us mean the last
        // completes no earlier than ~3.5ms.
        let mut last = SimTime::ZERO;
        for i in 0..1000 {
            last = d.submit(SimTime::ZERO, req(0, i * 2, 1));
        }
        assert!(last.as_millis_f64() >= 1000.0 / 285_000.0 * 1000.0 * 0.9);
    }

    #[test]
    fn stats_by_kind() {
        let mut d = quiet_nvme();
        d.submit(
            SimTime::ZERO,
            IoRequest {
                file: FileId(0),
                page: 0,
                pages: 4,
                kind: IoKind::LoaderPrefetch,
            },
        );
        d.submit(
            SimTime::ZERO,
            IoRequest {
                file: FileId(0),
                page: 9,
                pages: 2,
                kind: IoKind::FaultRead,
            },
        );
        assert_eq!(d.stats().requests_of(IoKind::LoaderPrefetch), 1);
        assert_eq!(d.stats().pages_of(IoKind::LoaderPrefetch), 4);
        assert_eq!(d.stats().bytes_of(IoKind::FaultRead), 2 * PAGE_SIZE);
        assert_eq!(d.stats().requests, 2);
        d.reset_stats();
        assert_eq!(d.stats().requests, 0);
    }

    #[test]
    fn instant_profile_completes_immediately() {
        let mut d = Disk::new(DiskProfile::instant(), 1);
        let done = d.submit(SimTime::from_nanos(5), req(0, 0, 1024));
        assert_eq!(done, SimTime::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_request_panics() {
        let mut d = quiet_nvme();
        d.submit(SimTime::ZERO, req(0, 0, 0));
    }

    #[test]
    fn submit_checked_without_plan_matches_submit() {
        let mut a = Disk::new(DiskProfile::nvme_c5d(), 7);
        let mut b = Disk::new(DiskProfile::nvme_c5d(), 7);
        for i in 0..200 {
            let r = req(0, i * 7, 3);
            let plain = a.submit(SimTime::ZERO, r);
            let checked = b.submit_checked(SimTime::ZERO, r);
            assert_eq!(plain, checked.done);
            assert!(checked.fault.is_none());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn injected_read_error_is_reported() {
        use crate::faults::{FaultPlan, FaultRule, InjectedFaultKind};
        let mut d = quiet_nvme();
        let mut plan = FaultPlan::new(1);
        plan.push_rule(FaultRule::any(InjectedFaultKind::ReadError, 1));
        d.set_fault_plan(plan);
        let first = d.submit_checked(SimTime::ZERO, req(0, 0, 8));
        assert_eq!(first.fault.unwrap().kind, InjectedFaultKind::ReadError);
        let second = d.submit_checked(first.done, req(0, 0, 8));
        assert!(second.fault.is_none(), "rule budget exhausted");
        let log = d.clear_fault_plan().unwrap();
        assert_eq!(log.injected(), 1);
    }

    #[test]
    fn short_read_transfers_only_the_prefix() {
        use crate::faults::{FaultPlan, FaultRule, InjectedFaultKind};
        let mut full = quiet_nvme();
        let full_done = full.submit(SimTime::ZERO, req(0, 0, 4096));
        let mut d = quiet_nvme();
        let mut plan = FaultPlan::new(3);
        plan.push_rule(FaultRule::any(InjectedFaultKind::ShortRead, 1));
        d.set_fault_plan(plan);
        let c = d.submit_checked(SimTime::ZERO, req(0, 0, 4096));
        let served = c.fault.unwrap().served_pages;
        assert!((1..4096).contains(&served));
        assert!(c.done < full_done, "short read must finish earlier");
        assert_eq!(d.stats().pages, served);
    }

    #[test]
    fn latency_spike_delays_completion_and_holds_bus() {
        use crate::faults::{FaultPlan, FaultProfile, InjectedFaultKind};
        let mut base = quiet_nvme();
        let clean = base.submit(SimTime::ZERO, req(0, 0, 8));
        let spike = SimDuration::from_millis(5);
        let mut d = quiet_nvme();
        d.set_fault_plan(FaultPlan::with_profile(
            1,
            FaultProfile {
                latency_spike_prob: 1.0,
                spike,
                max_injections: 1,
                ..FaultProfile::default()
            },
        ));
        let c = d.submit_checked(SimTime::ZERO, req(0, 0, 8));
        assert_eq!(c.fault.unwrap().kind, InjectedFaultKind::LatencySpike);
        assert_eq!(c.done, clean + spike);
        assert!(d.queue_free_at() >= c.done, "bus held through the spike");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = || {
            let mut d = Disk::new(DiskProfile::nvme_c5d(), 7);
            (0..100)
                .map(|i| d.submit(SimTime::ZERO, req(0, i * 7, 3)).as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
