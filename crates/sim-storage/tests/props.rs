//! Property tests for the block-device model.

use proptest::prelude::*;

use sim_core::time::SimTime;
use sim_storage::device::{Disk, IoKind, IoRequest};
use sim_storage::file::FileId;
use sim_storage::profiles::DiskProfile;
use sim_storage::readahead::ReadaheadState;

fn req(file: u64, page: u64, pages: u64) -> IoRequest {
    IoRequest {
        file: FileId(file),
        page,
        pages,
        kind: IoKind::FaultRead,
    }
}

proptest! {
    /// Completions never precede submissions, and the shared-bus model
    /// keeps completions of successively submitted requests monotone.
    #[test]
    fn completions_causal_and_monotone(
        reqs in proptest::collection::vec((0u64..4, 0u64..100_000, 1u64..256), 1..100),
        gaps in proptest::collection::vec(0u64..100_000, 1..100)
    ) {
        let mut d = Disk::new(DiskProfile::nvme_c5d(), 7);
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        for ((f, p, n), gap) in reqs.iter().zip(gaps.iter().cycle()) {
            now += sim_core::time::SimDuration::from_nanos(*gap);
            let done = d.submit(now, req(*f, *p, *n));
            prop_assert!(done >= now, "completion precedes submission");
            prop_assert!(done >= last_done, "bus order violated");
            last_done = done;
        }
    }

    /// Page accounting is exact.
    #[test]
    fn stats_conserve_pages(
        reqs in proptest::collection::vec((0u64..3, 0u64..10_000, 1u64..64), 0..60)
    ) {
        let mut d = Disk::new(DiskProfile::nvme_c5d(), 9);
        let mut total = 0u64;
        for (f, p, n) in &reqs {
            d.submit(SimTime::ZERO, req(*f, *p, *n));
            total += n;
        }
        prop_assert_eq!(d.stats().pages, total);
        prop_assert_eq!(d.stats().requests, reqs.len() as u64);
        let by_kind: u64 = (0..7).map(|i| d.stats().pages_by_kind[i]).sum();
        prop_assert_eq!(by_kind, total);
    }

    /// A strictly sequential stream is never slower than the same bytes
    /// issued at scattered offsets.
    #[test]
    fn sequential_no_slower_than_scattered(n_chunks in 2u64..40, chunk in 1u64..64) {
        let mut seq = Disk::new({ let mut p = DiskProfile::nvme_c5d(); p.latency_jitter = 0.0; p }, 1);
        let mut rand = Disk::new({ let mut p = DiskProfile::nvme_c5d(); p.latency_jitter = 0.0; p }, 1);
        let mut seq_done = SimTime::ZERO;
        let mut rand_done = SimTime::ZERO;
        for i in 0..n_chunks {
            seq_done = seq.submit(SimTime::ZERO, req(0, i * chunk, chunk));
            // Scattered: big strides break sequential detection.
            rand_done = rand.submit(SimTime::ZERO, req(0, i * (chunk + 1000), chunk));
        }
        prop_assert!(seq_done <= rand_done);
    }

    /// Readahead windows always start at the missing page and stay within
    /// configured bounds.
    #[test]
    fn readahead_window_bounds(
        misses in proptest::collection::vec(0u64..1_000_000, 1..100),
        initial in 1u64..16,
        maxw in 16u64..128
    ) {
        let mut ra = ReadaheadState::new(initial, maxw);
        for &m in &misses {
            let (start, len) = ra.on_miss(m);
            prop_assert_eq!(start, m);
            prop_assert!(len >= initial.min(maxw));
            prop_assert!(len <= maxw);
        }
    }
}
