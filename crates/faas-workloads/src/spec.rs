//! The generic function model: parameters → boot image + traces.
//!
//! Every Table 2 function is an instance of [`FunctionParams`] (see
//! [`crate::catalog`] for the twelve calibrated instances). A
//! [`Function`] binds parameters to a [`Layout`], builds the runtime
//! [`ScatterPool`] once, and can then produce:
//!
//! - the **boot image** — guest memory after boot + runtime init (what the
//!   *clean snapshot* freezes): kernel pages, the whole runtime pool, and
//!   stable data are non-zero;
//! - a **trace** for any [`Input`] — the invocation's page accesses in
//!   order: runtime working set (stable base + input-dependent variant),
//!   input ingest, stable-data reads, anonymous buffer writes, frees, and
//!   compute.

use sim_core::time::SimDuration;
use sim_mm::addr::PageRange;
use sim_vm::guest_memory::GuestMemory;
use sim_vm::trace::{Trace, TraceOp};

use crate::input::Input;
use crate::layout::{Layout, ScatterParams, ScatterPool};

/// How buffer pages grow with input scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufferScaling {
    /// Independent of input size (ffmpeg's fixed 480p frame pipeline).
    Constant,
    /// Proportional to scale (decode buffers, HTML output).
    Linear,
    /// Proportional to scale squared (matmul's n×n matrices).
    Quadratic,
}

impl BufferScaling {
    /// Scale factor applied to the input-A buffer count.
    pub fn factor(&self, scale: f64) -> f64 {
        match self {
            BufferScaling::Constant => 1.0,
            BufferScaling::Linear => scale,
            BufferScaling::Quadratic => scale * scale,
        }
    }
}

/// Calibrated parameters of one evaluation function.
#[derive(Clone, Debug)]
pub struct FunctionParams {
    /// Function name as in Table 2.
    pub name: &'static str,
    /// One-line description (Table 2's "Description" column).
    pub description: &'static str,
    /// Deterministic seed for layout/order decisions.
    pub seed: u64,
    /// Runtime working-set pages touched by every invocation.
    pub runtime_base_pages: u64,
    /// Input-dependent runtime pages (different code paths per input).
    pub flow_variant_pages: u64,
    /// Total runtime pool pages loaded in the boot image (≥ base+variant).
    pub runtime_pool_pages: u64,
    /// Scatter shape of the runtime pool.
    pub scatter: ScatterParams,
    /// Long-lived non-zero data pages (list, model weights).
    pub stable_pages: u64,
    /// Fraction of stable data read per invocation.
    pub stable_read_frac: f64,
    /// Input A network payload (KiB); 0 for generated inputs.
    pub input_a_kb: u64,
    /// Input B network payload (KiB).
    pub input_b_kb: u64,
    /// Input B's workload magnitude relative to A.
    pub b_over_a: f64,
    /// Anonymous buffer pages written at input A scale.
    pub buffer_pages_a: u64,
    /// Buffer growth law.
    pub buffer_scaling: BufferScaling,
    /// Buffer pages written regardless of input (mmap's 512 MB region).
    pub fixed_buffer_pages: u64,
    /// Fraction of heap pages (payload + buffers) freed at request end.
    pub freed_frac: f64,
    /// Guest work per runtime page touched (µs).
    pub per_runtime_page_us: f64,
    /// Guest work per data page touched (µs).
    pub per_data_page_us: f64,
    /// Fixed guest work per invocation (ms).
    pub base_compute_ms: f64,
}

/// A function bound to a layout, ready to produce traces.
#[derive(Clone, Debug)]
pub struct Function {
    params: FunctionParams,
    layout: Layout,
    pool: ScatterPool,
}

impl Function {
    /// Binds `params` to `layout`, building the runtime pool.
    pub fn new(params: FunctionParams, layout: Layout) -> Self {
        assert!(
            params.runtime_pool_pages >= params.runtime_base_pages + params.flow_variant_pages,
            "{}: pool smaller than base+variant",
            params.name
        );
        assert!(
            params.stable_pages <= layout.stable_area.len(),
            "{}: stable data exceeds stable area",
            params.name
        );
        let pool = ScatterPool::build(
            layout.runtime_area,
            params.runtime_pool_pages,
            &params.scatter,
            params.seed,
        );
        Function {
            params,
            layout,
            pool,
        }
    }

    /// Binds to the default 2 GB layout.
    pub fn with_default_layout(params: FunctionParams) -> Self {
        Self::new(params, Layout::default())
    }

    /// Function name.
    pub fn name(&self) -> &'static str {
        self.params.name
    }

    /// Calibrated parameters.
    pub fn params(&self) -> &FunctionParams {
        &self.params
    }

    /// The layout this function is bound to.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The runtime page pool.
    pub fn pool(&self) -> &ScatterPool {
        &self.pool
    }

    /// Table 2's input A (record phase).
    pub fn input_a(&self) -> Input {
        Input::new(1.0, self.params.input_a_kb, 0xA)
    }

    /// Table 2's input B (test phase).
    pub fn input_b(&self) -> Input {
        Input::new(self.params.b_over_a, self.params.input_b_kb, 0xB)
    }

    /// An input scaled to `ratio`× input A (Figure 8), with fresh contents.
    pub fn input_scaled(&self, ratio: f64, seed: u64) -> Input {
        Input::new(
            ratio,
            (self.params.input_a_kb as f64 * ratio).round() as u64,
            seed,
        )
    }

    /// Buffer pages written for `input` (after heap clamping).
    pub fn buffer_pages(&self, input: &Input) -> u64 {
        let raw = (self.params.buffer_pages_a as f64
            * self.params.buffer_scaling.factor(input.scale))
        .round() as u64
            + self.params.fixed_buffer_pages;
        // The guest cannot allocate more than the heap; oversized workloads
        // reuse memory (extra passes add compute, not new pages).
        raw.min(self.heap_budget())
    }

    fn heap_budget(&self) -> u64 {
        // Leave room for the allocator offset and payload.
        self.layout.heap_pages().saturating_sub(4096)
    }

    /// Analytic working-set estimate for `input` (distinct pages touched).
    pub fn expected_ws_pages(&self, input: &Input) -> u64 {
        let p = &self.params;
        let stable = (p.stable_pages as f64 * p.stable_read_frac).round() as u64;
        p.runtime_base_pages
            + p.flow_variant_pages
            + stable
            + input.payload_pages()
            + self.buffer_pages(input)
    }

    /// Builds the post-boot guest memory (the clean snapshot's contents):
    /// kernel, the entire runtime pool, and stable data are non-zero.
    pub fn boot_image(&self) -> GuestMemory {
        let mut mem = GuestMemory::new(self.layout.total_pages);
        let kseed = self.params.seed ^ KERNEL_TOKEN_SEED;
        for page in self.layout.kernel.iter() {
            mem.write(page, Trace::token_for(kseed, page));
        }
        let rseed = self.params.seed.wrapping_mul(0x9E37) | 1;
        for &page in self.pool.pages() {
            mem.write(page, Trace::token_for(rseed, page));
        }
        // Filler between nearby clusters: data of the same shared objects
        // that this function never touches (cold set, non-zero).
        let fseed = self.params.seed.wrapping_mul(0xF111) | 1;
        for gap in self.pool.small_gaps(16) {
            for page in gap.iter() {
                mem.write(page, Trace::token_for(fseed, page));
            }
        }
        if self.params.stable_pages > 0 {
            let sseed = self.params.seed.wrapping_mul(0xC2B2) | 1;
            for page in self.layout.stable_extent(self.params.stable_pages).iter() {
                mem.write(page, Trace::token_for(sseed, page));
            }
        }
        mem
    }

    /// Builds the invocation trace for `input`.
    pub fn trace(&self, input: &Input) -> Trace {
        let p = &self.params;
        let mut t = Trace::new();
        let us = SimDuration::from_micros_f64;

        // Request receipt and dispatch inside the guest server.
        t.push(TraceOp::Compute(SimDuration::from_micros_f64(
            p.base_compute_ms * 1000.0 * 0.25,
        )));

        // 1. Runtime working set: stable base in a stable access order,
        //    plus input-dependent flow-variant pages.
        let runtime_pages = self.pool.access_set(
            p.runtime_base_pages,
            p.flow_variant_pages,
            p.seed ^ 0x0BDE,
            input.seed.wrapping_mul(31).wrapping_add(p.seed),
        );
        if !runtime_pages.is_empty() {
            t.push(TraceOp::TouchList {
                pages: runtime_pages,
                write: false,
                per_page_compute: us(p.per_runtime_page_us),
                token_seed: 0,
            });
        }

        // 2. Ingest the network payload into fresh heap pages. Where the
        //    guest allocator places request-scoped memory varies with the
        //    input (allocator state, ASLR): different inputs land on
        //    substantially different heap pages, which is why even a
        //    same-size different-content invocation ("image-diff", §3.1)
        //    touches thousands of pages outside the previous working set.
        let alloc_jitter = Trace::token_for(input.seed | 1, 0xFEED) % 2048;
        let mut heap_cursor = self.layout.heap_base + alloc_jitter;
        let payload = input.payload_pages();
        let heap_start = heap_cursor;
        if payload > 0 {
            t.push(TraceOp::Touch {
                range: PageRange::with_len(heap_cursor, payload),
                stride: 1,
                write: true,
                per_page_compute: us(0.2),
                token_seed: input.seed | 1,
            });
            heap_cursor += payload;
        }

        // 3. Read stable data (the 512 MB list, model weights, ...).
        let stable_read = (p.stable_pages as f64 * p.stable_read_frac).round() as u64;
        if stable_read > 0 {
            t.push(TraceOp::Touch {
                range: PageRange::with_len(self.layout.stable_area.start, stable_read),
                stride: 1,
                write: false,
                per_page_compute: us(p.per_data_page_us),
                token_seed: 0,
            });
        }

        // 4. Anonymous work buffers (decode buffers, matrices, frames...).
        let buffers = self.buffer_pages(input);
        if buffers > 0 {
            t.push(TraceOp::Touch {
                range: PageRange::with_len(heap_cursor, buffers),
                stride: 1,
                write: true,
                per_page_compute: us(p.per_data_page_us),
                token_seed: input.seed.wrapping_add(7) | 1,
            });
            heap_cursor += buffers;

            // Oversized workloads that were clamped to the heap budget do
            // the remaining work by reusing memory: extra compute only.
            let raw = (p.buffer_pages_a as f64 * p.buffer_scaling.factor(input.scale)).round()
                as u64
                + p.fixed_buffer_pages;
            if raw > buffers {
                let extra = (raw - buffers) as f64 * p.per_data_page_us;
                t.push(TraceOp::Compute(us(extra)));
            }
        }

        // 5. Free request-scoped heap memory.
        let heap_used = heap_cursor - heap_start;
        let freed = (heap_used as f64 * p.freed_frac).round() as u64;
        if freed > 0 {
            t.push(TraceOp::Free {
                range: PageRange::with_len(heap_start, freed),
            });
        }

        // 6. Serialize and send the reply.
        t.push(TraceOp::Compute(SimDuration::from_micros_f64(
            p.base_compute_ms * 1000.0 * 0.75,
        )));
        t
    }
}

/// Token seed component for kernel pages.
const KERNEL_TOKEN_SEED: u64 = 0x5EED_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn f(name: &str) -> Function {
        crate::by_name(name).unwrap()
    }

    #[test]
    fn buffer_scaling_laws() {
        assert_eq!(BufferScaling::Constant.factor(4.0), 1.0);
        assert_eq!(BufferScaling::Linear.factor(4.0), 4.0);
        assert_eq!(BufferScaling::Quadratic.factor(4.0), 16.0);
    }

    #[test]
    fn trace_phase_structure() {
        // image: runtime touch, payload ingest, buffer writes, free, tail.
        let image = f("image");
        let t = image.trace(&image.input_a());
        let kinds: Vec<&'static str> = t
            .ops
            .iter()
            .map(|op| match op {
                TraceOp::Compute(_) => "compute",
                TraceOp::Touch { write: true, .. } => "write",
                TraceOp::Touch { write: false, .. } => "read",
                TraceOp::TouchList { .. } => "runtime",
                TraceOp::Free { .. } => "free",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["compute", "runtime", "write", "write", "free", "compute"]
        );
    }

    #[test]
    fn freed_fraction_respected() {
        let image = f("image");
        let input = image.input_a();
        let t = image.trace(&input);
        let heap_written: u64 = t
            .ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Touch {
                    range, write: true, ..
                } => Some(range.len()),
                _ => None,
            })
            .sum();
        let freed: u64 = t
            .ops
            .iter()
            .filter_map(|op| match op {
                TraceOp::Free { range } => Some(range.len()),
                _ => None,
            })
            .sum();
        let frac = freed as f64 / heap_written as f64;
        let expect = image.params().freed_frac;
        assert!((frac - expect).abs() < 0.01, "freed {frac:.2} vs {expect}");
    }

    #[test]
    fn allocator_placement_varies_with_input_content() {
        let image = f("image");
        let heap_start = |input: &crate::Input| {
            image
                .trace(input)
                .ops
                .iter()
                .find_map(|op| match op {
                    TraceOp::Touch {
                        range, write: true, ..
                    } => Some(range.start),
                    _ => None,
                })
                .unwrap()
        };
        let a = heap_start(&image.input_a());
        let diff = heap_start(&image.input_a().reseeded(0xD1FF));
        assert_ne!(a, diff, "different contents allocate at different offsets");
        assert!(a.abs_diff(diff) < 4096, "jitter bounded");
    }

    #[test]
    fn stable_data_read_before_buffers() {
        let rl = f("read-list");
        let t = rl.trace(&rl.input_a());
        let stable_idx = t
            .ops
            .iter()
            .position(|op| {
                matches!(op, TraceOp::Touch { range, write: false, .. }
                    if range.start == rl.layout().stable_area.start)
            })
            .expect("stable read present");
        let buffer_idx = t
            .ops
            .iter()
            .position(|op| matches!(op, TraceOp::Touch { write: true, .. }))
            .expect("buffer write present");
        assert!(stable_idx < buffer_idx);
    }

    #[test]
    fn boot_image_filler_is_cold_not_ws() {
        // Filler pages are non-zero in the boot image but never in traces.
        let hello = f("hello-world");
        let img = hello.boot_image();
        let gaps = hello.pool().small_gaps(16);
        assert!(!gaps.is_empty());
        let trace_pages: std::collections::BTreeSet<u64> = {
            let t = hello.trace(&hello.input_a());
            let mut set = std::collections::BTreeSet::new();
            for op in &t.ops {
                if let TraceOp::TouchList { pages, .. } = op {
                    set.extend(pages.iter().copied());
                }
            }
            set
        };
        for gap in gaps.iter().take(20) {
            for p in gap.iter() {
                assert!(img.is_nonzero(p), "filler page {p} non-zero");
                assert!(!trace_pages.contains(&p), "filler page {p} untouched");
            }
        }
    }

    #[test]
    fn every_catalog_function_builds_consistent_traces() {
        for params in catalog::all_params() {
            let func = Function::with_default_layout(params);
            let t = func.trace(&func.input_b());
            assert!(t.access_count() > 0, "{}", func.name());
            assert!(t.compute_total() > SimDuration::ZERO, "{}", func.name());
            // All touched pages are within the guest.
            assert!(t.distinct_pages() < func.layout().total_pages);
        }
    }
}
