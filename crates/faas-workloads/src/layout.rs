//! Guest physical memory layout and scattered page pools.
//!
//! The paper's guests have 2 GB of memory (§6.1). The layout divides
//! guest-physical pages into the segments that drive snapshot behavior:
//!
//! - **kernel** — pages used by the guest kernel during boot. Non-zero in
//!   every snapshot; almost never touched by invocations. This is the bulk
//!   of the *cold set* ("usually more than 100 MB in size, and most of
//!   them are pages used in the guest booting process", §4.8).
//! - **runtime area** — where the interpreter and libraries live. Pages
//!   here are scattered in small clusters (the loader mapped shared
//!   objects all over the address space), which is why hello-world's
//!   loading set has ">1000 regions" before merging (§4.6).
//! - **stable data area** — contiguous long-lived data (a resident Python
//!   list, model weights).
//! - **heap area** — anonymous allocations made during invocations; zero
//!   in a sanitized snapshot.

use sim_core::rng::Prng;
use sim_core::units::{pages_for_bytes, GIB};
use sim_mm::addr::{PageNum, PageRange};

/// Deterministic scattered page pool: small clusters with small gaps,
/// grouped into super-clusters separated by large jumps. Models the page
/// population of a loaded language runtime.
#[derive(Clone, Debug)]
pub struct ScatterPool {
    /// All pool pages in ascending address order.
    pages: Vec<PageNum>,
    /// Cluster extents, ascending.
    clusters: Vec<PageRange>,
}

/// Shape parameters for a [`ScatterPool`].
#[derive(Clone, Debug)]
pub struct ScatterParams {
    /// Minimum pages per cluster.
    pub cluster_min: u64,
    /// Maximum pages per cluster.
    pub cluster_max: u64,
    /// Minimum gap between clusters inside a super-cluster.
    pub gap_min: u64,
    /// Maximum gap between clusters inside a super-cluster.
    pub gap_max: u64,
    /// Clusters per super-cluster.
    pub clusters_per_super: u64,
    /// Minimum gap between super-clusters.
    pub super_gap_min: u64,
    /// Maximum gap between super-clusters.
    pub super_gap_max: u64,
}

impl Default for ScatterParams {
    fn default() -> Self {
        // Tuned so a ~3000-page pool lands in ~1000 clusters, most gaps
        // under the 32-page merge threshold, with occasional large jumps —
        // the hello-world shape of §4.6.
        ScatterParams {
            cluster_min: 2,
            cluster_max: 4,
            gap_min: 1,
            gap_max: 6,
            clusters_per_super: 16,
            super_gap_min: 150,
            super_gap_max: 800,
        }
    }
}

impl ScatterPool {
    /// Builds a pool of `target_pages` pages inside `area`.
    ///
    /// # Panics
    ///
    /// Panics if the area cannot hold the pool with the given shape.
    pub fn build(area: PageRange, target_pages: u64, params: &ScatterParams, seed: u64) -> Self {
        let mut rng = Prng::new(seed);
        let mut pages = Vec::with_capacity(target_pages as usize);
        let mut clusters = Vec::new();
        let mut pos = area.start;
        let mut cluster_in_super = 0;
        while (pages.len() as u64) < target_pages {
            let len = rng
                .range(params.cluster_min, params.cluster_max)
                .min(target_pages - pages.len() as u64);
            assert!(pos + len <= area.end, "scatter pool overflows area {area}");
            clusters.push(PageRange::with_len(pos, len));
            for p in pos..pos + len {
                pages.push(p);
            }
            pos += len;
            cluster_in_super += 1;
            if cluster_in_super >= params.clusters_per_super {
                cluster_in_super = 0;
                pos += rng.range(params.super_gap_min, params.super_gap_max);
            } else {
                pos += rng.range(params.gap_min, params.gap_max);
            }
        }
        ScatterPool { pages, clusters }
    }

    /// Total pages in the pool.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// All pool pages, ascending.
    pub fn pages(&self) -> &[PageNum] {
        &self.pages
    }

    /// Cluster extents, ascending.
    pub fn clusters(&self) -> &[PageRange] {
        &self.clusters
    }

    /// Gaps between consecutive clusters of at most `max_gap` pages.
    ///
    /// These model the padding/other-library data that sits between the
    /// pages a function touches within one mapped shared object: non-zero
    /// in the boot image (part of the cold set) even though no invocation
    /// reads it. Larger gaps (between shared objects) stay zero.
    pub fn small_gaps(&self, max_gap: u64) -> Vec<PageRange> {
        self.clusters
            .windows(2)
            .filter_map(|w| {
                let gap = w[0].gap_to(&w[1])?;
                (gap > 0 && gap <= max_gap).then(|| PageRange::new(w[0].end, w[1].start))
            })
            .collect()
    }

    /// The per-invocation access set: the first `base` pages (stable
    /// across invocations) plus `variant` pages sampled from the remainder
    /// with `variant_seed` (input-dependent code paths). Returned in a
    /// stable pseudo-random *access order* derived from `order_seed`
    /// (imports do not happen in address order), with the variant pages
    /// interleaved at seeded positions.
    pub fn access_set(
        &self,
        base: u64,
        variant: u64,
        order_seed: u64,
        variant_seed: u64,
    ) -> Vec<PageNum> {
        let base = base.min(self.len()) as usize;
        let mut set: Vec<PageNum> = self.pages[..base].to_vec();
        // Stable shuffle: same order_seed => same access order, so the
        // working-set *order* is consistent across invocations (what
        // REAP's prefetch and FaaSnap's groups rely on).
        let mut order_rng = Prng::new(order_seed);
        // Shuffle at cluster granularity: pages within a cluster stay
        // together (code within a shared object is accessed together).
        let mut chunks: Vec<Vec<PageNum>> = Vec::new();
        {
            let mut cur: Vec<PageNum> = Vec::new();
            for &p in &set {
                if let Some(&last) = cur.last() {
                    if p != last + 1 {
                        chunks.push(std::mem::take(&mut cur));
                    }
                }
                cur.push(p);
            }
            if !cur.is_empty() {
                chunks.push(cur);
            }
        }
        order_rng.shuffle(&mut chunks);
        set = chunks.into_iter().flatten().collect();

        // Variant pages come from the tail of the pool.
        let tail = &self.pages[base..];
        if !tail.is_empty() && variant > 0 {
            let mut vrng = Prng::new(variant_seed);
            let mut picks: Vec<PageNum> = Vec::with_capacity(variant as usize);
            let mut idx: Vec<usize> = (0..tail.len()).collect();
            vrng.shuffle(&mut idx);
            for &i in idx.iter().take(variant.min(tail.len() as u64) as usize) {
                picks.push(tail[i]);
            }
            // Interleave the variant picks at seeded positions.
            for p in picks {
                let at = vrng.below(set.len() as u64 + 1) as usize;
                set.insert(at, p);
            }
        }
        set
    }
}

/// The guest physical layout used by all functions.
#[derive(Clone, Debug)]
pub struct Layout {
    /// Total guest pages (2 GB default).
    pub total_pages: u64,
    /// Guest kernel / boot pages (non-zero, rarely touched).
    pub kernel: PageRange,
    /// Area where runtime pools are placed.
    pub runtime_area: PageRange,
    /// Area for stable long-lived data.
    pub stable_area: PageRange,
    /// First heap page (anonymous allocations grow upward from here).
    pub heap_base: PageNum,
}

impl Default for Layout {
    fn default() -> Self {
        Self::new(pages_for_bytes(2 * GIB))
    }
}

impl Layout {
    /// Creates the standard layout for a guest of `total_pages`.
    pub fn new(total_pages: u64) -> Self {
        // Fractions follow the 2 GB reference guest; smaller guests (used
        // in tests) scale down proportionally.
        let kernel_pages = (total_pages / 13).max(16); // ~160 MB on 2 GB
        let kernel = PageRange::with_len(1, kernel_pages);
        let runtime_len = (total_pages * 30 / 100).max(32);
        let runtime_area = PageRange::with_len(kernel.end + 1, runtime_len);
        let stable_len = (total_pages * 28 / 100).max(32);
        let stable_area = PageRange::with_len(runtime_area.end + 1, stable_len);
        let heap_base = stable_area.end + 1;
        assert!(heap_base < total_pages);
        Layout {
            total_pages,
            kernel,
            runtime_area,
            stable_area,
            heap_base,
        }
    }

    /// Pages available for the heap.
    pub fn heap_pages(&self) -> u64 {
        self.total_pages - self.heap_base
    }

    /// A stable-data extent of `pages` pages at the start of the stable
    /// area.
    ///
    /// # Panics
    ///
    /// Panics if the stable area is too small.
    pub fn stable_extent(&self, pages: u64) -> PageRange {
        assert!(pages <= self.stable_area.len(), "stable data exceeds area");
        PageRange::with_len(self.stable_area.start, pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::MIB;

    fn pool() -> ScatterPool {
        let layout = Layout::default();
        ScatterPool::build(layout.runtime_area, 3020, &ScatterParams::default(), 7)
    }

    #[test]
    fn pool_has_requested_pages() {
        let p = pool();
        assert_eq!(p.len(), 3020);
        let mut sorted = p.pages().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, p.pages(), "pages ascend");
        sorted.dedup();
        assert_eq!(sorted.len(), 3020, "no duplicates");
    }

    #[test]
    fn pool_is_fragmented_like_hello_world() {
        // §4.6: "there can be more than 1000 loading set regions" for
        // hello-world before merging.
        let p = pool();
        assert!(p.clusters().len() > 800, "{} clusters", p.clusters().len());
        assert!(p.clusters().len() < 1600, "{} clusters", p.clusters().len());
    }

    #[test]
    fn pool_gaps_mostly_under_merge_threshold() {
        let p = pool();
        let gaps: Vec<u64> = p
            .clusters()
            .windows(2)
            .map(|w| w[0].gap_to(&w[1]).expect("sorted clusters"))
            .collect();
        let small = gaps.iter().filter(|&&g| g <= 32).count();
        let frac = small as f64 / gaps.len() as f64;
        assert!(frac > 0.85, "only {frac:.2} of gaps are mergeable");
        assert!(gaps.iter().any(|&g| g > 32), "some gaps must block merging");
    }

    #[test]
    fn pool_deterministic() {
        let a = pool();
        let b = pool();
        assert_eq!(a.pages(), b.pages());
    }

    #[test]
    fn access_set_base_is_stable_order() {
        let p = pool();
        let a = p.access_set(2000, 0, 11, 1);
        let b = p.access_set(2000, 0, 11, 2);
        assert_eq!(a, b, "no variant => identical access order");
        assert_eq!(a.len(), 2000);
        // Order is shuffled relative to address order.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_ne!(a, sorted);
        assert_eq!(sorted, p.pages()[..2000].to_vec());
    }

    #[test]
    fn access_set_variant_depends_on_seed() {
        let p = pool();
        let a = p.access_set(2000, 300, 11, 1);
        let b = p.access_set(2000, 300, 11, 2);
        assert_eq!(a.len(), 2300);
        assert_ne!(a, b, "different variant seeds pick different pages");
        // Base pages are common to both.
        let base: std::collections::BTreeSet<_> = p.pages()[..2000].iter().collect();
        assert!(a.iter().filter(|p| base.contains(p)).count() == 2000);
    }

    #[test]
    fn access_set_clamps() {
        let p = pool();
        let a = p.access_set(999_999, 999_999, 1, 1);
        assert_eq!(a.len() as u64, p.len());
    }

    #[test]
    fn layout_segments_disjoint_and_ordered() {
        let l = Layout::default();
        assert_eq!(l.total_pages, 524_288);
        assert!(l.kernel.end <= l.runtime_area.start);
        assert!(l.runtime_area.end <= l.stable_area.start);
        assert!(l.stable_area.end <= l.heap_base);
        assert!(
            l.heap_pages() > pages_for_bytes(540 * MIB),
            "heap fits mmap's 512 MB"
        );
        // Kernel ~160 MB.
        let kernel_mb = l.kernel.bytes() / MIB;
        assert!((120..200).contains(&kernel_mb), "kernel {kernel_mb} MB");
    }

    #[test]
    fn small_layout_for_tests() {
        let l = Layout::new(4096);
        assert!(l.heap_pages() > 100);
        assert!(l.kernel.len() >= 16);
    }

    #[test]
    fn stable_extent_bounds() {
        let l = Layout::default();
        let e = l.stable_extent(1000);
        assert_eq!(e.start, l.stable_area.start);
        assert_eq!(e.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "exceeds area")]
    fn oversized_stable_extent_panics() {
        Layout::new(4096).stable_extent(1 << 30);
    }
}
