//! The evaluation functions of Table 2, as deterministic trace generators.
//!
//! The paper evaluates three synthetic functions (hello-world, read-list,
//! mmap) and nine application functions drawn from FunctionBench, SeBS,
//! and Sprocket (image, json, pyaes, chameleon, matmul, ffmpeg,
//! compression, recognition, pagerank). We cannot run Python/Flask guests,
//! so each function is modeled as a memory-access trace generator whose
//! page-population structure is calibrated to Table 2's measured working
//! sets:
//!
//! - **runtime pages** — interpreter + imported libraries, scattered in
//!   small clusters across the guest address space (this is what makes
//!   loading sets fragmented, §4.6); mostly stable across invocations,
//!   with an input-dependent *flow-variant* fraction (different code
//!   paths);
//! - **stable data pages** — long-lived non-zero data read by every
//!   invocation (read-list's 512 MB list, recognition's ResNet-50
//!   weights);
//! - **input and buffer pages** — anonymous allocations scaling with the
//!   input (decode buffers, matrices, graphs), written during the
//!   invocation and mostly freed at its end — zero pages in a sanitized
//!   snapshot, which is exactly the population FaaSnap's per-region
//!   mapping accelerates;
//! - **compute** — per-page and fixed work calibrated so warm-VM execution
//!   times land near the paper's Figure 1.
//!
//! [`spec::Function::trace`] builds the trace for a given [`Input`];
//! [`spec::Function::boot_image`] builds the post-boot,
//! runtime-initialized guest memory the *clean snapshot* freezes
//! (Figure 5's record phase starts from it).

#![forbid(unsafe_code)]
pub mod catalog;
pub mod input;
pub mod layout;
pub mod spec;

pub use catalog::{all_functions, application_functions, by_name, synthetic_functions};
pub use input::Input;
pub use layout::{Layout, ScatterPool};
pub use spec::{Function, FunctionParams};
