//! Function inputs.
//!
//! Table 2 gives each function two inputs: input A (used in the record
//! phase) and a different, usually larger input B (test phase), because
//! "in real-world deployments, inputs are most likely different across
//! invocations" (§3.1). Figure 8 additionally sweeps the test-phase input
//! from 1/4× to 4× the record-phase size.
//!
//! An [`Input`] carries a *scale* (relative to the function's input A, in
//! whatever unit the function's buffers grow with — bytes for file
//! inputs, matrix dimension for matmul, node count for pagerank), the
//! network payload size, and a content seed (different inputs have
//! entirely different contents, which drives flow-variant page selection
//! and written tokens).

/// One concrete input to a function.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Input {
    /// Workload magnitude relative to the function's input A (1.0 = A).
    pub scale: f64,
    /// Network payload delivered to the guest, in KiB (0 for functions
    /// with generated inputs).
    pub payload_kb: u64,
    /// Content seed: different seeds mean entirely different input data.
    pub seed: u64,
}

impl Input {
    /// Creates an input.
    pub fn new(scale: f64, payload_kb: u64, seed: u64) -> Self {
        assert!(scale > 0.0, "input scale must be positive");
        Input {
            scale,
            payload_kb,
            seed,
        }
    }

    /// Payload size in pages (rounded up; 0 stays 0).
    pub fn payload_pages(&self) -> u64 {
        (self.payload_kb * 1024).div_ceil(4096)
    }

    /// A copy with a different content seed (same size, different data —
    /// the `image-diff` pattern of §3.1).
    pub fn reseeded(&self, seed: u64) -> Input {
        Input { seed, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_pages_rounding() {
        assert_eq!(Input::new(1.0, 0, 1).payload_pages(), 0);
        assert_eq!(Input::new(1.0, 4, 1).payload_pages(), 1);
        assert_eq!(Input::new(1.0, 5, 1).payload_pages(), 2);
        assert_eq!(Input::new(1.0, 101, 1).payload_pages(), 26);
    }

    #[test]
    fn reseed_keeps_size() {
        let a = Input::new(2.0, 100, 1);
        let b = a.reseeded(9);
        assert_eq!(b.scale, 2.0);
        assert_eq!(b.payload_kb, 100);
        assert_eq!(b.seed, 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        Input::new(0.0, 0, 1);
    }
}
