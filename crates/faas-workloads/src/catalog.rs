//! The twelve evaluation functions of Table 2, calibrated.
//!
//! Working-set targets (Table 2, input A / input B):
//!
//! | function     | WS A     | WS B     | input A        | input B        |
//! |--------------|----------|----------|----------------|----------------|
//! | hello-world  | 11.8 MB  | 11.8 MB  | n/a            | n/a            |
//! | read-list    | 526 MB   | 526 MB   | n/a            | n/a            |
//! | mmap         | 536 MB   | 536 MB   | 512 MB         | 512 MB         |
//! | image        | 20.6 MB  | 32.6 MB  | 101 KB JPEG    | 103 KB JPEG    |
//! | json         | 12.7 MB  | 14.4 MB  | 13 KB          | 148 KB         |
//! | pyaes        | 12.6 MB  | 13.2 MB  | 20 k string    | 22 k string    |
//! | chameleon    | 22.9 MB  | 25.1 MB  | 30 k rows      | 40 k rows      |
//! | matmul       | 113 MB   | 133 MB   | n = 2000       | n = 2200       |
//! | ffmpeg       | 179 MB   | 178 MB   | 338 KB video   | 381 KB video   |
//! | compression  | 15.3 MB  | 15.8 MB  | 13 KB          | 148 KB         |
//! | recognition  | 230 MB   | 234 MB   | 101 KB JPEG    | 103 KB JPEG    |
//! | pagerank     | 104 MB   | 114 MB   | 90 k nodes     | 100 k nodes    |
//!
//! Calibration notes per function are on each constructor. Page counts use
//! 4 KiB pages (1 MB ≈ 256 pages). Tests at the bottom assert every
//! function's analytic and traced working sets against Table 2 within
//! tolerance.

use crate::layout::ScatterParams;
use crate::spec::{BufferScaling, Function, FunctionParams};

/// Scatter preset for very large runtime pools (PyTorch-sized): bigger,
/// denser clusters so 100+ MB of libraries fit the runtime area.
fn dense_scatter() -> ScatterParams {
    ScatterParams {
        cluster_min: 16,
        cluster_max: 48,
        gap_min: 1,
        gap_max: 4,
        clusters_per_super: 24,
        super_gap_min: 50,
        super_gap_max: 200,
    }
}

/// `hello-world`: "a minimal function" replying with a string. Pure
/// runtime working set (Python + Flask ≈ 11.8 MB); finishes in ~4 ms warm.
pub fn hello_world() -> FunctionParams {
    FunctionParams {
        name: "hello-world",
        description: "a minimal function",
        seed: 101,
        runtime_base_pages: 2870,
        flow_variant_pages: 143,
        runtime_pool_pages: 4800,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 0,
        input_b_kb: 0,
        b_over_a: 1.0,
        buffer_pages_a: 0,
        buffer_scaling: BufferScaling::Constant,
        fixed_buffer_pages: 0,
        freed_frac: 1.0,
        per_runtime_page_us: 0.4,
        per_data_page_us: 0.0,
        base_compute_ms: 2.3,
    }
}

/// `read-list`: reads every page of a resident 512 MB Python list.
/// The list is stable data created at initialization; WS ≈ 526 MB.
pub fn read_list() -> FunctionParams {
    FunctionParams {
        name: "read-list",
        description: "read an 512 MB Python list",
        seed: 102,
        runtime_base_pages: 2900,
        flow_variant_pages: 100,
        runtime_pool_pages: 4900,
        scatter: ScatterParams::default(),
        stable_pages: 131_072, // 512 MB
        stable_read_frac: 1.0,
        input_a_kb: 0,
        input_b_kb: 0,
        b_over_a: 1.0,
        buffer_pages_a: 500,
        buffer_scaling: BufferScaling::Constant,
        fixed_buffer_pages: 0,
        freed_frac: 1.0,
        per_runtime_page_us: 0.4,
        per_data_page_us: 2.1,
        base_compute_ms: 8.0,
    }
}

/// `mmap`: maps a 512 MB anonymous region and writes every page. The
/// writes hit pages that are zero in a sanitized snapshot — the
/// semantic-gap stressor (§3.2): under whole-file mapping every write
/// triggers a useless disk read.
pub fn mmap() -> FunctionParams {
    FunctionParams {
        name: "mmap",
        description: "allocate anonymous memory",
        seed: 103,
        runtime_base_pages: 2900,
        flow_variant_pages: 100,
        runtime_pool_pages: 4900,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 0,
        input_b_kb: 0,
        b_over_a: 1.0,
        buffer_pages_a: 0,
        buffer_scaling: BufferScaling::Constant,
        fixed_buffer_pages: 131_072, // 512 MB written every invocation
        freed_frac: 1.0,
        per_runtime_page_us: 0.4,
        per_data_page_us: 4.2, // write + guest CoW zero-copy
        base_compute_ms: 6.0,
    }
}

/// `image` (FunctionBench): rotate a JPEG. PIL on top of the base
/// runtime; decode buffers scale with decoded image size (input B decodes
/// ~3.3× larger despite similar file size).
pub fn image() -> FunctionParams {
    FunctionParams {
        name: "image",
        description: "rotate a JPEG image",
        seed: 104,
        runtime_base_pages: 3800,
        flow_variant_pages: 190,
        runtime_pool_pages: 6900,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 101,
        input_b_kb: 103,
        b_over_a: 3.3,
        buffer_pages_a: 1250,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.5,
        per_data_page_us: 18.0,
        base_compute_ms: 12.0,
    }
}

/// `json` (FunctionBench): deserialize + serialize JSON.
pub fn json() -> FunctionParams {
    FunctionParams {
        name: "json",
        description: "deserialize and serialize json",
        seed: 105,
        runtime_base_pages: 3000,
        flow_variant_pages: 150,
        runtime_pool_pages: 5300,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 13,
        input_b_kb: 148,
        b_over_a: 8.0,
        buffer_pages_a: 75,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.5,
        per_data_page_us: 25.0,
        base_compute_ms: 15.0,
    }
}

/// `pyaes` (FunctionBench): AES-encrypt a string. CPU-bound; tiny
/// input-dependent population.
pub fn pyaes() -> FunctionParams {
    FunctionParams {
        name: "pyaes",
        description: "AES encryption",
        seed: 106,
        runtime_base_pages: 3050,
        flow_variant_pages: 120,
        runtime_pool_pages: 5200,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 20,
        input_b_kb: 22,
        b_over_a: 1.1,
        buffer_pages_a: 120,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.5,
        per_data_page_us: 900.0, // pure-Python AES is very slow per byte
        base_compute_ms: 60.0,
    }
}

/// `chameleon` (FunctionBench): render an HTML table of n rows. Output
/// string grows linearly with the table size.
pub fn chameleon() -> FunctionParams {
    FunctionParams {
        name: "chameleon",
        description: "render HTML table",
        seed: 107,
        runtime_base_pages: 3600,
        flow_variant_pages: 180,
        runtime_pool_pages: 6400,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 0, // generated in-guest
        input_b_kb: 0,
        b_over_a: 4.0 / 3.0, // 30 k -> 40 k rows
        buffer_pages_a: 2082,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.5,
        per_data_page_us: 55.0,
        base_compute_ms: 25.0,
    }
}

/// `matmul` (FunctionBench/SeBS): n×n float64 matrix multiply with numpy.
/// Three n² matrices dominate the working set — quadratic scaling.
pub fn matmul() -> FunctionParams {
    FunctionParams {
        name: "matmul",
        description: "matrix multiplication",
        seed: 108,
        runtime_base_pages: 4400, // numpy + BLAS ≈ 17 MB
        flow_variant_pages: 130,
        runtime_pool_pages: 7400,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 0, // size parameter, not a payload
        input_b_kb: 0,
        b_over_a: 1.1,          // 2000 -> 2200
        buffer_pages_a: 24_576, // 3 × (2000² × 8 B) = 96 MB
        buffer_scaling: BufferScaling::Quadratic,
        fixed_buffer_pages: 0,
        freed_frac: 0.9,
        per_runtime_page_us: 0.5,
        per_data_page_us: 28.0, // O(n³) work charged per matrix page
        base_compute_ms: 40.0,
    }
}

/// `ffmpeg` (Sprocket): grayscale filter over a 1-second 480p video. The
/// frame pipeline is sized by the (fixed) resolution, not the file size —
/// the working set barely moves between inputs.
pub fn ffmpeg() -> FunctionParams {
    FunctionParams {
        name: "ffmpeg",
        description: "apply grayscale filter",
        seed: 109,
        runtime_base_pages: 4600,
        flow_variant_pages: 180,
        runtime_pool_pages: 7600,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 338,
        input_b_kb: 381,
        b_over_a: 1.0,
        buffer_pages_a: 0,
        buffer_scaling: BufferScaling::Constant,
        fixed_buffer_pages: 39_680, // 155 MB frame pipeline
        freed_frac: 0.97,
        per_runtime_page_us: 0.5,
        per_data_page_us: 9.0,
        base_compute_ms: 45.0,
    }
}

/// `compression` (SeBS): gzip a file. Window/dictionary state grows
/// sub-linearly with the input.
pub fn compression() -> FunctionParams {
    FunctionParams {
        name: "compression",
        description: "file compression",
        seed: 110,
        runtime_base_pages: 3300,
        flow_variant_pages: 160,
        runtime_pool_pages: 5700,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 13,
        input_b_kb: 148,
        b_over_a: 1.35,
        buffer_pages_a: 450,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.5,
        per_data_page_us: 60.0,
        base_compute_ms: 20.0,
    }
}

/// `recognition` (FunctionBench): ResNet-50 inference with PyTorch.
/// Torch's ~100 MB of libraries plus 98 MB of resident model weights
/// dominate; inference tensors add ~27 MB.
pub fn recognition() -> FunctionParams {
    FunctionParams {
        name: "recognition",
        description: "ResNet-50 image recognition",
        seed: 111,
        runtime_base_pages: 26_000,
        flow_variant_pages: 800,
        runtime_pool_pages: 34_000,
        scatter: dense_scatter(),
        stable_pages: 25_088, // 98 MB of weights
        stable_read_frac: 1.0,
        input_a_kb: 101,
        input_b_kb: 103,
        b_over_a: 1.05,
        buffer_pages_a: 7_000,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.95,
        per_runtime_page_us: 0.45,
        per_data_page_us: 9.0,
        base_compute_ms: 80.0,
    }
}

/// `pagerank` (SeBS): igraph PageRank over an n-node graph. Graph
/// structures and rank vectors scale linearly with n.
pub fn pagerank() -> FunctionParams {
    FunctionParams {
        name: "pagerank",
        description: "igraph PageRank",
        seed: 112,
        runtime_base_pages: 3900,
        flow_variant_pages: 200,
        runtime_pool_pages: 6700,
        scatter: ScatterParams::default(),
        stable_pages: 0,
        stable_read_frac: 0.0,
        input_a_kb: 0, // graph generated from a size parameter
        input_b_kb: 0,
        b_over_a: 10.0 / 9.0, // 90 k -> 100 k nodes
        buffer_pages_a: 22_500,
        buffer_scaling: BufferScaling::Linear,
        fixed_buffer_pages: 0,
        freed_frac: 0.9,
        per_runtime_page_us: 0.5,
        per_data_page_us: 16.0,
        base_compute_ms: 35.0,
    }
}

/// All twelve functions, bound to the default 2 GB layout, in Table 2
/// order.
pub fn all_functions() -> Vec<Function> {
    all_params()
        .into_iter()
        .map(Function::with_default_layout)
        .collect()
}

/// Parameters of all twelve functions in Table 2 order.
pub fn all_params() -> Vec<FunctionParams> {
    vec![
        hello_world(),
        read_list(),
        mmap(),
        image(),
        json(),
        pyaes(),
        chameleon(),
        matmul(),
        ffmpeg(),
        compression(),
        recognition(),
        pagerank(),
    ]
}

/// The three synthetic functions (Figure 7).
pub fn synthetic_functions() -> Vec<Function> {
    [hello_world(), read_list(), mmap()]
        .into_iter()
        .map(Function::with_default_layout)
        .collect()
}

/// The nine application benchmark functions (Figures 6 and 8).
pub fn application_functions() -> Vec<Function> {
    [
        json(),
        compression(),
        pyaes(),
        chameleon(),
        image(),
        recognition(),
        pagerank(),
        matmul(),
        ffmpeg(),
    ]
    .into_iter()
    .map(Function::with_default_layout)
    .collect()
}

/// Looks up a function by its Table 2 name.
pub fn by_name(name: &str) -> Option<Function> {
    all_params()
        .into_iter()
        .find(|p| p.name == name)
        .map(Function::with_default_layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::units::MIB;

    /// Table 2 targets in MB: (name, ws_a, ws_b).
    const TARGETS: [(&str, f64, f64); 12] = [
        ("hello-world", 11.8, 11.8),
        ("read-list", 526.0, 526.0),
        ("mmap", 536.0, 536.0),
        ("image", 20.6, 32.6),
        ("json", 12.7, 14.4),
        ("pyaes", 12.6, 13.2),
        ("chameleon", 22.9, 25.1),
        ("matmul", 113.0, 133.0),
        ("ffmpeg", 179.0, 178.0),
        ("compression", 15.3, 15.8),
        ("recognition", 230.0, 234.0),
        ("pagerank", 104.0, 114.0),
    ];

    fn ws_mb(f: &Function, input: &crate::input::Input) -> f64 {
        let trace = f.trace(input);
        trace.distinct_pages() as f64 * 4096.0 / MIB as f64
    }

    #[test]
    fn working_sets_match_table_2() {
        for (name, target_a, target_b) in TARGETS {
            let f = by_name(name).expect(name);
            let a = ws_mb(&f, &f.input_a());
            let b = ws_mb(&f, &f.input_b());
            let tol = 0.10;
            assert!(
                (a - target_a).abs() / target_a < tol,
                "{name}: WS A {a:.1} MB vs Table 2 {target_a} MB"
            );
            assert!(
                (b - target_b).abs() / target_b < tol,
                "{name}: WS B {b:.1} MB vs Table 2 {target_b} MB"
            );
        }
    }

    #[test]
    fn analytic_estimate_matches_trace() {
        for f in all_functions() {
            let input = f.input_a();
            let analytic = f.expected_ws_pages(&input) as f64;
            let traced = f.trace(&input).distinct_pages() as f64;
            assert!(
                (analytic - traced).abs() / traced < 0.05,
                "{}: analytic {analytic} vs traced {traced}",
                f.name()
            );
        }
    }

    #[test]
    fn inputs_differ_in_content_not_base() {
        let f = by_name("image").unwrap();
        let a = f.trace(&f.input_a());
        let a2 = f.trace(&f.input_a());
        assert_eq!(a, a2, "same input => same trace");
        let diff = f.trace(&f.input_a().reseeded(77));
        assert_ne!(a, diff, "different content => different trace");
        // Same size though.
        let d_a = a.distinct_pages() as f64;
        let d_d = diff.distinct_pages() as f64;
        assert!((d_a - d_d).abs() / d_a < 0.02);
    }

    #[test]
    fn scaled_inputs_grow_buffers() {
        let f = by_name("matmul").unwrap();
        let small = f.buffer_pages(&f.input_scaled(0.5, 1));
        let base = f.buffer_pages(&f.input_scaled(1.0, 1));
        let big = f.buffer_pages(&f.input_scaled(2.0, 1));
        assert!(small < base && base < big);
        // Quadratic: 2x scale => 4x buffers.
        assert_eq!(big, base * 4);
        assert_eq!(small * 4, base);
    }

    #[test]
    fn oversized_input_clamps_to_heap() {
        let f = by_name("matmul").unwrap();
        let huge = f.buffer_pages(&f.input_scaled(4.0, 1));
        assert!(huge <= f.layout().heap_pages());
        // The trace still runs and adds compensating compute.
        let t = f.trace(&f.input_scaled(4.0, 1));
        assert!(t.distinct_pages() > 0);
    }

    #[test]
    fn ffmpeg_ws_constant_across_scale() {
        let f = by_name("ffmpeg").unwrap();
        let a = f.buffer_pages(&f.input_scaled(1.0, 1));
        let b = f.buffer_pages(&f.input_scaled(4.0, 1));
        assert_eq!(a, b, "frame pipeline is resolution-bound");
    }

    #[test]
    fn boot_image_contains_cold_set() {
        // §4.8: the cold set (non-zero pages outside the WS) is usually
        // more than 100 MB — mostly boot pages.
        for f in all_functions() {
            let img = f.boot_image();
            let nonzero_mb = img.nonzero_count() * 4096 / MIB;
            let ws_mb = f.expected_ws_pages(&f.input_a()) * 4096 / MIB;
            let runtime_stable_mb = ws_mb.saturating_sub(0); // informational
            let _ = runtime_stable_mb;
            // Non-zero boot image ≥ kernel (~160 MB) + pool + stable.
            assert!(
                nonzero_mb >= 150,
                "{}: boot image only {nonzero_mb} MB non-zero",
                f.name()
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("recognition").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(all_functions().len(), 12);
        assert_eq!(synthetic_functions().len(), 3);
        assert_eq!(application_functions().len(), 9);
    }

    #[test]
    fn warm_compute_times_reasonable() {
        // Figure 1: hello-world completes in ~4 ms warm; the big synthetic
        // functions run hundreds of ms.
        let hello = by_name("hello-world").unwrap();
        let t = hello
            .trace(&hello.input_a())
            .compute_total()
            .as_millis_f64();
        assert!((2.0..6.0).contains(&t), "hello-world warm {t:.1} ms");
        let rl = by_name("read-list").unwrap();
        let t = rl.trace(&rl.input_a()).compute_total().as_millis_f64();
        assert!((200.0..400.0).contains(&t), "read-list warm {t:.1} ms");
    }
}
