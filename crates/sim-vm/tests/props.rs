//! Property tests for the vCPU interpreter and guest memory.

use proptest::prelude::*;

use sim_core::time::SimDuration;
use sim_mm::addr::PageRange;
use sim_vm::guest_memory::GuestMemory;
use sim_vm::trace::{Trace, TraceOp};
use sim_vm::vcpu::{Step, Vcpu};

/// Arbitrary small trace over pages < 2000.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let op = prop_oneof![
        (0u64..5_000).prop_map(|us| TraceOp::Compute(SimDuration::from_micros(us))),
        (0u64..1_900, 1u64..100, 1u64..4, any::<bool>(), 0u64..50).prop_map(
            |(start, len, stride, write, seed)| TraceOp::Touch {
                range: PageRange::with_len(start, len.min(2_000 - start)),
                stride,
                write,
                per_page_compute: SimDuration::from_nanos(500),
                token_seed: seed,
            }
        ),
        proptest::collection::vec(0u64..2_000, 0..40).prop_map(|pages| TraceOp::TouchList {
            pages,
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        }),
        (0u64..1_900, 1u64..100).prop_map(|(s, l)| TraceOp::Free {
            range: PageRange::with_len(s, l.min(2_000 - s))
        }),
    ];
    proptest::collection::vec(op, 0..20).prop_map(|ops| Trace { ops })
}

proptest! {
    /// The interpreter performs exactly `access_count()` accesses, in the
    /// order the trace specifies, and always terminates with `Done`.
    #[test]
    fn vcpu_access_count_matches_trace(trace in arb_trace()) {
        let expected = trace.access_count();
        let mut vcpu = Vcpu::new(trace);
        let mut accesses = 0u64;
        let mut steps = 0u64;
        loop {
            match vcpu.next_step() {
                Step::Done => break,
                Step::Access { .. } => accesses += 1,
                Step::Compute(_) | Step::Free { .. } => {}
            }
            steps += 1;
            prop_assert!(steps < 2_000_000, "interpreter diverged");
        }
        prop_assert_eq!(accesses, expected);
        prop_assert_eq!(vcpu.accesses(), expected);
        prop_assert!(vcpu.is_done());
        // Done is sticky.
        prop_assert_eq!(vcpu.next_step(), Step::Done);
    }

    /// Replaying a trace's writes against guest memory is equivalent to
    /// directly applying the trace token function.
    #[test]
    fn vcpu_writes_equal_token_function(trace in arb_trace()) {
        let mut via_vcpu = GuestMemory::new(2_000);
        let mut vcpu = Vcpu::new(trace.clone());
        loop {
            match vcpu.next_step() {
                Step::Done => break,
                Step::Access { page, write, token } => {
                    if write {
                        via_vcpu.write(page, token);
                    }
                }
                Step::Free { range } => via_vcpu.zero_range(range),
                Step::Compute(_) => {}
            }
        }
        // Direct application.
        let mut direct = GuestMemory::new(2_000);
        for op in &trace.ops {
            match op {
                TraceOp::Touch { range, stride, write: true, token_seed, .. } => {
                    let mut p = range.start;
                    while p < range.end {
                        direct.write(p, Trace::token_for(*token_seed, p));
                        p += stride;
                    }
                }
                TraceOp::Free { range } => direct.zero_range(*range),
                _ => {}
            }
        }
        prop_assert_eq!(via_vcpu.checksum(), direct.checksum());
    }

    /// Guest memory write/zero/read round trips for arbitrary operations.
    #[test]
    fn guest_memory_ops(ops in proptest::collection::vec((0u64..500, any::<u64>()), 0..200)) {
        let mut mem = GuestMemory::new(500);
        let mut model = std::collections::BTreeMap::new();
        for (page, token) in ops {
            mem.write(page, token);
            if token == 0 {
                model.remove(&page);
            } else {
                model.insert(page, token);
            }
        }
        for p in 0..500 {
            prop_assert_eq!(mem.read(p), model.get(&p).copied().unwrap_or(0));
        }
        prop_assert_eq!(mem.nonzero_count(), model.len() as u64);
        // Region scan covers exactly the non-zero pages.
        let from_regions: u64 = mem.nonzero_regions().iter().map(|r| r.len()).sum();
        prop_assert_eq!(from_regions, model.len() as u64);
    }
}
