//! Sparse contents of guest physical memory.
//!
//! A page is either *zero* or carries a 64-bit content token standing in
//! for its 4 KiB of data. Tokens are enough to verify restore correctness
//! (every strategy must reproduce the exact token map) and to drive the
//! zero/non-zero region scan FaaSnap runs after the record phase:
//!
//! §4.5: "When an invocation is finished, FaaSnap scans the guest memory
//! file, merging consecutive zero pages into zero regions and non-zero
//! pages into non-zero regions."

use std::collections::BTreeMap;

use sim_mm::addr::{PageNum, PageRange};

/// Sparse token map of guest physical memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuestMemory {
    total_pages: u64,
    /// Non-zero pages only; absence means the page is zero. Ordered, so
    /// every scan below iterates in address order by construction.
    contents: BTreeMap<PageNum, u64>,
}

impl GuestMemory {
    /// Creates all-zero guest memory of `total_pages` pages.
    pub fn new(total_pages: u64) -> Self {
        GuestMemory {
            total_pages,
            contents: BTreeMap::new(),
        }
    }

    /// Total guest physical pages.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Reads a page's content token (0 for zero pages).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn read(&self, page: PageNum) -> u64 {
        assert!(page < self.total_pages, "page {page} out of range");
        self.contents.get(&page).copied().unwrap_or(0)
    }

    /// Writes a content token; a zero token makes the page a zero page.
    pub fn write(&mut self, page: PageNum, token: u64) {
        assert!(page < self.total_pages, "page {page} out of range");
        if token == 0 {
            self.contents.remove(&page);
        } else {
            self.contents.insert(page, token);
        }
    }

    /// Zeroes a page (page sanitization of a freed page).
    pub fn zero(&mut self, page: PageNum) {
        self.contents.remove(&page);
    }

    /// Zeroes every page in `range`.
    pub fn zero_range(&mut self, range: PageRange) {
        for p in range.iter() {
            self.contents.remove(&p);
        }
    }

    /// True if the page holds non-zero data.
    pub fn is_nonzero(&self, page: PageNum) -> bool {
        self.contents.contains_key(&page)
    }

    /// Number of non-zero pages.
    pub fn nonzero_count(&self) -> u64 {
        self.contents.len() as u64
    }

    /// Non-zero page numbers in ascending order (the map is ordered).
    pub fn nonzero_pages(&self) -> Vec<PageNum> {
        self.contents.keys().copied().collect()
    }

    /// The sparse page → token map itself (non-zero pages only), for
    /// consumers that chunk or hash contents without copying.
    pub fn tokens(&self) -> &BTreeMap<PageNum, u64> {
        &self.contents
    }

    /// The zero/non-zero scan: maximal runs of consecutive non-zero pages,
    /// in address order. The complement (within `[0, total_pages)`) is the
    /// set of zero regions.
    pub fn nonzero_regions(&self) -> Vec<PageRange> {
        sim_mm::addr::runs_from_pages(self.nonzero_pages())
    }

    /// Zero regions: the complement of [`Self::nonzero_regions`].
    pub fn zero_regions(&self) -> Vec<PageRange> {
        let mut out = Vec::new();
        let mut cursor = 0;
        for r in self.nonzero_regions() {
            if r.start > cursor {
                out.push(PageRange::new(cursor, r.start));
            }
            cursor = r.end;
        }
        if cursor < self.total_pages {
            out.push(PageRange::new(cursor, self.total_pages));
        }
        out
    }

    /// A stable checksum over all contents, for fast equality assertions
    /// in correctness tests.
    pub fn checksum(&self) -> u64 {
        let mut acc: u64 = 0xcbf29ce484222325;
        for (&p, &token) in &self.contents {
            acc ^= p.wrapping_mul(0x100000001b3);
            acc = acc.rotate_left(17) ^ token;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let m = GuestMemory::new(100);
        assert_eq!(m.read(0), 0);
        assert_eq!(m.nonzero_count(), 0);
        assert_eq!(m.zero_regions(), vec![PageRange::new(0, 100)]);
        assert!(m.nonzero_regions().is_empty());
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = GuestMemory::new(100);
        m.write(5, 0xabcd);
        assert_eq!(m.read(5), 0xabcd);
        assert!(m.is_nonzero(5));
        m.write(5, 0);
        assert_eq!(m.read(5), 0);
        assert!(!m.is_nonzero(5));
    }

    #[test]
    fn zero_and_zero_range() {
        let mut m = GuestMemory::new(100);
        for p in 10..20 {
            m.write(p, p + 1);
        }
        m.zero(10);
        m.zero_range(PageRange::new(15, 18));
        assert_eq!(m.nonzero_pages(), vec![11, 12, 13, 14, 18, 19]);
    }

    #[test]
    fn region_scan() {
        let mut m = GuestMemory::new(30);
        for p in [2u64, 3, 4, 10, 11, 29] {
            m.write(p, 7);
        }
        assert_eq!(
            m.nonzero_regions(),
            vec![
                PageRange::new(2, 5),
                PageRange::new(10, 12),
                PageRange::new(29, 30)
            ]
        );
        assert_eq!(
            m.zero_regions(),
            vec![
                PageRange::new(0, 2),
                PageRange::new(5, 10),
                PageRange::new(12, 29)
            ]
        );
    }

    #[test]
    fn regions_partition_address_space() {
        let mut m = GuestMemory::new(1000);
        for p in (0..1000).step_by(7) {
            m.write(p, 1);
        }
        let total: u64 = m
            .nonzero_regions()
            .iter()
            .chain(m.zero_regions().iter())
            .map(|r| r.len())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn checksum_detects_differences() {
        let mut a = GuestMemory::new(100);
        let mut b = GuestMemory::new(100);
        a.write(5, 1);
        b.write(5, 1);
        assert_eq!(a.checksum(), b.checksum());
        b.write(6, 1);
        assert_ne!(a.checksum(), b.checksum());
        b.write(6, 0);
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        GuestMemory::new(10).read(10);
    }
}
