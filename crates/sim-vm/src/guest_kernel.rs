//! Guest-kernel semantics visible to the host.
//!
//! Two behaviors matter to FaaSnap:
//!
//! 1. **Anonymous page allocation.** A guest write to a fresh anonymous
//!    page traps to the guest's copy-on-write handler, which allocates a
//!    guest physical page and copies the zero page into it (§4.5). From
//!    the host's view this is simply a *write* to a guest physical page
//!    that was zero — which, under vanilla whole-file mapping, still
//!    triggers a useless disk read (the semantic gap).
//! 2. **Page sanitization.** The modified guest kernel's
//!    `free_pages_prepare` zeroes freed pages so FaaSnap can exclude them
//!    from the non-zero set. "Sanitizing pages imposes overhead for the
//!    guest kernel (around 10% of execution time). Since sanitizing freed
//!    pages is only necessary during the record phase, we disable page
//!    sanitizing in the test phase" (§5) — the daemon toggles it through a
//!    procfs interface.

use sim_core::time::SimDuration;
use sim_mm::addr::PageRange;

use crate::overlay::GuestMem;

/// Guest-kernel model for one VM.
#[derive(Clone, Debug)]
pub struct GuestKernel {
    sanitize_freed: bool,
    /// Guest-side cost of zeroing one freed 4 KiB page.
    sanitize_cost_per_page: SimDuration,
    pages_freed: u64,
    pages_sanitized: u64,
}

impl Default for GuestKernel {
    fn default() -> Self {
        // ~4 KiB memset at ~10 GB/s plus bookkeeping.
        GuestKernel {
            sanitize_freed: false,
            sanitize_cost_per_page: SimDuration::from_nanos(450),
            pages_freed: 0,
            pages_sanitized: 0,
        }
    }
}

impl GuestKernel {
    /// Creates a kernel with sanitization disabled (test phase default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables freed-page sanitization (the daemon's procfs
    /// toggle; enabled during the record phase only).
    pub fn set_sanitize_freed(&mut self, on: bool) {
        self.sanitize_freed = on;
    }

    /// True if freed pages are being sanitized.
    pub fn sanitize_freed(&self) -> bool {
        self.sanitize_freed
    }

    /// Handles a guest `free` of `range`: returns the guest-side cost.
    /// With sanitization on, the pages become zero pages in guest memory.
    /// With it off, stale contents remain (and would be captured by a
    /// snapshot, inflating the non-zero set — exactly the behavior FaaSnap
    /// fixes).
    pub fn free_pages<M: GuestMem>(&mut self, mem: &mut M, range: PageRange) -> SimDuration {
        self.pages_freed += range.len();
        if self.sanitize_freed {
            mem.zero_range(range);
            self.pages_sanitized += range.len();
            self.sanitize_cost_per_page * range.len()
        } else {
            SimDuration::ZERO
        }
    }

    /// Total pages freed by the guest so far.
    pub fn pages_freed(&self) -> u64 {
        self.pages_freed
    }

    /// Total pages sanitized so far.
    pub fn pages_sanitized(&self) -> u64 {
        self.pages_sanitized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest_memory::GuestMemory;

    #[test]
    fn sanitize_zeroes_and_costs() {
        let mut k = GuestKernel::new();
        k.set_sanitize_freed(true);
        let mut m = GuestMemory::new(100);
        for p in 10..20 {
            m.write(p, 1);
        }
        let cost = k.free_pages(&mut m, PageRange::new(10, 20));
        assert!(!cost.is_zero());
        assert_eq!(m.nonzero_count(), 0);
        assert_eq!(k.pages_freed(), 10);
        assert_eq!(k.pages_sanitized(), 10);
    }

    #[test]
    fn no_sanitize_leaves_stale_contents() {
        let mut k = GuestKernel::new();
        let mut m = GuestMemory::new(100);
        for p in 10..20 {
            m.write(p, 1);
        }
        let cost = k.free_pages(&mut m, PageRange::new(10, 20));
        assert!(cost.is_zero());
        assert_eq!(m.nonzero_count(), 10, "stale data remains");
        assert_eq!(k.pages_freed(), 10);
        assert_eq!(k.pages_sanitized(), 0);
    }

    #[test]
    fn sanitize_cost_scales_with_pages() {
        let mut k = GuestKernel::new();
        k.set_sanitize_freed(true);
        let mut m = GuestMemory::new(10_000);
        let small = k.free_pages(&mut m, PageRange::new(0, 10));
        let large = k.free_pages(&mut m, PageRange::new(100, 1100));
        assert_eq!(large.as_nanos(), small.as_nanos() * 100);
    }
}
