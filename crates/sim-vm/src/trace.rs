//! The memory-access trace language.
//!
//! Workload functions (crate `faas-workloads`) compile to a [`Trace`]: a
//! sequence of [`TraceOp`]s the simulated vCPU interprets. Traces capture
//! everything the host can observe about a function: which guest pages it
//! touches, in what order, whether it writes (allocations become non-zero
//! pages), how much compute separates accesses (which determines whether
//! the FaaSnap loader can stay ahead of the guest), and which pages the
//! guest frees (which the modified guest kernel sanitizes during the
//! record phase).

use sim_core::time::SimDuration;
use sim_mm::addr::PageRange;

/// One operation in a function's execution trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Pure guest computation for the given duration.
    Compute(SimDuration),
    /// Touch every `stride`-th page of `range`, in address order,
    /// performing `per_page_compute` of work between consecutive touches.
    /// `write` pages are written with a token derived from `token_seed`;
    /// reads leave contents unchanged.
    Touch {
        /// Pages accessed.
        range: PageRange,
        /// Access stride in pages (1 = every page).
        stride: u64,
        /// True for writes (contents change), false for reads.
        write: bool,
        /// Guest work between consecutive page accesses.
        per_page_compute: SimDuration,
        /// Seed for written content tokens (ignored for reads). A zero
        /// seed writes zero pages (e.g. guest-side memset-to-zero).
        token_seed: u64,
    },
    /// Touch an explicit list of pages in the given order (for scattered
    /// access patterns that are not strided).
    TouchList {
        /// Pages in access order.
        pages: Vec<u64>,
        /// True for writes.
        write: bool,
        /// Guest work between consecutive page accesses.
        per_page_compute: SimDuration,
        /// Seed for written content tokens.
        token_seed: u64,
    },
    /// The guest frees `range`; with sanitization enabled the guest kernel
    /// zeroes the pages (making them zero pages in the next snapshot).
    Free {
        /// Freed pages.
        range: PageRange,
    },
}

/// A function execution trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Operations, executed in order by one vCPU.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op (builder style).
    pub fn push(&mut self, op: TraceOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Total number of page accesses the trace performs.
    pub fn access_count(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Touch { range, stride, .. } => range.len().div_ceil(*stride),
                TraceOp::TouchList { pages, .. } => pages.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of *distinct* pages the trace touches.
    pub fn distinct_pages(&self) -> u64 {
        // faasnap-lint: allow(no-unordered-iteration, only the count escapes; order is never observed)
        let mut pages = std::collections::HashSet::new();
        for op in &self.ops {
            match op {
                TraceOp::Touch { range, stride, .. } => {
                    let mut p = range.start;
                    while p < range.end {
                        pages.insert(p);
                        p += stride;
                    }
                }
                TraceOp::TouchList { pages: list, .. } => pages.extend(list.iter().copied()),
                _ => {}
            }
        }
        pages.len() as u64
    }

    /// Sum of all explicit compute durations (excludes fault handling).
    pub fn compute_total(&self) -> SimDuration {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Compute(d) => *d,
                TraceOp::Touch {
                    range,
                    stride,
                    per_page_compute,
                    ..
                } => *per_page_compute * range.len().div_ceil(*stride),
                TraceOp::TouchList {
                    pages,
                    per_page_compute,
                    ..
                } => *per_page_compute * pages.len() as u64,
                TraceOp::Free { .. } => SimDuration::ZERO,
            })
            .sum()
    }

    /// The content token written to `page` by a touch with `token_seed`.
    /// Deterministic and non-zero for non-zero seeds.
    pub fn token_for(token_seed: u64, page: u64) -> u64 {
        if token_seed == 0 {
            return 0;
        }
        let mut x = token_seed ^ page.wrapping_mul(0x9E3779B97F4A7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        x | 1 // never zero
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn access_counting() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 10),
            stride: 1,
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        });
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 10),
            stride: 3,
            write: true,
            per_page_compute: SimDuration::ZERO,
            token_seed: 1,
        });
        t.push(TraceOp::TouchList {
            pages: vec![100, 5, 7],
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        });
        assert_eq!(t.access_count(), 10 + 4 + 3);
        // Distinct: 0..10 (10) + 100 = 11 (5,7 already counted; stride hits 0,3,6,9).
        assert_eq!(t.distinct_pages(), 11);
    }

    #[test]
    fn compute_totals() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(us(100)));
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 4),
            stride: 1,
            write: false,
            per_page_compute: us(2),
            token_seed: 0,
        });
        assert_eq!(t.compute_total(), us(108));
    }

    #[test]
    fn tokens_deterministic_and_nonzero() {
        assert_eq!(Trace::token_for(5, 10), Trace::token_for(5, 10));
        assert_ne!(Trace::token_for(5, 10), Trace::token_for(5, 11));
        assert_ne!(Trace::token_for(5, 10), Trace::token_for(6, 10));
        assert_eq!(Trace::token_for(0, 10), 0, "zero seed writes zeros");
        for p in 0..1000 {
            assert_ne!(Trace::token_for(1, p), 0);
        }
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert_eq!(t.access_count(), 0);
        assert_eq!(t.compute_total(), SimDuration::ZERO);
    }
}
