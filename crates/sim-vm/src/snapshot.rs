//! Snapshot creation and restore invariants.
//!
//! A Firecracker snapshot consists of "a snapshot file that stores the
//! state of the VM like virtual devices and CPU registers as well as a
//! memory file, which is the copy of the entire guest physical memory"
//! (§2.4). In the simulation the memory file's logical contents are the
//! frozen [`GuestMemory`] token map; the storage layer tracks the file's
//! identity and size so reads are charged correctly.
//!
//! Restore correctness invariant (asserted by integration tests): under
//! *every* restore strategy, a guest read of page `p` observes exactly
//! `snapshot.memory().read(p)` until the guest itself overwrites it. The
//! strategies differ only in *when and how* bytes move, never in what the
//! guest sees.

use sim_mm::addr::PageRange;
use sim_storage::device::{IoKind, IoRequest};
use sim_storage::file::{DeviceId, FileId, FileKind, SimFs};

use crate::guest_memory::GuestMemory;

/// A taken snapshot: files plus frozen memory contents.
#[derive(Clone, Debug)]
pub struct Snapshot {
    name: String,
    mem_file: FileId,
    state_file: FileId,
    memory: GuestMemory,
}

impl Snapshot {
    /// Creates a snapshot of `memory`, registering its memory and state
    /// files on `device`.
    pub fn create(
        name: impl Into<String>,
        memory: GuestMemory,
        fs: &mut SimFs,
        device: DeviceId,
    ) -> Snapshot {
        Self::create_wiped(name, memory, fs, device, &[])
    }

    /// Creates a snapshot, first zeroing the `wipe` ranges — the
    /// `MADV_WIPEONSUSPEND` mitigation of §7.4: "using a new madvise flag
    /// to wipe memory locations with high-value secrets when taking a
    /// snapshot". Guests mark PRNG state and key material this way so
    /// clones restored from the same snapshot never share secrets.
    pub fn create_wiped(
        name: impl Into<String>,
        mut memory: GuestMemory,
        fs: &mut SimFs,
        device: DeviceId,
        wipe: &[PageRange],
    ) -> Snapshot {
        for range in wipe {
            memory.zero_range(*range);
        }
        let name = name.into();
        let mem_file = fs.create(
            format!("{name}.mem"),
            FileKind::SnapshotMemory,
            memory.total_pages(),
            device,
        );
        // VM state (registers, device state) is small; model as 64 KiB.
        let state_file = fs.create(
            format!("{name}.vmstate"),
            FileKind::SnapshotState,
            16,
            device,
        );
        Snapshot {
            name,
            mem_file,
            state_file,
            memory,
        }
    }

    /// Snapshot name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The guest memory file.
    pub fn mem_file(&self) -> FileId {
        self.mem_file
    }

    /// The VM state file.
    pub fn state_file(&self) -> FileId {
        self.state_file
    }

    /// Frozen guest memory contents.
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Guest memory size in pages.
    pub fn total_pages(&self) -> u64 {
        self.memory.total_pages()
    }

    /// Non-zero regions of the memory file (FaaSnap's post-invocation
    /// scan, §4.5).
    pub fn nonzero_regions(&self) -> Vec<PageRange> {
        self.memory.nonzero_regions()
    }

    /// A fresh guest-memory instance a restored VM starts from (logical
    /// copy of the frozen contents).
    pub fn restored_memory(&self) -> GuestMemory {
        self.memory.clone()
    }

    /// The I/O requests that write this snapshot out (record phase).
    /// Sparse: only non-zero regions are written; the memory file is a
    /// sparse file ("snapshot files can be saved as sparse files", §7.2).
    pub fn write_out_requests(&self) -> Vec<IoRequest> {
        self.memory
            .nonzero_regions()
            .into_iter()
            .map(|r| IoRequest {
                file: self.mem_file,
                page: r.start,
                pages: r.len(),
                kind: IoKind::SnapshotWrite,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> (Snapshot, SimFs) {
        let mut fs = SimFs::new();
        let mut m = GuestMemory::new(1000);
        for p in 100..200 {
            m.write(p, p * 3 + 1);
        }
        m.write(500, 7);
        let s = Snapshot::create("test", m, &mut fs, DeviceId(0));
        (s, fs)
    }

    #[test]
    fn files_registered() {
        let (s, fs) = snap();
        assert_eq!(fs.meta(s.mem_file()).kind, FileKind::SnapshotMemory);
        assert_eq!(fs.meta(s.mem_file()).len_pages, 1000);
        assert_eq!(fs.meta(s.state_file()).kind, FileKind::SnapshotState);
        assert_eq!(fs.meta(s.mem_file()).name, "test.mem");
    }

    #[test]
    fn restored_memory_is_exact_copy() {
        let (s, _) = snap();
        let restored = s.restored_memory();
        assert_eq!(restored.checksum(), s.memory().checksum());
        assert_eq!(restored.read(150), 451);
        assert_eq!(restored.read(500), 7);
        assert_eq!(restored.read(0), 0);
    }

    #[test]
    fn restored_copies_are_independent() {
        let (s, _) = snap();
        let mut a = s.restored_memory();
        a.write(0, 99);
        assert_eq!(s.memory().read(0), 0, "snapshot is immutable");
        let b = s.restored_memory();
        assert_eq!(b.read(0), 0);
    }

    #[test]
    fn wipe_on_suspend_zeroes_secret_ranges() {
        // §7.4: PRNG state wiped at snapshot time; restored clones must
        // not observe the secret bytes.
        let mut fs = SimFs::new();
        let mut m = GuestMemory::new(1000);
        for p in 100..200 {
            m.write(p, p * 3 + 1);
        }
        m.write(500, 0xDEAD); // the "secret" page
        let s = Snapshot::create_wiped(
            "wiped",
            m,
            &mut fs,
            DeviceId(0),
            &[PageRange::new(500, 501)],
        );
        assert_eq!(s.memory().read(500), 0, "secret wiped");
        assert_eq!(s.memory().read(150), 451, "other contents intact");
        let clone_a = s.restored_memory();
        let clone_b = s.restored_memory();
        assert_eq!(clone_a.read(500), 0);
        assert_eq!(clone_b.read(500), 0);
    }

    #[test]
    fn sparse_write_out() {
        let (s, _) = snap();
        let reqs = s.write_out_requests();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].page, 100);
        assert_eq!(reqs[0].pages, 100);
        assert_eq!(reqs[1].page, 500);
        assert_eq!(reqs[1].pages, 1);
        assert!(reqs.iter().all(|r| r.kind == IoKind::SnapshotWrite));
    }
}
