//! VM setup and boot timing model.
//!
//! Figure 1's gray bars are "VM setup, including starting the VMM,
//! connecting virtual devices, restoring VM CPU state, etc." — several
//! tens of milliseconds, identical across snapshot systems except for
//! extra per-strategy work (REAP's blocking working-set fetch; FaaSnap's
//! additional `mmap` calls). Cold boots additionally pay guest kernel boot
//! ("Firecracker can boot an unmodified Linux kernel in 125 ms", §2.2)
//! and runtime/library initialization (seconds, §2.1).

use sim_core::time::SimDuration;

/// Fixed timing components of VM lifecycle operations.
#[derive(Clone, Debug)]
pub struct BootModel {
    /// Starting the VMM process and connecting virtual devices.
    pub vmm_start: SimDuration,
    /// Restoring VM state (vCPU registers, device state) from the state file.
    pub restore_vm_state: SimDuration,
    /// Creating the network namespace and virtual devices.
    pub network_setup: SimDuration,
    /// Guest kernel boot (cold start only).
    pub guest_kernel_boot: SimDuration,
    /// Language runtime + library initialization (cold start only); the
    /// paper reports seconds to minutes depending on the function (§2.1).
    pub runtime_init: SimDuration,
}

impl Default for BootModel {
    fn default() -> Self {
        BootModel {
            vmm_start: SimDuration::from_millis(38),
            restore_vm_state: SimDuration::from_millis(4),
            network_setup: SimDuration::from_millis(9),
            guest_kernel_boot: SimDuration::from_millis(125),
            runtime_init: SimDuration::from_millis(1800),
        }
    }
}

impl BootModel {
    /// Base setup time common to every snapshot restore (before strategy-
    /// specific mapping/fetch work).
    pub fn snapshot_setup_base(&self) -> SimDuration {
        self.vmm_start + self.network_setup + self.restore_vm_state
    }

    /// Full cold-start time (boot a VM from scratch and initialize the
    /// runtime) — the baseline snapshots eliminate.
    pub fn cold_start(&self) -> SimDuration {
        self.vmm_start + self.network_setup + self.guest_kernel_boot + self.runtime_init
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_setup_in_tens_of_ms() {
        let b = BootModel::default();
        let ms = b.snapshot_setup_base().as_millis_f64();
        assert!((30.0..80.0).contains(&ms), "setup {ms}ms");
    }

    #[test]
    fn cold_start_dominated_by_init() {
        let b = BootModel::default();
        assert!(b.cold_start() > SimDuration::from_secs(1));
        assert!(b.cold_start() > b.snapshot_setup_base() * 10);
    }
}
