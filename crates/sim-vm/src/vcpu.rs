//! The vCPU: a passive, resumable interpreter of a [`Trace`].
//!
//! The DES runtime drives the vCPU step by step: [`Vcpu::next_step`]
//! yields the next observable action (compute for some duration, access a
//! page, free pages, or done). Page accesses that hit already-mapped pages
//! cost nothing at the host level, so the runtime consumes them inline;
//! faulting accesses suspend the vCPU until the fault plan completes.
//!
//! This structure is what lets the reproduction model FaaSnap's
//! *concurrent paging* faithfully: guest progress and loader prefetch
//! interleave on the simulated clock, and whether a given access is a
//! major fault, a minor fault, or no fault depends on the race between
//! the two (§4.2).

use sim_core::time::SimDuration;
use sim_mm::addr::{PageNum, PageRange};

use crate::trace::{Trace, TraceOp};

/// The next observable vCPU action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Run for this duration (through the CPU model).
    Compute(SimDuration),
    /// Access `page`; if `write`, install `token` into guest memory once
    /// the access completes.
    Access {
        /// Guest physical page.
        page: PageNum,
        /// True for writes.
        write: bool,
        /// Content token to write (0 preserves/zeroes per trace semantics;
        /// ignored for reads).
        token: u64,
    },
    /// The guest frees these pages (kernel-side effect, no host fault).
    Free {
        /// Freed pages.
        range: PageRange,
    },
    /// Trace exhausted; the function's reply has been sent.
    Done,
}

/// Interpreter state over one trace.
#[derive(Clone, Debug)]
pub struct Vcpu {
    ops: Vec<TraceOp>,
    /// Index of the current op.
    op_idx: usize,
    /// Position within the current op (pages consumed for touches).
    intra: u64,
    /// True when the next yield for the current touch position should be
    /// the per-page compute (compute is charged *before* each access).
    pending_access: Option<(PageNum, bool, u64)>,
    accesses: u64,
}

impl Vcpu {
    /// Creates a vCPU positioned at the start of `trace`.
    pub fn new(trace: Trace) -> Self {
        Vcpu {
            ops: trace.ops,
            op_idx: 0,
            intra: 0,
            pending_access: None,
            accesses: 0,
        }
    }

    /// Total page accesses performed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// True once the trace is exhausted.
    pub fn is_done(&self) -> bool {
        self.op_idx >= self.ops.len() && self.pending_access.is_none()
    }

    /// Yields the next step. The caller must fully handle each step before
    /// calling again (the vCPU assumes the access/compute completed).
    pub fn next_step(&mut self) -> Step {
        if let Some((page, write, token)) = self.pending_access.take() {
            self.accesses += 1;
            return Step::Access { page, write, token };
        }

        loop {
            let Some(op) = self.ops.get(self.op_idx) else {
                return Step::Done;
            };
            match op {
                TraceOp::Compute(d) => {
                    let d = *d;
                    self.op_idx += 1;
                    if d.is_zero() {
                        continue;
                    }
                    return Step::Compute(d);
                }
                TraceOp::Free { range } => {
                    let range = *range;
                    self.op_idx += 1;
                    return Step::Free { range };
                }
                TraceOp::Touch {
                    range,
                    stride,
                    write,
                    per_page_compute,
                    token_seed,
                } => {
                    let page = range.start + self.intra * stride;
                    if page >= range.end {
                        self.op_idx += 1;
                        self.intra = 0;
                        continue;
                    }
                    let token = if *write {
                        Trace::token_for(*token_seed, page)
                    } else {
                        0
                    };
                    self.intra += 1;
                    if per_page_compute.is_zero() {
                        self.accesses += 1;
                        return Step::Access {
                            page,
                            write: *write,
                            token,
                        };
                    }
                    self.pending_access = Some((page, *write, token));
                    return Step::Compute(*per_page_compute);
                }
                TraceOp::TouchList {
                    pages,
                    write,
                    per_page_compute,
                    token_seed,
                } => {
                    let Some(&page) = pages.get(self.intra as usize) else {
                        self.op_idx += 1;
                        self.intra = 0;
                        continue;
                    };
                    let token = if *write {
                        Trace::token_for(*token_seed, page)
                    } else {
                        0
                    };
                    self.intra += 1;
                    if per_page_compute.is_zero() {
                        self.accesses += 1;
                        return Step::Access {
                            page,
                            write: *write,
                            token,
                        };
                    }
                    self.pending_access = Some((page, *write, token));
                    return Step::Compute(*per_page_compute);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn drain(mut v: Vcpu) -> Vec<Step> {
        let mut steps = Vec::new();
        loop {
            let s = v.next_step();
            let done = s == Step::Done;
            steps.push(s);
            if done {
                break;
            }
        }
        steps
    }

    #[test]
    fn empty_trace_is_done() {
        let mut v = Vcpu::new(Trace::new());
        assert_eq!(v.next_step(), Step::Done);
        assert!(v.is_done());
    }

    #[test]
    fn compute_then_done() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(us(5)));
        let steps = drain(Vcpu::new(t));
        assert_eq!(steps, vec![Step::Compute(us(5)), Step::Done]);
    }

    #[test]
    fn zero_compute_skipped() {
        let mut t = Trace::new();
        t.push(TraceOp::Compute(SimDuration::ZERO));
        t.push(TraceOp::Compute(us(1)));
        let steps = drain(Vcpu::new(t));
        assert_eq!(steps, vec![Step::Compute(us(1)), Step::Done]);
    }

    #[test]
    fn touch_yields_accesses_in_order() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(10, 13),
            stride: 1,
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        });
        let steps = drain(Vcpu::new(t));
        let pages: Vec<u64> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Access { page, .. } => Some(*page),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![10, 11, 12]);
    }

    #[test]
    fn strided_touch() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 10),
            stride: 4,
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        });
        let steps = drain(Vcpu::new(t));
        let pages: Vec<u64> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Access { page, .. } => Some(*page),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![0, 4, 8]);
    }

    #[test]
    fn per_page_compute_precedes_each_access() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 2),
            stride: 1,
            write: true,
            per_page_compute: us(3),
            token_seed: 9,
        });
        let steps = drain(Vcpu::new(t));
        assert_eq!(steps.len(), 5); // C A C A Done
        assert_eq!(steps[0], Step::Compute(us(3)));
        assert!(matches!(
            steps[1],
            Step::Access {
                page: 0,
                write: true,
                ..
            }
        ));
        assert_eq!(steps[2], Step::Compute(us(3)));
        assert!(matches!(steps[3], Step::Access { page: 1, .. }));
    }

    #[test]
    fn write_tokens_match_trace_function() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(7, 8),
            stride: 1,
            write: true,
            per_page_compute: SimDuration::ZERO,
            token_seed: 42,
        });
        let steps = drain(Vcpu::new(t));
        match &steps[0] {
            Step::Access {
                page: 7,
                write: true,
                token,
            } => {
                assert_eq!(*token, Trace::token_for(42, 7));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn touch_list_and_free() {
        let mut t = Trace::new();
        t.push(TraceOp::TouchList {
            pages: vec![5, 3, 9],
            write: false,
            per_page_compute: SimDuration::ZERO,
            token_seed: 0,
        });
        t.push(TraceOp::Free {
            range: PageRange::new(3, 6),
        });
        let steps = drain(Vcpu::new(t));
        let pages: Vec<u64> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Access { page, .. } => Some(*page),
                _ => None,
            })
            .collect();
        assert_eq!(pages, vec![5, 3, 9]);
        assert!(steps.contains(&Step::Free {
            range: PageRange::new(3, 6)
        }));
    }

    #[test]
    fn access_counter() {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(0, 5),
            stride: 1,
            write: false,
            per_page_compute: us(1),
            token_seed: 0,
        });
        let mut v = Vcpu::new(t);
        while v.next_step() != Step::Done {}
        assert_eq!(v.accesses(), 5);
    }
}
