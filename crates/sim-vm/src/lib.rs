//! Simulated microVM substrate (a Firecracker-like guest).
//!
//! The FaaSnap paper treats the guest as a source of page accesses and the
//! snapshot as a frozen image of guest physical memory. This crate models
//! exactly that:
//!
//! - [`guest_memory`] — sparse byte-equivalent contents of guest physical
//!   memory (zero pages vs. non-zero pages with content tokens), plus the
//!   zero/non-zero region scan FaaSnap performs after the record phase
//!   (§4.5).
//! - [`guest_kernel`] — guest-side semantics that matter to the host:
//!   copy-on-write zero-fill of anonymous pages and the modified kernel's
//!   *page sanitization* of freed pages (§4.5: `free_pages_prepare` zeroes
//!   freed pages during the record phase, at ~10 % guest overhead).
//! - [`overlay`] — copy-on-write guest-memory overlays: N fork siblings
//!   share one frozen base image and keep private dirty pages, the memory
//!   substrate of snapshot branching.
//! - [`trace`] — the memory-access trace language functions are expressed
//!   in (compute, strided range touches, frees).
//! - [`vcpu`] — a passive interpreter that yields one step at a time so
//!   the DES runtime can interleave guest execution with the loader.
//! - [`snapshot`] — snapshot creation (memory file + state file) and the
//!   invariants restores must preserve.
//! - [`boot`] — timing model for VMM start and snapshot-load setup.

#![forbid(unsafe_code)]
pub mod boot;
pub mod guest_kernel;
pub mod guest_memory;
pub mod overlay;
pub mod snapshot;
pub mod trace;
pub mod vcpu;

pub use guest_kernel::GuestKernel;
pub use guest_memory::GuestMemory;
pub use overlay::{CowMemory, GuestMem, VmMemory};
pub use snapshot::Snapshot;
pub use trace::{Trace, TraceOp};
pub use vcpu::{Step, Vcpu};
