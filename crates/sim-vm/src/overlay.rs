//! Copy-on-write guest-memory overlays for snapshot branching.
//!
//! When N siblings are forked from one snapshot, they share the frozen
//! base image read-only and each accumulates *private* dirty pages in an
//! anonymous overlay — the MAP_PRIVATE semantics of mapping the snapshot
//! memory file. [`CowMemory`] models exactly that: reads fall through to
//! the shared base unless the sibling has written the page; writes always
//! land in the overlay and are invisible to every other sibling.
//!
//! [`VmMemory`] lets the runtime hold either a flat, exclusively-owned
//! [`GuestMemory`] (the ordinary restore path) or a COW overlay (a fork
//! sibling) behind one type, and [`GuestMem`] is the access surface the
//! guest kernel and vCPU need, implemented by all three.

use std::collections::BTreeMap;
use std::rc::Rc;

use sim_mm::addr::{PageNum, PageRange};

use crate::guest_memory::GuestMemory;

/// The guest-physical access surface: what the vCPU and guest kernel
/// need from memory, regardless of whether it is flat or overlaid.
pub trait GuestMem {
    /// Total guest physical pages.
    fn total_pages(&self) -> u64;
    /// Reads a page's content token (0 for zero pages).
    fn read(&self, page: PageNum) -> u64;
    /// Writes a content token; a zero token makes the page a zero page.
    fn write(&mut self, page: PageNum, token: u64);
    /// Zeroes every page in `range` (freed-page sanitization).
    fn zero_range(&mut self, range: PageRange);
}

impl GuestMem for GuestMemory {
    fn total_pages(&self) -> u64 {
        GuestMemory::total_pages(self)
    }
    fn read(&self, page: PageNum) -> u64 {
        GuestMemory::read(self, page)
    }
    fn write(&mut self, page: PageNum, token: u64) {
        GuestMemory::write(self, page, token)
    }
    fn zero_range(&mut self, range: PageRange) {
        GuestMemory::zero_range(self, range)
    }
}

/// Copy-on-write view over a shared base image.
///
/// The overlay maps dirtied pages to their private tokens; a stored 0 is
/// a tombstone (the sibling zeroed a page that is non-zero in the base).
/// Pages absent from the overlay read through to the base.
#[derive(Clone, Debug)]
pub struct CowMemory {
    base: Rc<GuestMemory>,
    overlay: BTreeMap<PageNum, u64>,
}

impl CowMemory {
    /// A fresh overlay over `base` with no private pages.
    pub fn new(base: Rc<GuestMemory>) -> Self {
        CowMemory {
            base,
            overlay: BTreeMap::new(),
        }
    }

    /// The shared base image (for fork trees and sharing assertions).
    pub fn base(&self) -> &Rc<GuestMemory> {
        &self.base
    }

    /// Number of private (copied-on-write) pages in this overlay.
    pub fn private_pages(&self) -> u64 {
        self.overlay.len() as u64
    }

    /// Branches a child overlay: shares this overlay's base and starts
    /// from a copy of the current private pages (fork-of-fork).
    pub fn fork(&self) -> CowMemory {
        self.clone()
    }

    /// Flattens the overlay onto a copy of the base, producing the
    /// sibling's logical memory image.
    pub fn materialize(&self) -> GuestMemory {
        let mut mem = (*self.base).clone();
        for (&p, &token) in &self.overlay {
            mem.write(p, token);
        }
        mem
    }

    /// Checksum of the materialized image (matches
    /// [`GuestMemory::checksum`] of an equal flat memory).
    pub fn checksum(&self) -> u64 {
        self.materialize().checksum()
    }
}

impl GuestMem for CowMemory {
    fn total_pages(&self) -> u64 {
        self.base.total_pages()
    }
    fn read(&self, page: PageNum) -> u64 {
        assert!(page < self.total_pages(), "page {page} out of range");
        self.overlay
            .get(&page)
            .copied()
            .unwrap_or_else(|| self.base.read(page))
    }
    fn write(&mut self, page: PageNum, token: u64) {
        assert!(page < self.total_pages(), "page {page} out of range");
        self.overlay.insert(page, token);
    }
    fn zero_range(&mut self, range: PageRange) {
        for p in range.iter() {
            if self.base.is_nonzero(p) {
                self.overlay.insert(p, 0);
            } else {
                // Base page is already zero: dropping any private copy
                // restores the shared zero page (the guest returned it).
                self.overlay.remove(&p);
            }
        }
    }
}

/// A VM's memory: flat and exclusively owned (ordinary restore) or a COW
/// overlay over a shared base (fork sibling).
#[derive(Clone, Debug)]
pub enum VmMemory {
    /// Exclusively owned flat image.
    Flat(GuestMemory),
    /// Copy-on-write overlay over a base shared with sibling VMs.
    Cow(CowMemory),
}

impl VmMemory {
    /// Private pages: everything for a flat image, overlay size for COW.
    pub fn private_pages(&self) -> u64 {
        match self {
            VmMemory::Flat(m) => m.nonzero_count(),
            VmMemory::Cow(c) => c.private_pages(),
        }
    }

    /// Flattens into an owned [`GuestMemory`] (identity for `Flat`).
    pub fn into_guest_memory(self) -> GuestMemory {
        match self {
            VmMemory::Flat(m) => m,
            VmMemory::Cow(c) => c.materialize(),
        }
    }
}

impl GuestMem for VmMemory {
    fn total_pages(&self) -> u64 {
        match self {
            VmMemory::Flat(m) => m.total_pages(),
            VmMemory::Cow(c) => c.total_pages(),
        }
    }
    fn read(&self, page: PageNum) -> u64 {
        match self {
            VmMemory::Flat(m) => m.read(page),
            VmMemory::Cow(c) => c.read(page),
        }
    }
    fn write(&mut self, page: PageNum, token: u64) {
        match self {
            VmMemory::Flat(m) => m.write(page, token),
            VmMemory::Cow(c) => c.write(page, token),
        }
    }
    fn zero_range(&mut self, range: PageRange) {
        match self {
            VmMemory::Flat(m) => m.zero_range(range),
            VmMemory::Cow(c) => c.zero_range(range),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Rc<GuestMemory> {
        let mut m = GuestMemory::new(64);
        for p in 10..20 {
            m.write(p, p * 100);
        }
        Rc::new(m)
    }

    #[test]
    fn reads_fall_through_to_base() {
        let c = CowMemory::new(base());
        assert_eq!(c.read(12), 1200);
        assert_eq!(c.read(0), 0);
        assert_eq!(c.private_pages(), 0);
    }

    #[test]
    fn writes_are_private_to_the_overlay() {
        let b = base();
        let mut s1 = CowMemory::new(b.clone());
        let mut s2 = CowMemory::new(b.clone());
        s1.write(12, 7);
        s2.write(12, 8);
        assert_eq!(s1.read(12), 7);
        assert_eq!(s2.read(12), 8);
        assert_eq!(b.read(12), 1200, "base untouched");
        assert_eq!(s1.private_pages(), 1);
    }

    #[test]
    fn zero_range_tombstones_base_pages_only() {
        let mut c = CowMemory::new(base());
        c.write(3, 5); // private page over a zero base page
        c.zero_range(PageRange::new(0, 16));
        assert_eq!(c.read(12), 0, "base non-zero page tombstoned");
        assert_eq!(c.read(3), 0, "private copy dropped");
        // Tombstones only where the base is non-zero: pages 10..16.
        assert_eq!(c.private_pages(), 6);
        assert_eq!(c.read(18), 1800, "outside the range untouched");
    }

    #[test]
    fn materialize_matches_flat_replay() {
        let b = base();
        let mut cow = CowMemory::new(b.clone());
        let mut flat = (*b).clone();
        for (p, t) in [(12, 7), (30, 9), (15, 0)] {
            cow.write(p, t);
            flat.write(p, t);
        }
        cow.zero_range(PageRange::new(18, 22));
        flat.zero_range(PageRange::new(18, 22));
        assert_eq!(cow.materialize(), flat);
        assert_eq!(cow.checksum(), flat.checksum());
    }

    #[test]
    fn fork_of_fork_shares_one_base() {
        let b = base();
        let mut parent = CowMemory::new(b.clone());
        parent.write(12, 7);
        let mut child = parent.fork();
        child.write(13, 8);
        assert_eq!(child.read(12), 7, "inherits parent's private page");
        assert_eq!(parent.read(13), 1300, "parent blind to child writes");
        assert!(Rc::ptr_eq(parent.base(), child.base()));
        assert_eq!(Rc::strong_count(&b), 3);
    }

    #[test]
    fn vm_memory_round_trips() {
        let flat = VmMemory::Flat((*base()).clone());
        let cow = VmMemory::Cow(CowMemory::new(base()));
        assert_eq!(
            flat.into_guest_memory().checksum(),
            cow.into_guest_memory().checksum()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cow_out_of_range_read_panics() {
        CowMemory::new(base()).read(64);
    }
}
