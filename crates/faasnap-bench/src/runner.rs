//! Shared experiment plumbing.

use faas_workloads::{Function, Input};
use faasnap::report::InvocationReport;
use faasnap::runtime::InvocationOutcome;
use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::MeasuredCell;
use faasnap_daemon::platform::Platform;
use faasnap_obs::{chrome_trace_json, Metrics, Tracer};
use sim_storage::profiles::DiskProfile;

/// Builds a platform with the given functions registered. When the
/// `FAASNAP_OBS_DIR` environment variable is set, an enabled tracer and
/// metrics registry are attached so drivers can dump their artifacts via
/// [`dump_observability`]; otherwise observability stays disabled
/// (zero cost).
pub fn platform_with(profile: DiskProfile, seed: u64, functions: &[Function]) -> Platform {
    let mut p = Platform::new(profile, seed);
    for f in functions {
        p.register(f.clone());
    }
    // faasnap-lint: allow(no-env-read, FAASNAP_OBS_DIR toggles side-artifact dumping only; figure and table output is identical either way)
    if std::env::var_os("FAASNAP_OBS_DIR").is_some() {
        p.set_tracer(Tracer::enabled());
        p.set_metrics(Metrics::enabled());
    }
    p
}

/// Writes the platform's collected trace (`<tag>.trace.json`, Chrome
/// trace-event format) and metrics (`<tag>.prom`, Prometheus text
/// exposition) under `$FAASNAP_OBS_DIR`. No-op unless that variable is
/// set and the platform was built with observability attached.
pub fn dump_observability(p: &Platform, tag: &str) {
    // faasnap-lint: allow(no-env-read, FAASNAP_OBS_DIR names where side artifacts land; absent means skip, golden outputs unaffected)
    let Some(dir) = std::env::var_os("FAASNAP_OBS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if p.tracer().is_enabled() {
        let path = dir.join(format!("{tag}.trace.json"));
        std::fs::write(&path, chrome_trace_json(p.tracer()))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
    if p.metrics().is_enabled() {
        let path = dir.join(format!("{tag}.prom"));
        std::fs::write(&path, p.metrics().render_prometheus())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// Ensures artifacts for `(function, label)` exist, recording with
/// `record_input` if not.
pub fn ensure_recorded(p: &mut Platform, name: &str, label: &str, record_input: &Input) {
    if p.registry().artifacts(name, label).is_none() {
        p.record(name, label, record_input)
            .unwrap_or_else(|e| panic!("record {name}: {e}"));
    }
}

/// Runs `reps` test-phase invocations and aggregates total time.
pub fn measure_total(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
    reps: u32,
) -> MeasuredCell {
    let mut cell = MeasuredCell::new();
    for _ in 0..reps {
        let out = p
            .invoke(name, label, input, strategy)
            .unwrap_or_else(|e| panic!("invoke {name}: {e}"));
        cell.record(out.report.total_time());
    }
    cell
}

/// Runs one test-phase invocation and returns the full outcome.
pub fn run_once(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
) -> InvocationOutcome {
    p.invoke(name, label, input, strategy)
        .unwrap_or_else(|e| panic!("invoke {name}: {e}"))
}

/// Mean total time in milliseconds over `reps` runs.
pub fn mean_total_ms(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
    reps: u32,
) -> f64 {
    measure_total(p, name, label, input, strategy, reps).mean()
}

/// Formats an [`InvocationReport`] one-liner for debugging output.
pub fn report_line(r: &InvocationReport) -> String {
    format!(
        "total {:.1}ms (setup {:.1} + invoke {:.1}) faults: {} anon / {} minor / {} major / {} pte / {} uffd; fetch {:.1}ms {} pages",
        r.total_time().as_millis_f64(),
        r.setup_time.as_millis_f64(),
        r.invocation_time.as_millis_f64(),
        r.anon_faults,
        r.minor_faults,
        r.major_faults,
        r.host_pte_faults,
        r.uffd_faults,
        r.fetch_time.as_millis_f64(),
        r.fetch_pages,
    )
}
