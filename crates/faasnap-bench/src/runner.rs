//! Shared experiment plumbing.

use faas_workloads::{Function, Input};
use faasnap::report::InvocationReport;
use faasnap::runtime::InvocationOutcome;
use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::MeasuredCell;
use faasnap_daemon::platform::Platform;
use sim_storage::profiles::DiskProfile;

/// Builds a platform with the given functions registered.
pub fn platform_with(profile: DiskProfile, seed: u64, functions: &[Function]) -> Platform {
    let mut p = Platform::new(profile, seed);
    for f in functions {
        p.register(f.clone());
    }
    p
}

/// Ensures artifacts for `(function, label)` exist, recording with
/// `record_input` if not.
pub fn ensure_recorded(p: &mut Platform, name: &str, label: &str, record_input: &Input) {
    if p.registry().artifacts(name, label).is_none() {
        p.record(name, label, record_input)
            .unwrap_or_else(|e| panic!("record {name}: {e}"));
    }
}

/// Runs `reps` test-phase invocations and aggregates total time.
pub fn measure_total(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
    reps: u32,
) -> MeasuredCell {
    let mut cell = MeasuredCell::new();
    for _ in 0..reps {
        let out = p
            .invoke(name, label, input, strategy)
            .unwrap_or_else(|e| panic!("invoke {name}: {e}"));
        cell.record(out.report.total_time());
    }
    cell
}

/// Runs one test-phase invocation and returns the full outcome.
pub fn run_once(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
) -> InvocationOutcome {
    p.invoke(name, label, input, strategy)
        .unwrap_or_else(|e| panic!("invoke {name}: {e}"))
}

/// Mean total time in milliseconds over `reps` runs.
pub fn mean_total_ms(
    p: &mut Platform,
    name: &str,
    label: &str,
    input: &Input,
    strategy: RestoreStrategy,
    reps: u32,
) -> f64 {
    measure_total(p, name, label, input, strategy, reps).mean()
}

/// Formats an [`InvocationReport`] one-liner for debugging output.
pub fn report_line(r: &InvocationReport) -> String {
    format!(
        "total {:.1}ms (setup {:.1} + invoke {:.1}) faults: {} anon / {} minor / {} major / {} pte / {} uffd; fetch {:.1}ms {} pages",
        r.total_time().as_millis_f64(),
        r.setup_time.as_millis_f64(),
        r.invocation_time.as_millis_f64(),
        r.anon_faults,
        r.minor_faults,
        r.major_faults,
        r.host_pte_faults,
        r.uffd_faults,
        r.fetch_time.as_millis_f64(),
        r.fetch_pages,
    )
}
