//! Calibration tool: prints per-strategy invocation reports and disk
//! statistics for one function, so cost-model changes can be checked
//! against the paper's reference points quickly.
//!
//! ```sh
//! cargo run --release -p faasnap-bench --bin debug_calib [function] [a|b|diff]
//! ```

use faasnap::strategy::RestoreStrategy;
use faasnap_bench::runner::{ensure_recorded, platform_with, report_line, run_once};
use sim_storage::profiles::DiskProfile;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hello-world".into());
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xDEB6, &funcs);
    let f = faas_workloads::by_name(&name).unwrap();
    ensure_recorded(&mut p, &name, "d", &f.input_a());
    let test_input = match std::env::args().nth(2).as_deref() {
        Some("b") => f.input_b(),
        Some("diff") => f.input_a().reseeded(0xD1FF),
        _ => f.input_a(),
    };
    let a = p.registry().artifacts(&name, "d").unwrap();
    println!(
        "{name}: ws={} pages, reap_ws={} pages, ls: {} regions {} file pages (unmerged {})",
        a.ws.len(),
        a.reap_ws.len(),
        a.ls.region_count(),
        a.ls.file_pages(),
        a.ls.unmerged_region_count()
    );
    println!("record: {}", report_line(&a.record_report));
    for sys in [
        RestoreStrategy::Warm,
        RestoreStrategy::Vanilla,
        RestoreStrategy::Cached,
        RestoreStrategy::Reap,
        RestoreStrategy::faasnap(),
    ] {
        let out = run_once(&mut p, &name, "d", &test_input, sys);
        println!("{:>12}: {}", sys.label(), report_line(&out.report));
        let d = &p.host().disks[0];
        println!(
            "              disk: {} reqs ({} seq), {} pages",
            d.stats().requests,
            d.stats().sequential_requests,
            d.stats().pages
        );
        p.host_mut().disks[0].reset_stats();
    }
}
