//! Config-driven test runner, mirroring the artifact's
//! `test.py test-2inputs.json` workflow (artifact appendix A.4).
//!
//! ```sh
//! # Built-in configs:
//! cargo run --release -p faasnap-bench --bin test_config -- test-2inputs
//! cargo run --release -p faasnap-bench --bin test_config -- test-6inputs
//! # Or a JSON file:
//! cargo run --release -p faasnap-bench --bin test_config -- my-config.json
//! ```

use faasnap_bench::runner::{ensure_recorded, measure_total, platform_with};
use faasnap_daemon::config::ExperimentConfig;
use faasnap_daemon::metrics::TextTable;

fn die(msg: &str) -> ! {
    eprintln!("test_config: {msg}");
    std::process::exit(2);
}

fn load_config(arg: &str) -> ExperimentConfig {
    match arg {
        "test-2inputs" => ExperimentConfig::test_2inputs(),
        "test-6inputs" => ExperimentConfig::test_6inputs(),
        path => {
            let json = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read config {path}: {e}")));
            ExperimentConfig::from_json(&json)
                .unwrap_or_else(|e| die(&format!("bad config {path}: {e}")))
        }
    }
}

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "test-2inputs".into());
    let config = load_config(&arg);
    println!("config:\n{}\n", config.to_json());

    let profile = config.disk_profile().expect("device profile");
    let strategies = config.restore_strategies().expect("strategies");
    let functions: Vec<_> = config
        .functions
        .iter()
        .map(|n| faas_workloads::by_name(n).unwrap_or_else(|| panic!("unknown function {n}")))
        .collect();
    let mut platform = platform_with(profile, config.seed, &functions);

    let mut headers: Vec<&str> = vec!["function", "ratio"];
    headers.extend(config.strategies.iter().map(|s| s.as_str()));
    let mut table = TextTable::new(
        format!("config run ({}): total time (ms)", config.device),
        &headers,
    );

    let ratios: Vec<f64> = if config.input_ratios.is_empty() {
        vec![f64::NAN]
    } else {
        config.input_ratios.clone()
    };
    for f in &functions {
        ensure_recorded(&mut platform, f.name(), "cfg", &f.input_a());
        for &ratio in &ratios {
            let input = if ratio.is_nan() {
                f.input_b()
            } else {
                f.input_scaled(ratio, 0xC0F ^ (ratio * 8.0) as u64)
            };
            let mut row = vec![
                f.name().to_string(),
                if ratio.is_nan() {
                    "B".into()
                } else {
                    format!("{ratio}")
                },
            ];
            for &strategy in &strategies {
                let cell = measure_total(
                    &mut platform,
                    f.name(),
                    "cfg",
                    &input,
                    strategy,
                    config.repetitions,
                );
                row.push(format!("{cell}"));
            }
            table.row(row);
        }
    }
    println!("{table}");
}
