//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each evaluation artifact has a bench target (run `cargo bench -p
//! faasnap-bench` to regenerate them all) backed by a driver in
//! [`figures`]:
//!
//! | target               | paper artifact | driver |
//! |----------------------|----------------|--------|
//! | `fig1_breakdown`     | Figure 1       | [`figures::fig1_breakdown`] |
//! | `fig2_fault_dist`    | Figure 2       | [`figures::fig2_fault_dist`] |
//! | `table2_workingsets` | Table 2        | [`figures::table2_workingsets`] |
//! | `fig6_exec_time`     | Figure 6       | [`figures::fig6_exec_time`] |
//! | `fig7_synthetic`     | Figure 7       | [`figures::fig7_synthetic`] |
//! | `fig8_input_sweep`   | Figure 8       | [`figures::fig8_input_sweep`] |
//! | `table3_analysis`    | Table 3        | [`figures::table3_analysis`] |
//! | `fig9_ablation`      | Figure 9       | [`figures::fig9_ablation`] |
//! | `fig10_burst`        | Figure 10      | [`figures::fig10_burst`] |
//! | `fig11_remote`       | Figure 11      | [`figures::fig11_remote`] |
//! | `tbl_footprint`      | §7.3           | [`figures::tbl_footprint`] |
//! | `tbl_merge`          | §4.6           | [`figures::tbl_merge`] |
//! | `fig_cluster`        | fleet SLOs     | [`figures::fig_cluster`] |
//! | `fig_fork`           | branching      | [`figures::fig_fork`] |
//! | `micro`              | (criterion)    | library microbenchmarks |
//!
//! Drivers accept an [`Effort`] so smoke tests can run the same code
//! cheaply; bench targets use [`Effort::Full`].

#![forbid(unsafe_code)]
pub mod figures;
pub mod runner;

/// How much work to spend on an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effort {
    /// Few functions, one repetition (CI smoke tests).
    Quick,
    /// The paper's protocol (all functions, full repetitions).
    Full,
}

impl Effort {
    /// Repetitions for a `paper_reps`-rep experiment.
    pub fn reps(self, paper_reps: u32) -> u32 {
        match self {
            Effort::Quick => 1,
            Effort::Full => paper_reps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_reps() {
        assert_eq!(Effort::Quick.reps(5), 1);
        assert_eq!(Effort::Full.reps(5), 5);
    }

    #[test]
    fn table2_driver_runs_quick() {
        let t = figures::table2_workingsets(Effort::Quick);
        assert!(!t.is_empty());
        let s = format!("{t}");
        assert!(s.contains("hello-world"));
        assert!(s.contains("11.8"));
    }

    #[test]
    fn merge_driver_runs_quick() {
        let t = figures::tbl_merge(Effort::Quick);
        assert_eq!(t.len(), 1);
        assert!(format!("{t}").contains("hello-world"));
    }

    #[test]
    fn fig_cluster_driver_runs_quick() {
        let t = figures::fig_cluster(Effort::Quick);
        let s = format!("{t}");
        assert!(s.contains("random"));
        assert!(s.contains("snapshot-locality"));
    }

    #[test]
    fn fig_fork_driver_runs_quick() {
        let t = figures::fig_fork(Effort::Quick);
        let s = format!("{t}");
        assert!(s.contains("Snapshot branching"));
        assert!(s.contains("100"));
    }

    #[test]
    fn fig7_driver_runs_quick() {
        let t = figures::fig7_synthetic(Effort::Quick);
        let s = format!("{t}");
        assert!(s.contains("hello-world"));
        assert!(s.contains("FaaSnap"));
    }
}
