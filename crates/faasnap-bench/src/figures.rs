//! Drivers for every table and figure in the paper's evaluation.

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::metrics::{MeasuredCell, TextTable};
use faasnap_daemon::platform::BurstKind;
use sim_core::units::MIB;
use sim_storage::profiles::DiskProfile;

use crate::runner::{dump_observability, ensure_recorded, measure_total, platform_with, run_once};
use crate::Effort;

/// The four headline systems in the paper's plotting order.
fn headline() -> [RestoreStrategy; 4] {
    RestoreStrategy::headline()
}

/// Looks up a workload every figure table names by construction; the
/// tables only reference built-ins, so a miss is a typo in this file.
fn workload(name: &str) -> faas_workloads::Function {
    faas_workloads::by_name(name).unwrap_or_else(|| panic!("figure names unknown workload {name}"))
}

fn fig6_functions(effort: Effort) -> Vec<&'static str> {
    match effort {
        Effort::Quick => vec!["json", "image"],
        Effort::Full => vec![
            "json",
            "compression",
            "pyaes",
            "chameleon",
            "image",
            "recognition",
            "pagerank",
            "matmul",
            "ffmpeg",
        ],
    }
}

/// Figure 1: time breakdown (setup vs. invocation) of hello-world,
/// read-list, mmap, image, and image-diff under Warm / Firecracker /
/// Cached / REAP.
pub fn fig1_breakdown(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF161, &funcs);
    let mut t = TextTable::new(
        "Figure 1: time breakdown (ms)",
        &["function", "system", "setup", "invocation", "total"],
    );
    let systems = [
        RestoreStrategy::Warm,
        RestoreStrategy::Vanilla,
        RestoreStrategy::Cached,
        RestoreStrategy::Reap,
    ];
    // image-diff = image with a different input for the test phase
    // (same sizes, different contents, §3.1).
    let cases: Vec<(&str, bool)> = match effort {
        Effort::Quick => vec![("hello-world", false), ("image", true)],
        Effort::Full => vec![
            ("hello-world", false),
            ("read-list", false),
            ("mmap", false),
            ("image", false),
            ("image", true),
        ],
    };
    for (name, diff_input) in cases {
        let f = workload(name);
        let record_input = f.input_a();
        ensure_recorded(&mut p, name, "f1", &record_input);
        let test_input = if diff_input {
            record_input.reseeded(0xD1FF)
        } else {
            record_input
        };
        let label = if diff_input {
            format!("{name}-diff")
        } else {
            name.to_string()
        };
        for sys in systems {
            let mut setup = MeasuredCell::new();
            let mut invoke = MeasuredCell::new();
            let mut total = MeasuredCell::new();
            for _ in 0..effort.reps(5) {
                let out = run_once(&mut p, name, "f1", &test_input, sys);
                setup.record(out.report.setup_time);
                invoke.record(out.report.invocation_time);
                total.record(out.report.total_time());
            }
            t.row(vec![
                label.clone(),
                sys.label().into(),
                format!("{setup}"),
                format!("{invoke}"),
                format!("{total}"),
            ]);
        }
    }
    dump_observability(&p, "fig1_breakdown");
    t
}

/// Figure 2: distribution of page-fault handling times for `image-diff`
/// under the four systems (log2 µs buckets).
pub fn fig2_fault_dist(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF162, &funcs);
    let f = workload("image");
    let record = f.input_a();
    ensure_recorded(&mut p, "image", "f2", &record);
    let diff = record.reseeded(0xD1FF);
    let systems = [
        RestoreStrategy::Warm,
        RestoreStrategy::Vanilla,
        RestoreStrategy::Cached,
        RestoreStrategy::Reap,
    ];
    let _ = effort;
    let mut t = TextTable::new(
        "Figure 2: image-diff page-fault time distribution",
        &["system", "bucket", "count"],
    );
    let mut summary = TextTable::new(
        "Figure 2 summary",
        &["system", "faults", "mean (us)", "total (ms)"],
    );
    for sys in systems {
        let out = run_once(&mut p, "image", "f2", &diff, sys);
        let hist = &out.report.fault_hist;
        for (bucket, count) in hist.rows() {
            if count > 0 {
                t.row(vec![sys.label().into(), bucket, count.to_string()]);
            }
        }
        summary.row(vec![
            sys.label().into(),
            hist.count().to_string(),
            format!("{:.1}", hist.mean().as_micros_f64()),
            format!("{:.1}", hist.total().as_millis_f64()),
        ]);
    }
    println!("{summary}");
    t
}

/// Table 2: the function inventory with measured working-set sizes.
pub fn table2_workingsets(effort: Effort) -> TextTable {
    let mut t = TextTable::new(
        "Table 2: functions and working sets",
        &[
            "function",
            "description",
            "WS A (MB)",
            "WS B (MB)",
            "paper A",
            "paper B",
        ],
    );
    let paper: &[(&str, f64, f64)] = &[
        ("hello-world", 11.8, 11.8),
        ("read-list", 526.0, 526.0),
        ("mmap", 536.0, 536.0),
        ("image", 20.6, 32.6),
        ("json", 12.7, 14.4),
        ("pyaes", 12.6, 13.2),
        ("chameleon", 22.9, 25.1),
        ("matmul", 113.0, 133.0),
        ("ffmpeg", 179.0, 178.0),
        ("compression", 15.3, 15.8),
        ("recognition", 230.0, 234.0),
        ("pagerank", 104.0, 114.0),
    ];
    let limit = match effort {
        Effort::Quick => 4,
        Effort::Full => paper.len(),
    };
    for (name, pa, pb) in paper.iter().take(limit) {
        let f = workload(name);
        let ws = |input: &faas_workloads::Input| {
            f.trace(input).distinct_pages() as f64 * 4096.0 / MIB as f64
        };
        t.row(vec![
            name.to_string(),
            f.params().description.into(),
            format!("{:.1}", ws(&f.input_a())),
            format!("{:.1}", ws(&f.input_b())),
            format!("{pa}"),
            format!("{pb}"),
        ]);
    }
    t
}

/// Figure 6: end-to-end execution time for the nine application
/// functions, record A → test B and record B → test A.
pub fn fig6_exec_time(effort: Effort) -> Vec<TextTable> {
    let funcs = faas_workloads::all_functions();
    let mut tables = Vec::new();
    for (dir, rec_is_a) in [("record A, test B", true), ("record B, test A", false)] {
        let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF166, &funcs);
        let mut t = TextTable::new(
            format!("Figure 6: execution time (ms), {dir}"),
            &["function", "Firecracker", "REAP", "FaaSnap", "Cached"],
        );
        for name in fig6_functions(effort) {
            let f = workload(name);
            let (rec, test) = if rec_is_a {
                (f.input_a(), f.input_b())
            } else {
                (f.input_b(), f.input_a())
            };
            let label = if rec_is_a { "a" } else { "b" };
            ensure_recorded(&mut p, name, label, &rec);
            let mut cells = Vec::new();
            for sys in headline() {
                cells.push(format!(
                    "{}",
                    measure_total(&mut p, name, label, &test, sys, effort.reps(5))
                ));
            }
            let mut row = vec![name.to_string()];
            row.extend(cells);
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

/// Figure 7: the three synthetic functions (same input both phases).
pub fn fig7_synthetic(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF167, &funcs);
    let mut t = TextTable::new(
        "Figure 7: synthetic functions (ms)",
        &["function", "Firecracker", "REAP", "FaaSnap", "Cached"],
    );
    let names: Vec<&str> = match effort {
        Effort::Quick => vec!["hello-world"],
        Effort::Full => vec!["hello-world", "mmap", "read-list"],
    };
    for name in names {
        let f = workload(name);
        let input = f.input_a();
        ensure_recorded(&mut p, name, "f7", &input);
        let mut row = vec![name.to_string()];
        for sys in headline() {
            row.push(format!(
                "{}",
                measure_total(&mut p, name, "f7", &input, sys, effort.reps(5))
            ));
        }
        t.row(row);
    }
    t
}

/// Figure 8: test-phase input sizes swept from 1/4× to 4× the record
/// input (contents entirely different).
pub fn fig8_input_sweep(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF168, &funcs);
    let mut t = TextTable::new(
        "Figure 8: execution time (s) vs input size ratio",
        &[
            "function",
            "ratio",
            "Firecracker",
            "REAP",
            "FaaSnap",
            "Cached",
        ],
    );
    let ratios: &[f64] = match effort {
        Effort::Quick => &[0.5, 2.0],
        Effort::Full => &[0.25, 0.5, 1.0, 2.0, 4.0],
    };
    for name in fig6_functions(effort) {
        let f = workload(name);
        ensure_recorded(&mut p, name, "f8", &f.input_a());
        for &ratio in ratios {
            let test = f.input_scaled(ratio, 0xFE5 ^ (ratio * 16.0) as u64);
            let mut row = vec![name.to_string(), format!("{ratio}")];
            for sys in headline() {
                let cell = measure_total(&mut p, name, "f8", &test, sys, effort.reps(3));
                row.push(format!("{:.2}", cell.mean() / 1000.0));
            }
            t.row(row);
        }
    }
    t
}

/// Table 3: execution breakdown of ffmpeg and image under REAP vs FaaSnap.
pub fn table3_analysis(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF1A3, &funcs);
    let mut t = TextTable::new(
        "Table 3: performance analysis",
        &[
            "case",
            "total (ms)",
            "fetch (ms)",
            "fetch size (MB)",
            "guest pf size (MB)",
            "pf waiting (ms)",
        ],
    );
    let names: Vec<&str> = match effort {
        Effort::Quick => vec!["image"],
        Effort::Full => vec!["ffmpeg", "image"],
    };
    for name in names {
        let f = workload(name);
        ensure_recorded(&mut p, name, "t3", &f.input_a());
        for sys in [RestoreStrategy::Reap, RestoreStrategy::faasnap()] {
            let out = run_once(&mut p, name, "t3", &f.input_b(), sys);
            let r = &out.report;
            t.row(vec![
                format!("{}, {name}", sys.label()),
                format!("{:.0}", r.total_time().as_millis_f64()),
                format!("{:.0}", r.fetch_time.as_millis_f64()),
                format!("{:.0}", r.fetch_bytes() as f64 / MIB as f64),
                format!("{:.1}", r.guest_fault_read_bytes() as f64 / MIB as f64),
                format!("{:.0}", r.fault_wait.as_millis_f64()),
            ]);
        }
    }
    t
}

/// Figure 9: the optimization-step ablation on `image`: invocation time,
/// major faults, total fault time, and block requests per step.
pub fn fig9_ablation(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF169, &funcs);
    let f = workload("image");
    ensure_recorded(&mut p, "image", "f9", &f.input_a());
    let mut t = TextTable::new(
        "Figure 9: optimization steps (image)",
        &[
            "step",
            "invocation (ms)",
            "major faults",
            "pf time (ms)",
            "block requests",
        ],
    );
    for sys in RestoreStrategy::ablation_ladder() {
        let mut inv = MeasuredCell::new();
        let mut majors = MeasuredCell::new();
        let mut pf = MeasuredCell::new();
        let mut blocks = MeasuredCell::new();
        for _ in 0..effort.reps(3) {
            let out = run_once(&mut p, "image", "f9", &f.input_b(), sys);
            inv.record(out.report.invocation_time);
            majors.record_value(out.report.major_faults as f64);
            pf.record(out.report.fault_wait);
            blocks.record_value(out.report.fault_block_requests as f64);
        }
        t.row(vec![
            sys.label().into(),
            format!("{inv}"),
            format!("{:.0}", majors.mean()),
            format!("{pf}"),
            format!("{:.0}", blocks.mean()),
        ]);
    }
    t
}

/// Figure 10: bursty workloads — 1 to 64 parallel invocations of
/// hello-world and json, from the same or different snapshots.
pub fn fig10_burst(effort: Effort) -> TextTable {
    let mut t = TextTable::new(
        "Figure 10: bursty workloads, mean per-invocation time (s)",
        &[
            "function",
            "snapshots",
            "parallelism",
            "Firecracker",
            "REAP",
            "FaaSnap",
        ],
    );
    let (parallelism, names): (&[u32], Vec<&str>) = match effort {
        Effort::Quick => (&[1, 4], vec!["hello-world"]),
        Effort::Full => (&[1, 4, 16, 64], vec!["hello-world", "json"]),
    };
    let systems = [
        RestoreStrategy::Vanilla,
        RestoreStrategy::Reap,
        RestoreStrategy::faasnap(),
    ];
    for name in &names {
        for (kind, kind_label) in [
            (BurstKind::SameSnapshot, "same"),
            (BurstKind::DifferentSnapshots, "diff"),
        ] {
            for &par in parallelism {
                let mut cells = Vec::new();
                for sys in systems {
                    let funcs = faas_workloads::all_functions();
                    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF170, &funcs);
                    let f = workload(name);
                    ensure_recorded(&mut p, name, "f10", &f.input_a());
                    let outs = p
                        .burst(name, "f10", &f.input_b(), sys, par, kind)
                        .unwrap_or_else(|e| panic!("burst: {e}"));
                    let mean_s = outs
                        .iter()
                        .map(|o| o.report.total_time().as_secs_f64())
                        .sum::<f64>()
                        / outs.len() as f64;
                    cells.push(format!("{mean_s:.3}"));
                }
                let mut row = vec![name.to_string(), kind_label.into(), par.to_string()];
                row.extend(cells);
                t.row(row);
            }
        }
    }
    t
}

/// Figure 11: all functions with snapshots on remote block storage (EBS).
pub fn fig11_remote(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::ebs_io2(), 0xF171, &funcs);
    let mut t = TextTable::new(
        "Figure 11: remote storage (EBS), execution time (ms)",
        &["function", "Firecracker", "REAP", "FaaSnap"],
    );
    let names: Vec<&str> = match effort {
        Effort::Quick => vec!["hello-world", "json"],
        Effort::Full => vec![
            "hello-world",
            "mmap",
            "read-list",
            "json",
            "compression",
            "pyaes",
            "chameleon",
            "image",
            "recognition",
            "pagerank",
            "matmul",
            "ffmpeg",
        ],
    };
    for name in names {
        let f = workload(name);
        ensure_recorded(&mut p, name, "f11", &f.input_a());
        let mut row = vec![name.to_string()];
        for sys in [
            RestoreStrategy::Vanilla,
            RestoreStrategy::Reap,
            RestoreStrategy::faasnap(),
        ] {
            row.push(format!(
                "{}",
                measure_total(&mut p, name, "f11", &f.input_b(), sys, effort.reps(3))
            ));
        }
        t.row(row);
    }
    t
}

/// §7.3: memory footprints of FaaSnap vs vanilla Firecracker snapshots.
pub fn tbl_footprint(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF173, &funcs);
    let mut t = TextTable::new(
        "Memory footprint (MB): anonymous + page cache at completion",
        &["function", "Firecracker", "FaaSnap", "ratio"],
    );
    let names = fig6_functions(effort);
    for name in names {
        let f = workload(name);
        ensure_recorded(&mut p, name, "fp", &f.input_a());
        let fc = run_once(&mut p, name, "fp", &f.input_b(), RestoreStrategy::Vanilla);
        let fs = run_once(&mut p, name, "fp", &f.input_b(), RestoreStrategy::faasnap());
        let fc_mb = fc.report.footprint_pages() as f64 * 4096.0 / MIB as f64;
        let fs_mb = fs.report.footprint_pages() as f64 * 4096.0 / MIB as f64;
        t.row(vec![
            name.to_string(),
            format!("{fc_mb:.0}"),
            format!("{fs_mb:.0}"),
            format!("{:.2}", fs_mb / fc_mb),
        ]);
    }
    t
}

/// §4.6: loading-set region merging (hello-world: >1000 regions before,
/// <100 after, small data increase).
pub fn tbl_merge(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF146, &funcs);
    let mut t = TextTable::new(
        "Loading-set region merging (gap threshold 32 pages)",
        &["function", "regions before", "regions after", "data added"],
    );
    let names: Vec<&str> = match effort {
        Effort::Quick => vec!["hello-world"],
        Effort::Full => vec!["hello-world", "json", "image", "chameleon"],
    };
    for name in names {
        let f = workload(name);
        ensure_recorded(&mut p, name, "m", &f.input_a());
        let a = p.registry().artifacts(name, "m").unwrap();
        t.row(vec![
            name.to_string(),
            a.ls.unmerged_region_count().to_string(),
            a.ls.region_count().to_string(),
            format!("{:.0}%", a.ls.merge_overhead() * 100.0),
        ]);
    }
    t
}

/// Design-choice sensitivity: working-set group size (§4.3 picks N = 1024)
/// and region-merge gap (§4.6 picks 32 pages), swept on `image`.
pub fn tbl_sensitivity(effort: Effort) -> TextTable {
    use faasnap::artifacts::{record_phase_with, RecordOptions};
    use faasnap::runtime::{run_invocation, Host};

    // recognition has the largest working set of the application
    // functions, so its loader genuinely races the guest — group ordering
    // and merge overhead are visible there.
    let f = workload("recognition");
    let mut t = TextTable::new(
        "Sensitivity: group size and merge gap (recognition, FaaSnap, input B)",
        &[
            "knob",
            "value",
            "total (ms)",
            "major faults",
            "ls regions",
            "ls file (MB)",
        ],
    );
    let (groups, gaps): (&[u64], &[u64]) = match effort {
        Effort::Quick => (&[1024], &[32]),
        Effort::Full => (&[128, 512, 1024, 4096, 16384], &[0, 8, 32, 128, 512]),
    };
    let mut run_case = |knob: &str, value: u64, options: RecordOptions| {
        let mut host = Host::new(DiskProfile::nvme_c5d(), 0x5E15 ^ value);
        let dev = host.primary_device();
        let artifacts = record_phase_with(
            &mut host,
            "recognition-sens",
            f.boot_image(),
            f.trace(&f.input_a()),
            dev,
            options,
        );
        host.drop_caches();
        let spec = artifacts.spec(RestoreStrategy::faasnap(), f.trace(&f.input_b()));
        let out = run_invocation(&mut host, spec);
        t.row(vec![
            knob.into(),
            value.to_string(),
            format!("{:.1}", out.report.total_time().as_millis_f64()),
            out.report.major_faults.to_string(),
            artifacts.ls.region_count().to_string(),
            format!(
                "{:.1}",
                artifacts.ls.file_pages() as f64 * 4096.0 / MIB as f64
            ),
        ]);
    };
    for &g in groups {
        run_case(
            "group size",
            g,
            RecordOptions {
                group_size: g,
                scan_threshold: g,
                ..Default::default()
            },
        );
    }
    for &g in gaps {
        run_case(
            "merge gap",
            g,
            RecordOptions {
                merge_gap: g,
                ..Default::default()
            },
        );
    }
    t
}

/// §7.1: warm VMs vs. snapshots vs. cold starts as a function of
/// invocation frequency, with measured per-mode latencies.
pub fn tbl_policy(effort: Effort) -> TextTable {
    use faasnap_daemon::policy::{best_mode_for_period, Costs, ModeLatencies};
    use sim_core::time::SimDuration;

    // Measure the three mode latencies for `image` on this platform.
    let funcs = faas_workloads::all_functions();
    let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF171AC, &funcs);
    let f = workload("image");
    let latencies =
        ModeLatencies::measure(&mut p, "image", "pol", &f.input_b()).expect("image is registered");

    let mut t = TextTable::new(
        format!(
            "Serving policy (image: warm {:.0} ms, FaaSnap {:.0} ms, cold {:.0} ms)",
            latencies.warm.as_millis_f64(),
            latencies.snapshot.as_millis_f64(),
            latencies.cold.as_millis_f64()
        ),
        &["invocation period", "best mode"],
    );
    let periods: &[(u64, &str)] = match effort {
        Effort::Quick => &[(30, "30 s"), (7200, "2 h")],
        Effort::Full => &[
            (10, "10 s"),
            (60, "1 min"),
            (600, "10 min"),
            (3600, "1 h"),
            (7200, "2 h"),
            (43_200, "12 h"),
            (86_400, "24 h"),
        ],
    };
    for &(secs, label) in periods {
        let mode = best_mode_for_period(
            SimDuration::from_secs(secs),
            SimDuration::from_secs(7 * 86_400),
            SimDuration::from_secs(900), // 15-minute keep-alive (§2.1)
            latencies,
            Costs::default(),
            1000.0,
        );
        t.row(vec![label.into(), format!("{mode:?}")]);
    }
    t
}

/// Extension: host page-cache pressure. The `Cached` reference assumes
/// the whole memory file stays resident; under memory pressure its pages
/// get evicted while FaaSnap's compact loading set still fits. Sweeps the
/// cache budget and compares strategies on `recognition` (230 MB WS).
pub fn tbl_cache_pressure(effort: Effort) -> TextTable {
    use sim_mm::page_cache::PageCache;

    let funcs = faas_workloads::all_functions();
    let f = workload("recognition");
    let mut t = TextTable::new(
        "Cache pressure (recognition, input B): total time (ms) vs cache budget",
        &["cache budget", "Firecracker", "FaaSnap", "Cached"],
    );
    let budgets_mb: &[u64] = match effort {
        Effort::Quick => &[4096, 256],
        Effort::Full => &[4096, 1024, 512, 256, 128],
    };
    for &mb in budgets_mb {
        let mut p = platform_with(DiskProfile::nvme_c5d(), 0xCAC4E ^ mb, &funcs);
        ensure_recorded(&mut p, "recognition", "cp", &f.input_a());
        p.host_mut().pages.set_cache(PageCache::new(mb * 256)); // MB -> pages
        let mut row = vec![format!("{mb} MB")];
        for sys in [
            RestoreStrategy::Vanilla,
            RestoreStrategy::faasnap(),
            RestoreStrategy::Cached,
        ] {
            let out = run_once(&mut p, "recognition", "cp", &f.input_b(), sys);
            row.push(format!("{:.0}", out.report.total_time().as_millis_f64()));
        }
        t.row(row);
    }
    t
}

/// Extension: multi-host fleet SLOs. Calibrates per-workload service
/// times on the single-host platform, then replays a Zipf-skewed
/// open-loop tenant mix against the fleet simulator under each routing
/// policy. Snapshot-locality routing concentrates each tenant's restores
/// where its snapshot (and page-cache residency) already lives, so its
/// tail latency should beat random placement.
pub fn fig_cluster(effort: Effort) -> TextTable {
    use faasnap_cluster::{calibrate, run_cluster, ClusterConfig, RoutePolicy, WorkloadSpec};
    use sim_core::time::SimDuration;

    let seed = 42;
    let workloads = ["hello-world", "json", "compression", "image"];
    let services = calibrate::calibrate_workloads(&workloads, seed).expect("calibration succeeds");
    let (hosts, tenants, rate, horizon_s) = match effort {
        Effort::Quick => (4, 24, 25.0, 60),
        Effort::Full => (8, 36, 40.0, 300),
    };
    let mut t = TextTable::new(
        format!("Fleet SLOs ({hosts} hosts, {tenants} tenants, {rate}/s, {horizon_s}s)"),
        &[
            "policy",
            "served",
            "shed",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "warm+hot %",
            "cold",
            "util %",
        ],
    );
    for policy in [
        RoutePolicy::Random,
        RoutePolicy::LeastLoaded,
        RoutePolicy::SnapshotLocality,
    ] {
        let mut cfg = ClusterConfig::demo(hosts, policy, seed);
        cfg.workload = WorkloadSpec::zipf(tenants, &workloads, rate, 1.2);
        cfg.horizon = SimDuration::from_secs(horizon_s);
        cfg.services = services.clone();
        let m = run_cluster(&cfg);
        let mix = m.mode_mix();
        let served = m.total_served();
        let fast = if served == 0 {
            0.0
        } else {
            100.0 * (mix[0] + mix[1]) as f64 / served as f64
        };
        t.row(vec![
            policy.label().into(),
            served.to_string(),
            m.total_shed().to_string(),
            format!("{:.1}", m.p(50.0)),
            format!("{:.1}", m.p(95.0)),
            format!("{:.1}", m.p(99.0)),
            format!("{fast:.1}"),
            mix[3].to_string(),
            format!("{:.1}", 100.0 * m.mean_utilization()),
        ]);
    }
    t
}

/// Extension: snapshot branching fan-out. Branches N COW siblings from
/// one snapshot in a single burst and compares the disk reads actually
/// issued against N independent restores (N × the N = 1 reads). Sibling
/// faults on a shared page coalesce onto one in-flight read, and every
/// later sibling hits the cache the earlier ones loaded, so the read
/// amplification collapses from N× toward 1×.
pub fn fig_fork(effort: Effort) -> TextTable {
    let funcs = faas_workloads::all_functions();
    let fan: &[usize] = match effort {
        Effort::Quick => &[1, 10, 100],
        Effort::Full => &[1, 10, 100, 1000],
    };
    let mut t = TextTable::new(
        "Snapshot branching: N-way fan-out from one snapshot (disk pages read)",
        &[
            "system",
            "N",
            "fork reads",
            "independent",
            "dedup",
            "shared",
            "private/vm",
            "p95 (ms)",
        ],
    );
    for strategy in [RestoreStrategy::Vanilla, RestoreStrategy::faasnap()] {
        let mut p = platform_with(DiskProfile::nvme_c5d(), 0xF08C, &funcs);
        let f = workload("json");
        ensure_recorded(&mut p, f.name(), "fork", &f.input_a());
        // The N = 1 fork is the independent-restore baseline: every
        // fork call drops the caches first, so each row starts cold.
        let solo = p
            .fork(f.name(), "fork", &f.input_a(), strategy, 1)
            .unwrap_or_else(|e| panic!("fork baseline: {e}"));
        for &n in fan {
            let out = p
                .fork(f.name(), "fork", &f.input_a(), strategy, n)
                .unwrap_or_else(|e| panic!("fork x{n}: {e}"));
            let independent = solo.disk_read_pages * n as u64;
            let dedup = if out.disk_read_pages == 0 {
                1.0
            } else {
                independent as f64 / out.disk_read_pages as f64
            };
            let times: sim_core::stats::Summary = out
                .outcomes
                .iter()
                .map(|o| o.report.total_time().as_millis_f64())
                .collect();
            t.row(vec![
                strategy.label().into(),
                n.to_string(),
                out.disk_read_pages.to_string(),
                independent.to_string(),
                format!("{dedup:.1}x"),
                out.shared_pages.to_string(),
                (out.private_pages / n as u64).to_string(),
                format!("{:.1}", times.p95()),
            ]);
        }
    }
    t
}
