//! Regenerates the paper artifact; see `faasnap_bench::figures::fig10_burst`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig10_burst(effort);
    println!("{out}");
}
