//! Regenerates the paper artifact; see `faasnap_bench::figures::fig11_remote`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig11_remote(effort);
    println!("{out}");
}
