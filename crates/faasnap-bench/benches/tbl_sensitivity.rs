//! Design-choice sensitivity sweep; see `faasnap_bench::figures::tbl_sensitivity`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    println!("{}", figures::tbl_sensitivity(effort));
}
