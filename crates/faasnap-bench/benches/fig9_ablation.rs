//! Regenerates the paper artifact; see `faasnap_bench::figures::fig9_ablation`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig9_ablation(effort);
    println!("{out}");
}
