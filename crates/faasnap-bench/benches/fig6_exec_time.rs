//! Regenerates Figure 6; see `faasnap_bench::figures::fig6_exec_time`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    for table in figures::fig6_exec_time(effort) {
        println!("{table}");
    }
}
