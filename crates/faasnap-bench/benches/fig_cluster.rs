//! Fleet SLO comparison across routing policies; see
//! `faasnap_bench::figures::fig_cluster`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    println!("{}", figures::fig_cluster(effort));
}
