//! Regenerates the paper artifact; see `faasnap_bench::figures::fig1_breakdown`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig1_breakdown(effort);
    println!("{out}");
}
