//! Criterion microbenchmarks of the library's own hot operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use faasnap::loadingset::LoadingSet;
use faasnap::wset::WorkingSet;
use sim_core::engine::{Engine, Scheduler, World};
use sim_core::time::{SimDuration, SimTime};
use sim_mm::addr::PageRange;
use sim_mm::page_cache::PageCache;
use sim_mm::vma::{AddressSpace, Backing};
use sim_storage::file::FileId;
use sim_vm::guest_memory::GuestMemory;

fn bench_loading_set_build(c: &mut Criterion) {
    // A hello-world-shaped working set: ~3000 scattered pages.
    let mut ws = WorkingSet::new();
    let pages: Vec<u64> = (0..3000u64).map(|i| i * 7 + (i % 3)).collect();
    ws.extend(&pages);
    let mut mem = GuestMemory::new(1 << 20);
    for &p in &pages {
        mem.write(p, p + 1);
    }
    c.bench_function("loading_set_build_3k_pages", |b| {
        b.iter(|| black_box(LoadingSet::build(&ws, &mem, 32)))
    });
}

fn bench_zero_scan(c: &mut Criterion) {
    let mut mem = GuestMemory::new(1 << 19);
    for p in (0..(1 << 19)).step_by(5) {
        mem.write(p, 1);
    }
    c.bench_function("nonzero_region_scan_512k_pages", |b| {
        b.iter(|| black_box(mem.nonzero_regions().len()))
    });
}

fn bench_page_cache(c: &mut Criterion) {
    c.bench_function("page_cache_insert_touch_10k", |b| {
        b.iter(|| {
            let mut cache = PageCache::new(1 << 20);
            for p in 0..10_000u64 {
                cache.insert(FileId(1), p);
            }
            let mut hits = 0u64;
            for p in 0..10_000u64 {
                hits += cache.touch(FileId(1), p) as u64;
            }
            black_box(hits)
        })
    });
}

fn bench_vma_overlay(c: &mut Criterion) {
    c.bench_function("vma_overlay_1k_regions_lookup", |b| {
        b.iter(|| {
            let mut a = AddressSpace::new();
            a.map_fixed(PageRange::new(0, 1 << 19), Backing::Anonymous);
            for i in 0..1000u64 {
                a.map_fixed(
                    PageRange::with_len(i * 400, 16),
                    Backing::File {
                        file: FileId(1),
                        offset_page: i * 16,
                    },
                );
            }
            let mut n = 0u64;
            for p in (0..(1 << 19)).step_by(997) {
                n += a.resolve(p).is_some() as u64;
            }
            black_box(n)
        })
    });
}

struct Pingpong {
    remaining: u64,
}

impl World for Pingpong {
    type Event = ();
    fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.schedule_after(now, SimDuration::from_nanos(10), ());
        }
    }
}

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("des_engine_100k_events", |b| {
        b.iter(|| {
            let mut w = Pingpong { remaining: 100_000 };
            let mut e: Engine<()> = Engine::new();
            e.scheduler().schedule(SimTime::ZERO, ());
            e.run(&mut w);
            black_box(e.delivered())
        })
    });
}

criterion_group!(
    benches,
    bench_loading_set_build,
    bench_zero_scan,
    bench_page_cache,
    bench_vma_overlay,
    bench_engine_throughput
);
criterion_main!(benches);
