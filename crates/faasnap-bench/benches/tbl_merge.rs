//! Regenerates the paper artifact; see `faasnap_bench::figures::tbl_merge`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::tbl_merge(effort);
    println!("{out}");
}
