//! Regenerates the paper artifact; see `faasnap_bench::figures::fig7_synthetic`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig7_synthetic(effort);
    println!("{out}");
}
