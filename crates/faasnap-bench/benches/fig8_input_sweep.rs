//! Regenerates the paper artifact; see `faasnap_bench::figures::fig8_input_sweep`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig8_input_sweep(effort);
    println!("{out}");
}
