//! Cache-pressure extension; see `faasnap_bench::figures::tbl_cache_pressure`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    println!("{}", figures::tbl_cache_pressure(effort));
}
