//! Regenerates the branching fan-out table; see
//! `faasnap_bench::figures::fig_fork`.

use faasnap_bench::{figures, Effort};

fn main() {
    let effort = if std::env::var("FAASNAP_QUICK").is_ok() {
        Effort::Quick
    } else {
        Effort::Full
    };
    let out = figures::fig_fork(effort);
    println!("{out}");
}
