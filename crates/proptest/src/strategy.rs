//! Strategy trait and the concrete strategies the workspace tests use.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a fresh
/// value and failing cases are replayed from their seed instead of being
/// shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a pure function to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy {
            generate: Rc::new(move |rng| inner.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies ([`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
