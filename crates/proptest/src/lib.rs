//! Offline stand-in for the `proptest` crate.
//!
//! The sandbox this repository builds in has no access to crates.io, so
//! the real `proptest` cannot be downloaded. This crate implements the
//! subset of its API that the workspace's property tests actually use —
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! integer/float range strategies, tuple strategies, `any::<T>()`,
//! [`collection::vec`] / [`collection::btree_set`], [`prop_oneof!`], and
//! the `prop_assert*` macros — on top of a self-contained deterministic
//! generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the iteration index and
//!   per-case seed so it can be replayed, but is not minimized.
//! * **Fixed determinism.** Cases derive from a constant seed, so a test
//!   either always passes or always fails for a given build.
//! * **256 cases per test** (the upstream default), overridable with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
pub mod strategy;

pub mod test_runner {
    /// Deterministic per-test case generator state (splitmix64).
    ///
    /// Splitmix64 is a tiny, well-distributed PRNG; each test case gets
    /// an independent stream derived from the case index so failures
    /// name a single replayable seed.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator with the given seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Number of cases each property runs (PROPTEST_CASES overrides).
    pub fn case_count() -> u32 {
        // faasnap-lint: allow(no-env-read, PROPTEST_CASES scales how many cases run, never what any case asserts; the RNG seed stays fixed)
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }
}

pub mod collection {
    use std::collections::BTreeSet;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — element strategy plus a size range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for a `BTreeSet` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // Duplicates are rejected; bail once it is clear the element
            // domain is too small to ever reach the target size.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// `proptest::collection::btree_set` — distinct elements, size range.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// `proptest::prelude` — the glob import the tests use.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs property-style assertions. Maps directly onto `assert!`; real
/// proptest routes these through its shrinking machinery instead.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(0u64..9, 1..5)) {
///         prop_assert!(x < 100 && !v.is_empty());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    // Stable per-(test, case) seed so a failure message
                    // identifies exactly one replayable input.
                    let seed = 0xFAA5_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9);
                    let mut rng = $crate::test_runner::TestRng::new(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = move || { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: {} failed at case {case}/{cases} (seed {seed:#x})",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (0u8..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn vec_and_set_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u64..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = crate::collection::btree_set(0u64..1000, 0..10).generate(&mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn map_tuple_union() {
        let mut rng = TestRng::new(3);
        let doubled = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
            let (a, b, c) = (0u64..4, 5u64..9, 0u8..2).generate(&mut rng);
            assert!(a < 4 && (5..9).contains(&b) && c < 2);
            let u = prop_oneof![(0u64..1).prop_map(|_| 7u64), 9u64..10];
            let v = u.generate(&mut rng);
            assert!(v == 7 || v == 9);
        }
    }

    #[test]
    fn any_covers_domain() {
        let mut rng = TestRng::new(4);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..100 {
            match any::<bool>().generate(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
        }
        assert!(seen_true && seen_false);
    }

    proptest! {
        /// The macro itself: bindings, multiple args, prop_assert forms.
        #[test]
        fn macro_smoke(x in 0u64..50, v in crate::collection::vec(1u64..4, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 1).count(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
