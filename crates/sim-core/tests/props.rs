//! Property tests for the DES engine and statistics utilities.

use proptest::prelude::*;

use sim_core::engine::{Engine, Scheduler, World};
use sim_core::rng::Prng;
use sim_core::stats::{Log2Histogram, Summary};
use sim_core::time::{SimDuration, SimTime};

/// Records delivery order.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.seen.push((now.as_nanos(), ev));
    }
}

proptest! {
    /// Events are always delivered in non-decreasing time order, with
    /// FIFO tie-breaking by insertion order.
    #[test]
    fn engine_delivers_in_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut w = Recorder::default();
        let mut e: Engine<u32> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.scheduler().schedule(SimTime::from_nanos(t), i as u32);
        }
        e.run(&mut w);
        prop_assert_eq!(w.seen.len(), times.len());
        for pair in w.seen.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
        prop_assert_eq!(e.delivered(), times.len() as u64);
    }

    /// The histogram conserves count and total across arbitrary samples.
    #[test]
    fn histogram_conservation(samples in proptest::collection::vec(0u64..2_000_000, 0..300)) {
        let mut h = Log2Histogram::new();
        let mut total = 0u64;
        for &ns in &samples {
            h.record(SimDuration::from_nanos(ns));
            total += ns;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.total().as_nanos(), total);
        let bucket_sum: u64 = h.rows().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum, samples.len() as u64);
        prop_assert_eq!(h.max().as_nanos(), samples.iter().copied().max().unwrap_or(0));
    }

    /// Summary percentiles are monotone and bounded by min/max.
    #[test]
    fn summary_percentiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_iter(samples.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= last, "percentile not monotone at {}", p);
            prop_assert!(v >= s.min() && v <= s.max());
            last = v;
        }
        prop_assert!(s.mean() >= s.min() && s.mean() <= s.max());
    }

    /// Prng::below never exceeds its bound, for any seed and bound.
    #[test]
    fn prng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = Prng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Duration arithmetic is associative over addition for in-range values.
    #[test]
    fn duration_addition(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (da, db, dc) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert_eq!(da + db, db + da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - t, db);
    }
}
