//! Property tests for the DES engine and statistics utilities.

use proptest::prelude::*;

use sim_core::detmap::DetMap;
use sim_core::engine::{Engine, Scheduler, World};
use sim_core::rng::Prng;
use sim_core::stats::{Log2Histogram, Summary};
use sim_core::time::{SimDuration, SimTime};

/// Records delivery order.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.seen.push((now.as_nanos(), ev));
    }
}

/// Child events spawned mid-run get ids from here up, so they never
/// collide with initial-event ids and never spawn again themselves.
const CHILD_BASE: u32 = 1 << 20;

/// World for the wheel-vs-reference differential: handling an initial
/// event schedules its children at `now + delay`, exercising in-horizon
/// wheel inserts, past-horizon overflow, and refill on advance.
struct Spawner {
    spawns: Vec<Vec<u64>>,
    next_child: u32,
    seen: Vec<(u64, u32)>,
}

impl World for Spawner {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
        self.seen.push((now.as_nanos(), ev));
        if let Some(delays) = self.spawns.get(ev as usize) {
            for &d in delays {
                let id = CHILD_BASE + self.next_child;
                self.next_child += 1;
                s.schedule(now + SimDuration::from_nanos(d), id);
            }
        }
    }
}

/// Oracle for the engine: a plain vector popped by min `(time, seq)`,
/// with seq assigned in schedule order — the DES contract, spelled out
/// with no slab, wheel, or overflow heap anywhere near it.
fn reference_run(initial: &[u64], spawns: &[Vec<u64>]) -> Vec<(u64, u32)> {
    let mut pending: Vec<(u64, u64, u32)> = Vec::new();
    let mut seq = 0u64;
    for (i, &t) in initial.iter().enumerate() {
        pending.push((t, seq, i as u32));
        seq += 1;
    }
    let mut next_child = 0u32;
    let mut seen = Vec::new();
    while !pending.is_empty() {
        let pos = pending
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(t, s, _))| (t, s))
            .map(|(p, _)| p)
            .unwrap_or(0);
        let (t, _, ev) = pending.swap_remove(pos);
        seen.push((t, ev));
        if let Some(delays) = spawns.get(ev as usize) {
            for &d in delays {
                pending.push((t + d, seq, CHILD_BASE + next_child));
                seq += 1;
                next_child += 1;
            }
        }
    }
    seen
}

/// A timestamp either clustered tightly (forcing ties and dense wheel
/// buckets) or spread far past the wheel horizon (forcing overflow).
fn horizon_time() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..200, 0u64..200_000_000]
}

proptest! {
    /// Differential: the slab + time-wheel engine delivers the exact
    /// `(time, event)` sequence of the naive sorted-vector oracle, for
    /// schedules that mix same-tick ties, in-horizon delays, and
    /// past-horizon delays scheduled mid-run. Sequence equality also
    /// proves slab reuse never aliases a live event: every id arrives
    /// exactly once, carrying its own timestamp.
    #[test]
    fn wheel_matches_sorted_reference(
        initial in proptest::collection::vec(horizon_time(), 1..40),
        spawns in proptest::collection::vec(
            proptest::collection::vec(horizon_time(), 0..3), 1..40),
    ) {
        let mut w = Spawner { spawns: spawns.clone(), next_child: 0, seen: Vec::new() };
        let mut e: Engine<u32> = Engine::new();
        for (i, &t) in initial.iter().enumerate() {
            e.scheduler().schedule(SimTime::from_nanos(t), i as u32);
        }
        e.run(&mut w);
        let expect = reference_run(&initial, &spawns);
        prop_assert_eq!(&w.seen, &expect);
        prop_assert_eq!(e.delivered(), expect.len() as u64);
    }

    /// Events are always delivered in non-decreasing time order, with
    /// FIFO tie-breaking by insertion order.
    #[test]
    fn engine_delivers_in_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut w = Recorder::default();
        let mut e: Engine<u32> = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.scheduler().schedule(SimTime::from_nanos(t), i as u32);
        }
        e.run(&mut w);
        prop_assert_eq!(w.seen.len(), times.len());
        for pair in w.seen.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order violated");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO tie-break violated");
            }
        }
        prop_assert_eq!(e.delivered(), times.len() as u64);
    }

    /// The histogram conserves count and total across arbitrary samples.
    #[test]
    fn histogram_conservation(samples in proptest::collection::vec(0u64..2_000_000, 0..300)) {
        let mut h = Log2Histogram::new();
        let mut total = 0u64;
        for &ns in &samples {
            h.record(SimDuration::from_nanos(ns));
            total += ns;
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.total().as_nanos(), total);
        let bucket_sum: u64 = h.rows().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum, samples.len() as u64);
        prop_assert_eq!(h.max().as_nanos(), samples.iter().copied().max().unwrap_or(0));
    }

    /// Summary percentiles are monotone and bounded by min/max.
    #[test]
    fn summary_percentiles_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_iter(samples.iter().copied());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = s.percentile(p);
            prop_assert!(v >= last, "percentile not monotone at {}", p);
            prop_assert!(v >= s.min() && v <= s.max());
            last = v;
        }
        prop_assert!(s.mean() >= s.min() && s.mean() <= s.max());
    }

    /// Prng::below never exceeds its bound, for any seed and bound.
    #[test]
    fn prng_below_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = Prng::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(bound) < bound);
        }
    }

    /// Duration arithmetic is associative over addition for in-range values.
    #[test]
    fn duration_addition(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (da, db, dc) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        prop_assert_eq!((da + db) + dc, da + (db + dc));
        prop_assert_eq!(da + db, db + da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - t, db);
    }
}

/// One mutation against a `DetMap<u8, u16>` and its oracle.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    OrInsert(u8, u16),
    Remove(u8),
    RetainBelow(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::OrInsert(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
        any::<u8>().prop_map(MapOp::RetainBelow),
    ]
}

/// Applies `op` to the oracle: a vector of `(key, value)` pairs in
/// insertion order, where re-inserting an existing key updates it in
/// place and removing then re-inserting moves it to the back.
fn apply_to_model(model: &mut Vec<(u8, u16)>, op: &MapOp) {
    match *op {
        MapOp::Insert(k, v) => match model.iter_mut().find(|(mk, _)| *mk == k) {
            Some((_, mv)) => *mv = v,
            None => model.push((k, v)),
        },
        MapOp::OrInsert(k, v) => {
            if !model.iter().any(|(mk, _)| *mk == k) {
                model.push((k, v));
            }
        }
        MapOp::Remove(k) => model.retain(|(mk, _)| *mk != k),
        MapOp::RetainBelow(b) => model.retain(|(mk, _)| *mk < b),
    }
}

proptest! {
    /// DetMap is observationally an insertion-ordered association list,
    /// for EVERY hash seed: iteration order, lengths, and per-key
    /// lookups all match the seed-free oracle across random op
    /// sequences (including remove-then-reinsert, which moves the key
    /// to the back, and retain, which compacts tombstones). Holding for
    /// arbitrary seeds is the determinism claim — the seed can perturb
    /// probing internals only, never anything observable.
    #[test]
    fn detmap_matches_insertion_ordered_model(
        seed in any::<u64>(),
        ops in proptest::collection::vec(map_op(), 0..200),
    ) {
        let mut map: DetMap<u8, u16> = DetMap::with_seed(seed);
        let mut model: Vec<(u8, u16)> = Vec::new();
        for op in &ops {
            match *op {
                MapOp::Insert(k, v) => {
                    let old = model.iter().find(|(mk, _)| *mk == k).map(|&(_, mv)| mv);
                    prop_assert_eq!(map.insert(k, v), old);
                }
                MapOp::OrInsert(k, v) => {
                    let expect = model
                        .iter()
                        .find(|(mk, _)| *mk == k)
                        .map_or(v, |&(_, mv)| mv);
                    prop_assert_eq!(*map.or_insert_with(k, || v), expect);
                }
                MapOp::Remove(k) => {
                    let old = model.iter().find(|(mk, _)| *mk == k).map(|&(_, mv)| mv);
                    prop_assert_eq!(map.remove(&k), old);
                }
                MapOp::RetainBelow(b) => map.retain(|&k, _| k < b),
            }
            apply_to_model(&mut model, op);
        }
        prop_assert_eq!(map.len(), model.len());
        let got: Vec<(u8, u16)> = map.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, model.clone());
        for k in 0u8..=255 {
            let expect = model.iter().find(|(mk, _)| *mk == k).map(|&(_, mv)| mv);
            prop_assert_eq!(map.get(&k).copied(), expect);
            prop_assert_eq!(map.contains_key(&k), expect.is_some());
        }
    }
}
