//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulation clock is a monotonically non-decreasing [`SimTime`]
//! measured in nanoseconds from the start of a simulation run. Durations
//! are [`SimDuration`]s. Both are thin `u64` wrappers with saturating
//! arithmetic so that cost-model code cannot accidentally wrap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond and saturating at zero for negative input.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).max(0.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative input.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000_000.0).max(0.0).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Returns true for the zero-length duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(factor >= 0.0, "duration scale factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_nanos(1_500);
        assert_eq!(t.as_nanos(), 1_500);
        assert_eq!(t.as_micros_f64(), 1.5);
        let d = SimDuration::from_micros(2);
        assert_eq!(d.as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!((t - d).as_nanos(), 50);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::from_nanos(30)).as_nanos(), 70);
    }

    #[test]
    fn saturating_behavior() {
        let t = SimTime::from_nanos(10);
        assert_eq!((t - SimDuration::from_nanos(100)).as_nanos(), 0);
        assert_eq!(t.since(SimTime::from_nanos(100)), SimDuration::ZERO);
        let d = SimDuration::from_nanos(5);
        assert_eq!(
            d.saturating_sub(SimDuration::from_nanos(10)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimDuration::from_micros_f64(3.7).as_nanos(), 3_700);
        assert_eq!(SimDuration::from_micros_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 15_000);
        assert_eq!((d * 3).as_nanos(), 30_000);
        assert_eq!((d / 2).as_nanos(), 5_000);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_nanos(), 10_000);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) < SimDuration::from_millis(1));
    }
}
