//! Self-contained deterministic pseudo-random number generation.
//!
//! The simulation deliberately does not depend on the `rand` crate for its
//! hot paths: reproducibility of experiment output across dependency
//! upgrades matters more than statistical sophistication here. [`Prng`]
//! implements xoshiro256** (Blackman & Vigna) seeded via splitmix64, the
//! same construction used by many simulators. It is *not* cryptographic.

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed using splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zero words, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Prng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulation component its own stream.
    pub fn fork(&mut self, label: u64) -> Prng {
        Prng::new(self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Prng::below requires bound > 0");
        // Lemire-style rejection-free-enough reduction with a widening
        // multiply; bias is negligible (< 2^-32) for the bounds we use,
        // and determinism is what we care about.
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Prng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A multiplicative jitter factor in `[1 - spread, 1 + spread]`,
    /// used to give cost constants realistic variance.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.f64() * 2.0 - 1.0) * spread
    }

    /// Approximately normally distributed value (Irwin–Hall sum of 12),
    /// with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let sum: f64 = (0..12).map(|_| self.f64()).sum();
        mean + (sum - 6.0) * stddev
    }

    /// Log-normal-ish positive value with median `median`; `sigma` controls
    /// tail heaviness. Used for latency sampling.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (self.normal(0.0, sigma)).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn below_in_bounds() {
        let mut r = Prng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Prng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = Prng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn normal_moments() {
        let mut r = Prng::new(13);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = Prng::new(17);
        for _ in 0..1000 {
            let j = r.jitter(0.2);
            assert!((0.8..=1.2).contains(&j));
        }
    }

    #[test]
    fn lognormal_positive() {
        let mut r = Prng::new(19);
        for _ in 0..1000 {
            assert!(r.lognormal(5.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Prng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = Prng::new(29);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn fork_independent() {
        let mut base = Prng::new(31);
        let mut c1 = base.fork(1);
        let mut c2 = base.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Prng::new(37);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
