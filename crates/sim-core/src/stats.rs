//! Measurement utilities mirroring the paper's methodology.
//!
//! [`Log2Histogram`] reproduces the Figure 2 presentation: page-fault
//! handling times bucketed by powers of two of microseconds (0.5 µs …
//! 512 µs). [`Summary`] accumulates mean / standard deviation / min / max /
//! percentiles for run-to-run variation (the paper reports mean ± stddev of
//! 3–5 runs).

use std::fmt;

use crate::time::SimDuration;

/// A histogram with power-of-two microsecond buckets, as in Figure 2.
///
/// Bucket `i` counts samples in `[2^(i-1) µs, 2^i µs)`; bucket 0 counts
/// samples below `0.5 µs` is handled by `lo`, and samples at or above the
/// top edge land in `hi`.
#[derive(Clone, Debug, Default)]
pub struct Log2Histogram {
    /// Count below the first edge (0.5 µs).
    lo: u64,
    /// Counts for [0.5,1), [1,2), [2,4), ... [256,512) µs.
    buckets: [u64; 11],
    /// Count at or above 512 µs.
    hi: u64,
    total_ns: u64,
    count: u64,
    max_ns: u64,
}

impl Log2Histogram {
    /// Bucket edges in microseconds, matching Figure 2's x ticks.
    pub const EDGES_US: [f64; 12] = [
        0.5,
        1.0,
        2.0,
        4.0,
        8.0,
        16.0,
        32.0,
        64.0,
        128.0,
        256.0,
        512.0,
        f64::INFINITY,
    ];

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.total_ns += ns;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
        let us = ns as f64 / 1000.0;
        if us < 0.5 {
            self.lo += 1;
        } else if us >= 512.0 {
            self.hi += 1;
        } else {
            // First bucket edge is 0.5 µs = 2^-1.
            let idx = (us.log2().floor() as i32 + 1).clamp(0, 10) as usize;
            self.buckets[idx] += 1;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(self.total_ns)
    }

    /// Mean sample, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        match self.total_ns.checked_div(self.count) {
            Some(ns) => SimDuration::from_nanos(ns),
            None => SimDuration::ZERO,
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Fraction of samples at or above `edge_us` microseconds (computed
    /// from bucket boundaries; `edge_us` must be one of [`Self::EDGES_US`]).
    pub fn fraction_at_or_above(&self, edge_us: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = self.hi;
        for (i, &e) in Self::EDGES_US[..11].iter().enumerate() {
            if e >= edge_us {
                above += self.buckets[i];
            }
        }
        above as f64 / self.count as f64
    }

    /// Percentile estimate in microseconds from the bucket counts
    /// (nearest-rank over the cumulative distribution). The estimate is
    /// conservative: it reports the *upper* edge of the bucket holding
    /// the ranked sample, so an SLO check against it can only
    /// over-count, never under-count, slow samples. Ranks landing below
    /// the first edge report that edge (0.5); ranks landing in the
    /// open-ended top bucket report the largest recorded sample.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = self.lo;
        if rank < seen {
            return Self::EDGES_US[0];
        }
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if rank < seen {
                return Self::EDGES_US[i + 1];
            }
        }
        self.max_ns as f64 / 1000.0
    }

    /// Returns `(label, count)` rows for display, matching Figure 2's bars.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![("<0.5us".to_string(), self.lo)];
        for i in 0..11 {
            let lo = Self::EDGES_US[i];
            let hi = Self::EDGES_US[i + 1];
            rows.push((format!("[{lo},{hi})us"), self.buckets[i]));
        }
        rows.push((">=512us".to_string(), self.hi));
        rows
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.lo += other.lo;
        self.hi += other.hi;
        for i in 0..11 {
            self.buckets[i] += other.buckets[i];
        }
        self.total_ns += other.total_ns;
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl fmt::Display for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>14} {:>10}", "bucket", "count")?;
        for (label, count) in self.rows() {
            if count > 0 {
                writeln!(f, "{label:>14} {count:>10}")?;
            }
        }
        write!(
            f,
            "n={} mean={} total={}",
            self.count,
            self.mean(),
            self.total()
        )
    }
}

/// Accumulates scalar samples and reports summary statistics.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Records a duration in milliseconds.
    pub fn record_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or 0 if fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        (self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / self.samples.len() as f64)
            .sqrt()
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// Percentile via nearest-rank on a sorted copy (p in [0, 100]).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (nearest-rank). The shared implementation behind bench
    /// tables and fleet metrics.
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// 95th percentile (nearest-rank).
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// 99th percentile (nearest-rank).
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// All samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary {
            samples: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} +/- {:.2} (n={})",
            self.mean(),
            self.stddev(),
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> SimDuration {
        SimDuration::from_micros_f64(v)
    }

    #[test]
    fn histogram_bucket_assignment() {
        let mut h = Log2Histogram::new();
        h.record(us(0.3)); // lo
        h.record(us(0.5)); // [0.5,1)
        h.record(us(0.9)); // [0.5,1)
        h.record(us(1.0)); // [1,2)
        h.record(us(3.7)); // [2,4)
        h.record(us(31.9)); // [16,32)
        h.record(us(32.0)); // [32,64)
        h.record(us(600.0)); // hi
        let rows = h.rows();
        assert_eq!(rows[0].1, 1, "lo");
        assert_eq!(rows[1].1, 2, "[0.5,1)");
        assert_eq!(rows[2].1, 1, "[1,2)");
        assert_eq!(rows[3].1, 1, "[2,4)");
        assert_eq!(rows[6].1, 1, "[16,32)");
        assert_eq!(rows[7].1, 1, "[32,64)");
        assert_eq!(rows[12].1, 1, "hi");
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_fraction_above() {
        let mut h = Log2Histogram::new();
        for _ in 0..91 {
            h.record(us(3.0));
        }
        for _ in 0..9 {
            h.record(us(100.0));
        }
        let f = h.fraction_at_or_above(32.0);
        assert!((f - 0.09).abs() < 1e-9, "got {f}");
    }

    #[test]
    fn histogram_mean_total_max() {
        let mut h = Log2Histogram::new();
        h.record(us(2.0));
        h.record(us(4.0));
        assert_eq!(h.mean().as_nanos(), 3_000);
        assert_eq!(h.total().as_nanos(), 6_000);
        assert_eq!(h.max().as_nanos(), 4_000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(us(1.0));
        b.record(us(1.0));
        b.record(us(700.0));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.rows()[2].1, 2);
        assert_eq!(a.rows()[12].1, 1);
    }

    #[test]
    fn histogram_empty() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.fraction_at_or_above(32.0), 0.0);
    }

    #[test]
    fn histogram_zero_and_one_sample() {
        let zero = Log2Histogram::new();
        assert_eq!(zero.total(), SimDuration::ZERO);
        assert_eq!(zero.max(), SimDuration::ZERO);
        assert!(zero.rows().iter().all(|(_, c)| *c == 0));

        let mut one = Log2Histogram::new();
        one.record(us(5.0));
        assert_eq!(one.count(), 1);
        assert_eq!(one.mean().as_nanos(), 5_000);
        assert_eq!(one.max().as_nanos(), 5_000);
        assert_eq!(one.rows()[4].1, 1, "[4,8)");
        assert_eq!(one.fraction_at_or_above(4.0), 1.0);
        assert_eq!(one.fraction_at_or_above(8.0), 0.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Samples exactly on edges land in the bucket whose lower edge
        // they hit (intervals are half-open [lo, hi)).
        let mut h = Log2Histogram::new();
        h.record(us(0.5));
        h.record(us(256.0));
        h.record(us(511.999));
        h.record(us(512.0));
        let rows = h.rows();
        assert_eq!(rows[1].1, 1, "[0.5,1) holds 0.5");
        assert_eq!(rows[10].1, 2, "[256,512) holds 256.0 and 511.999");
        assert_eq!(rows[12].1, 1, ">=512 holds 512.0");
    }

    #[test]
    fn histogram_merge_disjoint() {
        // Merging histograms with non-overlapping buckets preserves every
        // count, the total, and the max.
        let mut lo = Log2Histogram::new();
        lo.record(us(0.1));
        lo.record(us(0.7));
        let mut hi = Log2Histogram::new();
        hi.record(us(100.0));
        hi.record(us(900.0));
        lo.merge(&hi);
        assert_eq!(lo.count(), 4);
        assert_eq!(lo.rows()[0].1, 1, "lo bucket kept");
        assert_eq!(lo.rows()[1].1, 1, "[0.5,1) kept");
        assert_eq!(lo.rows()[8].1, 1, "[64,128) from other");
        assert_eq!(lo.rows()[12].1, 1, "hi from other");
        assert_eq!(lo.max().as_nanos(), 900_000);
        assert_eq!(lo.total().as_nanos(), 1_000_800);
        // Merging an empty histogram is the identity.
        let snapshot = lo.rows();
        lo.merge(&Log2Histogram::new());
        assert_eq!(lo.rows(), snapshot);
        assert_eq!(lo.count(), 4);
    }

    #[test]
    fn histogram_percentile_at_bucket_boundaries() {
        // Samples sitting exactly on edges: the estimate must report the
        // upper edge of the half-open bucket each one landed in.
        let mut h = Log2Histogram::new();
        for _ in 0..50 {
            h.record(us(0.5)); // [0.5, 1)
        }
        for _ in 0..50 {
            h.record(us(256.0)); // [256, 512)
        }
        assert_eq!(h.percentile_us(0.0), 1.0, "p0 upper edge of [0.5,1)");
        assert_eq!(h.percentile_us(25.0), 1.0);
        assert_eq!(h.percentile_us(75.0), 512.0, "upper edge of [256,512)");
        assert_eq!(h.percentile_us(100.0), 512.0);
    }

    #[test]
    fn histogram_percentile_lo_hi_and_empty() {
        assert_eq!(Log2Histogram::new().percentile_us(50.0), 0.0);
        let mut h = Log2Histogram::new();
        h.record(us(0.1)); // below first edge
        assert_eq!(h.percentile_us(50.0), 0.5, "lo ranks report first edge");
        let mut h = Log2Histogram::new();
        h.record(us(3000.0)); // >= 512 — open-ended top bucket
        assert_eq!(h.percentile_us(50.0), 3000.0, "hi ranks report the max");
        // A mix: the p100 rank lands in hi and reports the true max, not
        // an edge.
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(us(4.0));
        }
        h.record(us(700.0));
        assert_eq!(h.percentile_us(50.0), 8.0);
        assert_eq!(h.percentile_us(100.0), 700.0);
    }

    #[test]
    fn histogram_merge_is_associative() {
        let mk = |samples: &[f64]| {
            let mut h = Log2Histogram::new();
            for &s in samples {
                h.record(us(s));
            }
            h
        };
        let (a, b, c) = (
            mk(&[0.2, 0.5, 3.0]),
            mk(&[3.9, 4.0, 900.0]),
            mk(&[64.0, 511.9, 0.6]),
        );
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.rows(), right.rows());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.total(), right.total());
        assert_eq!(left.max(), right.max());
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(left.percentile_us(p), right.percentile_us(p), "p{p}");
        }
    }

    #[test]
    fn summary_fixed_percentiles() {
        let s = Summary::from_iter((1..=100).map(|x| x as f64));
        assert_eq!(s.p50(), s.percentile(50.0));
        assert_eq!(s.p95(), s.percentile(95.0));
        assert_eq!(s.p99(), s.percentile(99.0));
        assert!(s.p50() < s.p95() && s.p95() < s.p99());
    }

    #[test]
    fn summary_basic_stats() {
        let s = Summary::from_iter([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert!((s.stddev() - 1.118).abs() < 1e-3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_iter((1..=100).map(|x| x as f64));
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let p50 = s.percentile(50.0);
        assert!((49.0..=51.0).contains(&p50));
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.stddev(), 0.0);
        assert_eq!(e.percentile(50.0), 0.0);
        let s = Summary::from_iter([7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn summary_display() {
        let s = Summary::from_iter([1.0, 3.0]);
        assert_eq!(format!("{s}"), "2.00 +/- 1.00 (n=2)");
    }
}
