//! Generic discrete-event simulation engine.
//!
//! The engine owns a priority queue of `(time, sequence, event)` entries and
//! repeatedly delivers the earliest event to a user-supplied world. Ties in
//! time are broken by insertion order (FIFO), which makes runs fully
//! deterministic.
//!
//! Components of a simulation are *passive* state machines; only the world
//! type knows the event enum and wires components together:
//!
//! ```
//! use sim_core::engine::{Engine, Scheduler, World};
//! use sim_core::time::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_after(now, SimDuration::from_micros(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: 0 };
//! let mut engine = Engine::new();
//! engine.scheduler().schedule(SimTime::ZERO, Ev::Tick);
//! let end = engine.run(&mut world);
//! assert_eq!(world.fired, 3);
//! assert_eq!(end.as_nanos(), 20_000);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A simulation world: owns all component state and interprets events.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handles one event at simulated instant `now`, optionally scheduling
    /// follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// An entry in the event queue. Ordered by `(time, seq)`.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Self-statistics of one engine run: how much work the simulator itself
/// did, independent of what the simulated system did. Harvested by the
/// faasnap-obs self-profiler (sim-core sits below it in the crate DAG, so
/// this is a plain value type rather than a profiler handle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered to the world.
    pub delivered: u64,
    /// Events ever scheduled (delivered + still pending + dropped).
    pub scheduled: u64,
    /// High-water mark of the pending-event queue.
    pub peak_pending: u64,
}

/// The pending-event queue, exposed to event handlers for scheduling.
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    scheduled: u64,
    peak_pending: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled: 0,
            peak_pending: 0,
        }
    }

    /// Schedules `event` at absolute instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
        self.peak_pending = self.peak_pending.max(self.heap.len() as u64);
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule(now + delay, event);
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// High-water mark of the pending-event queue.
    pub fn peak_pending(&self) -> u64 {
        self.peak_pending
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }
}

/// The discrete-event engine: a clock plus a scheduler.
pub struct Engine<E> {
    scheduler: Scheduler<E>,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue at time zero.
    pub fn new() -> Self {
        Engine {
            scheduler: Scheduler::new(),
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Access to the scheduler, e.g. for seeding initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.scheduler
    }

    /// Self-statistics of the run so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            delivered: self.delivered,
            scheduled: self.scheduler.scheduled,
            peak_pending: self.scheduler.peak_pending,
        }
    }

    /// Runs until the event queue is empty. Returns the final clock value.
    ///
    /// # Panics
    ///
    /// Panics if an event is scheduled in the past (a bug in the world),
    /// since that would silently corrupt causality.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`. Events exactly at `deadline` are delivered.
    pub fn run_until<W: World<Event = E>>(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while self
            .scheduler
            .peek_time()
            .is_some_and(|next| next <= deadline)
        {
            let Some((time, event)) = self.scheduler.pop() else {
                break;
            };
            assert!(
                time >= self.now,
                "event scheduled in the past: {time} < {}",
                self.now
            );
            self.now = time;
            self.delivered += 1;
            world.handle(time, event, &mut self.scheduler);
        }
        self.now
    }

    /// Delivers exactly one event if any is pending. Returns the delivered
    /// event time, or `None` if the queue was empty.
    pub fn step<W: World<Event = E>>(&mut self, world: &mut W) -> Option<SimTime> {
        let (time, event) = self.scheduler.pop()?;
        assert!(time >= self.now, "event scheduled in the past");
        self.now = time;
        self.delivered += 1;
        world.handle(time, event, &mut self.scheduler);
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A(u32),
        B,
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, Ev)>,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            self.log.push((now.as_nanos(), ev));
            if let Ev::A(n) = ev {
                if n > 0 {
                    sched.schedule_after(now, SimDuration::from_nanos(5), Ev::A(n - 1));
                }
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(30), Ev::B);
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(0));
        e.scheduler().schedule(SimTime::from_nanos(20), Ev::B);
        e.run(&mut w);
        let times: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(0));
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::B);
        e.run(&mut w);
        assert_eq!(w.log, vec![(10, Ev::A(0)), (10, Ev::B)]);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::ZERO, Ev::A(3));
        let end = e.run(&mut w);
        assert_eq!(end.as_nanos(), 15);
        assert_eq!(w.log.len(), 4);
        assert_eq!(e.delivered(), 4);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        for t in [5u64, 10, 15] {
            e.scheduler().schedule(SimTime::from_nanos(t), Ev::B);
        }
        e.run_until(&mut w, SimTime::from_nanos(10));
        assert_eq!(w.log.len(), 2);
        assert_eq!(e.scheduler().pending(), 1);
        // Resume to completion.
        e.run(&mut w);
        assert_eq!(w.log.len(), 3);
    }

    #[test]
    fn step_delivers_one() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(7), Ev::B);
        assert_eq!(e.step(&mut w), Some(SimTime::from_nanos(7)));
        assert_eq!(e.step(&mut w), None);
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_event_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                // Schedule behind the clock: must be rejected.
                sched.schedule(now - SimDuration::from_nanos(1), ());
            }
        }
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(10), ());
        e.run(&mut Bad);
    }

    #[test]
    fn stats_track_delivered_scheduled_peak() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        // Three seeded events → peak queue depth 3; A(2) chains two more.
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(2));
        e.scheduler().schedule(SimTime::from_nanos(20), Ev::B);
        e.scheduler().schedule(SimTime::from_nanos(30), Ev::B);
        e.run(&mut w);
        let stats = e.stats();
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.scheduled, 5);
        assert_eq!(stats.peak_pending, 3);
        assert_eq!(e.scheduler().peak_pending(), 3);
    }

    #[test]
    fn determinism_same_program_same_log() {
        let run = || {
            let mut w = Recorder::default();
            let mut e = Engine::new();
            e.scheduler().schedule(SimTime::ZERO, Ev::A(10));
            e.scheduler().schedule(SimTime::from_nanos(3), Ev::B);
            e.run(&mut w);
            w.log
        };
        assert_eq!(run(), run());
    }
}
