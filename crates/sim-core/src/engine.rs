//! Generic discrete-event simulation engine.
//!
//! The engine owns a pending-event queue of `(time, sequence, event)`
//! entries and repeatedly delivers the earliest event to a user-supplied
//! world. Ties in time are broken by insertion order (FIFO), which makes
//! runs fully deterministic.
//!
//! Internally the queue is a two-level structure tuned for million-event
//! fleet runs (see DESIGN.md "Engine performance"):
//!
//! - event payloads live in a **slab** (`Vec` + free list), so the queue
//!   machinery moves fixed-size 24-byte tickets instead of whole events;
//! - near-future tickets go into a **bucketed time wheel**: a ring of
//!   `NBUCKETS` unsorted buckets of `1 << GRAN_LOG2` ns each, with an
//!   occupancy bitmap to skip empty buckets. A bucket is sorted once,
//!   when the clock reaches it — O(k log k) for k tickets instead of
//!   per-event heap sifting;
//! - far-future tickets (beyond the wheel horizon) overflow into a
//!   `BinaryHeap` and migrate into the wheel as it advances.
//!
//! The total delivery order is exactly the `(time, seq)` lexicographic
//! order of the old pure-heap implementation: the three tiers partition
//! the time axis (`drained < wheel < overflow`), and each tier yields
//! entries in `(time, seq)` order. Every golden artifact stays
//! byte-identical across the swap.
//!
//! Components of a simulation are *passive* state machines; only the world
//! type knows the event enum and wires components together:
//!
//! ```
//! use sim_core::engine::{Engine, Scheduler, World};
//! use sim_core::time::{SimDuration, SimTime};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             sched.schedule_after(now, SimDuration::from_micros(10), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: 0 };
//! let mut engine = Engine::new();
//! engine.scheduler().schedule(SimTime::ZERO, Ev::Tick);
//! let end = engine.run(&mut world);
//! assert_eq!(world.fired, 3);
//! assert_eq!(end.as_nanos(), 20_000);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A simulation world: owns all component state and interprets events.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handles one event at simulated instant `now`, optionally scheduling
    /// follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// log2 of the wheel bucket width in nanoseconds (65.536 µs per bucket).
const GRAN_LOG2: u32 = 16;
/// Number of wheel buckets; the wheel horizon is `NBUCKETS << GRAN_LOG2`
/// ns (~67 ms) ahead of the drain point.
const NBUCKETS: usize = 1024;
const OCC_WORDS: usize = NBUCKETS / 64;

/// A queue ticket: when and in what order to deliver, plus the slab slot
/// holding the event payload. 24 bytes, `Copy`-cheap to sort.
#[derive(Clone, Copy)]
struct Ticket {
    /// Delivery time in nanoseconds.
    time: u64,
    /// Global FIFO sequence number (unique — ties are impossible).
    seq: u64,
    /// Slab slot of the event payload.
    slot: u32,
}

impl Ticket {
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

/// Slab allocator for event payloads: stable `u32` slots, free-list reuse,
/// no per-event heap allocation after warm-up.
struct Slab<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn alloc(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(event);
                i
            }
            None => {
                self.slots.push(Some(event));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Frees `slot` and returns its payload. A slot is pushed onto the
    /// free list only when it actually held a live event, so double-frees
    /// cannot alias a later allocation.
    fn take(&mut self, slot: u32) -> Option<E> {
        let e = self.slots[slot as usize].take();
        if e.is_some() {
            self.free.push(slot);
        }
        e
    }
}

/// Self-statistics of one engine run: how much work the simulator itself
/// did, independent of what the simulated system did. Harvested by the
/// faasnap-obs self-profiler (sim-core sits below it in the crate DAG, so
/// this is a plain value type rather than a profiler handle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered to the world.
    pub delivered: u64,
    /// Events ever scheduled (delivered + still pending + dropped).
    pub scheduled: u64,
    /// High-water mark of the pending-event queue.
    pub peak_pending: u64,
}

/// The pending-event queue, exposed to event handlers for scheduling.
///
/// Three tiers partition the time axis, each internally `(time, seq)`-
/// ordered, so the global pop order is the exact lexicographic order:
///
/// - `current`: tickets before `wheel_start` (the already-drained window),
///   kept sorted descending so the next event pops from the back;
/// - `buckets`: the wheel window `[wheel_start, wheel_start + horizon)`,
///   unsorted per bucket, sorted on drain;
/// - `overflow`: a min-heap of everything at or beyond the horizon.
pub struct Scheduler<E> {
    slab: Slab<E>,
    /// Drained window, sorted descending by `(time, seq)`; global minimum
    /// is at the back.
    current: Vec<Ticket>,
    /// Ring of unsorted buckets covering the wheel window.
    buckets: Vec<Vec<Ticket>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; OCC_WORDS],
    /// Tickets currently in wheel buckets.
    wheel_len: usize,
    /// Start of the wheel window in ns; `cursor`'s bucket covers
    /// `[wheel_start, wheel_start + bucket width)`. Everything in
    /// `current` is strictly before `wheel_start`.
    wheel_start: u64,
    /// Ring index of the bucket at `wheel_start`.
    cursor: usize,
    /// Min-heap of tickets at or beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Total pending tickets across all tiers.
    len: usize,
    seq: u64,
    scheduled: u64,
    peak_pending: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            slab: Slab::new(),
            current: Vec::new(),
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; OCC_WORDS],
            wheel_len: 0,
            wheel_start: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
            scheduled: 0,
            peak_pending: 0,
        }
    }

    /// Schedules `event` at absolute instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let time = at.as_nanos();
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        let slot = self.slab.alloc(event);
        if self.len == 0 {
            // Everything is empty: re-anchor the wheel window at `time` so
            // sparse simulations never walk dead buckets.
            self.wheel_start = time & !((1u64 << GRAN_LOG2) - 1);
            self.cursor = 0;
        }
        let ticket = Ticket { time, seq, slot };
        if time < self.wheel_start {
            // Into the already-drained window (including behind-the-clock
            // events — the engine panics on those at delivery, exactly as
            // the old heap did). Keep the drain buffer ordered.
            let pos = self.current.partition_point(|t| t.key() > ticket.key());
            self.current.insert(pos, ticket);
        } else {
            let d = (time - self.wheel_start) >> GRAN_LOG2;
            if (d as usize) < NBUCKETS {
                self.push_bucket(d as usize, ticket);
            } else {
                self.overflow.push(Reverse((time, seq, slot)));
            }
        }
        self.len += 1;
        self.peak_pending = self.peak_pending.max(self.len as u64);
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, now: SimTime, delay: SimDuration, event: E) {
        self.schedule(now + delay, event);
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.len
    }

    /// Total number of events ever scheduled.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// High-water mark of the pending-event queue.
    pub fn peak_pending(&self) -> u64 {
        self.peak_pending
    }

    fn push_bucket(&mut self, distance: usize, ticket: Ticket) {
        let b = (self.cursor + distance) & (NBUCKETS - 1);
        self.buckets[b].push(ticket);
        self.occupied[b >> 6] |= 1u64 << (b & 63);
        self.wheel_len += 1;
    }

    /// Pops the earliest event if its time is `<= limit`.
    fn pop_at_most(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let limit = limit.as_nanos();
        loop {
            match self.current.last() {
                Some(t) if t.time > limit => return None,
                Some(_) => {
                    let t = self.current.pop()?;
                    self.len -= 1;
                    match self.slab.take(t.slot) {
                        Some(event) => return Some((SimTime::from_nanos(t.time), event)),
                        None => panic!("scheduler: queued ticket lost its slab payload"),
                    }
                }
                None => {
                    if self.len == 0 {
                        return None;
                    }
                    self.advance();
                }
            }
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_most(SimTime::MAX)
    }

    /// Moves the wheel forward to the next occupied bucket and drains it
    /// into `current` (refilling the wheel from `overflow` first when it
    /// has run dry). Does not deliver anything by itself.
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        if self.wheel_len == 0 {
            // The window is exhausted: jump it to the earliest overflow
            // ticket and pull everything inside the new horizon back in.
            let Some(&Reverse((t0, _, _))) = self.overflow.peek() else {
                debug_assert!(false, "pending tickets but every tier is empty");
                return;
            };
            self.wheel_start = t0 & !((1u64 << GRAN_LOG2) - 1);
            self.cursor = 0;
            self.refill_from_overflow();
        }
        let d = self.next_occupied_distance();
        let b = (self.cursor + d) & (NBUCKETS - 1);
        // Recycle the empty drain buffer's allocation as the new bucket.
        std::mem::swap(&mut self.current, &mut self.buckets[b]);
        self.occupied[b >> 6] &= !(1u64 << (b & 63));
        self.wheel_len -= self.current.len();
        // Sort descending: the earliest `(time, seq)` pops from the back.
        self.current
            .sort_unstable_by_key(|t| std::cmp::Reverse(t.key()));
        self.wheel_start += ((d as u64) + 1) << GRAN_LOG2;
        self.cursor = (b + 1) & (NBUCKETS - 1);
        // The window advanced: overflow tickets may now fall inside it.
        self.refill_from_overflow();
    }

    /// Migrates overflow tickets that now fall inside the wheel window.
    fn refill_from_overflow(&mut self) {
        while let Some(&Reverse((time, _, _))) = self.overflow.peek() {
            debug_assert!(time >= self.wheel_start);
            let d = (time - self.wheel_start) >> GRAN_LOG2;
            if (d as usize) >= NBUCKETS {
                break;
            }
            let Some(Reverse((time, seq, slot))) = self.overflow.pop() else {
                break;
            };
            self.push_bucket(d as usize, Ticket { time, seq, slot });
        }
    }

    /// Index distance from `cursor` to the nearest occupied bucket.
    fn next_occupied_distance(&self) -> usize {
        debug_assert!(self.wheel_len > 0);
        let word0 = self.cursor >> 6;
        let bit0 = self.cursor & 63;
        for i in 0..=OCC_WORDS {
            let w = (word0 + i) % OCC_WORDS;
            let mut bits = self.occupied[w];
            if i == 0 {
                bits &= !0u64 << bit0;
            } else if i == OCC_WORDS {
                bits &= !(!0u64 << bit0);
            }
            if bits != 0 {
                let b = (w << 6) + bits.trailing_zeros() as usize;
                return (b + NBUCKETS - self.cursor) & (NBUCKETS - 1);
            }
        }
        panic!("scheduler: wheel_len > 0 but no occupied bucket")
    }
}

/// The discrete-event engine: a clock plus a scheduler.
pub struct Engine<E> {
    scheduler: Scheduler<E>,
    now: SimTime,
    delivered: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue at time zero.
    pub fn new() -> Self {
        Engine {
            scheduler: Scheduler::new(),
            now: SimTime::ZERO,
            delivered: 0,
        }
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Access to the scheduler, e.g. for seeding initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<E> {
        &mut self.scheduler
    }

    /// Self-statistics of the run so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            delivered: self.delivered,
            scheduled: self.scheduler.scheduled,
            peak_pending: self.scheduler.peak_pending,
        }
    }

    /// Runs until the event queue is empty. Returns the final clock value.
    ///
    /// # Panics
    ///
    /// Panics if an event is scheduled in the past (a bug in the world),
    /// since that would silently corrupt causality.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W) -> SimTime {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until the queue is empty or the next event is later than
    /// `deadline`. Events exactly at `deadline` are delivered.
    pub fn run_until<W: World<Event = E>>(&mut self, world: &mut W, deadline: SimTime) -> SimTime {
        while let Some((time, event)) = self.scheduler.pop_at_most(deadline) {
            assert!(
                time >= self.now,
                "event scheduled in the past: {time} < {}",
                self.now
            );
            self.now = time;
            self.delivered += 1;
            world.handle(time, event, &mut self.scheduler);
        }
        self.now
    }

    /// Delivers exactly one event if any is pending. Returns the delivered
    /// event time, or `None` if the queue was empty.
    pub fn step<W: World<Event = E>>(&mut self, world: &mut W) -> Option<SimTime> {
        let (time, event) = self.scheduler.pop()?;
        assert!(time >= self.now, "event scheduled in the past");
        self.now = time;
        self.delivered += 1;
        world.handle(time, event, &mut self.scheduler);
        Some(time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A(u32),
        B,
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<(u64, Ev)>,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            self.log.push((now.as_nanos(), ev));
            if let Ev::A(n) = ev {
                if n > 0 {
                    sched.schedule_after(now, SimDuration::from_nanos(5), Ev::A(n - 1));
                }
            }
        }
    }

    #[test]
    fn delivers_in_time_order() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(30), Ev::B);
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(0));
        e.scheduler().schedule(SimTime::from_nanos(20), Ev::B);
        e.run(&mut w);
        let times: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(0));
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::B);
        e.run(&mut w);
        assert_eq!(w.log, vec![(10, Ev::A(0)), (10, Ev::B)]);
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::ZERO, Ev::A(3));
        let end = e.run(&mut w);
        assert_eq!(end.as_nanos(), 15);
        assert_eq!(w.log.len(), 4);
        assert_eq!(e.delivered(), 4);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        for t in [5u64, 10, 15] {
            e.scheduler().schedule(SimTime::from_nanos(t), Ev::B);
        }
        e.run_until(&mut w, SimTime::from_nanos(10));
        assert_eq!(w.log.len(), 2);
        assert_eq!(e.scheduler().pending(), 1);
        // Resume to completion.
        e.run(&mut w);
        assert_eq!(w.log.len(), 3);
    }

    #[test]
    fn step_delivers_one() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(7), Ev::B);
        assert_eq!(e.step(&mut w), Some(SimTime::from_nanos(7)));
        assert_eq!(e.step(&mut w), None);
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn past_event_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                // Schedule behind the clock: must be rejected.
                sched.schedule(now - SimDuration::from_nanos(1), ());
            }
        }
        let mut e = Engine::new();
        e.scheduler().schedule(SimTime::from_nanos(10), ());
        e.run(&mut Bad);
    }

    #[test]
    fn stats_track_delivered_scheduled_peak() {
        let mut w = Recorder::default();
        let mut e = Engine::new();
        // Three seeded events → peak queue depth 3; A(2) chains two more.
        e.scheduler().schedule(SimTime::from_nanos(10), Ev::A(2));
        e.scheduler().schedule(SimTime::from_nanos(20), Ev::B);
        e.scheduler().schedule(SimTime::from_nanos(30), Ev::B);
        e.run(&mut w);
        let stats = e.stats();
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.scheduled, 5);
        assert_eq!(stats.peak_pending, 3);
        assert_eq!(e.scheduler().peak_pending(), 3);
    }

    #[test]
    fn determinism_same_program_same_log() {
        let run = || {
            let mut w = Recorder::default();
            let mut e = Engine::new();
            e.scheduler().schedule(SimTime::ZERO, Ev::A(10));
            e.scheduler().schedule(SimTime::from_nanos(3), Ev::B);
            e.run(&mut w);
            w.log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // Spread events far past the wheel horizon (~67 ms) so they take
        // the overflow-heap path, interleaved with near events.
        let mut w = Recorder::default();
        let mut e = Engine::new();
        let horizon = (NBUCKETS as u64) << GRAN_LOG2;
        let times = [
            1u64,
            horizon / 2,
            horizon + 7,
            3 * horizon,
            10 * horizon + 13,
            2,
        ];
        // Payload 0 so the Recorder schedules no follow-up chains.
        for &t in &times {
            e.scheduler().schedule(SimTime::from_nanos(t), Ev::A(0));
        }
        e.run(&mut w);
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let got: Vec<u64> = w.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(got, sorted);
    }

    #[test]
    fn equal_times_across_horizon_keep_fifo() {
        // Two batches at the same instant: one scheduled while the instant
        // is beyond the horizon (overflow), one after the wheel advanced
        // close enough to hold it (bucket). FIFO order must survive the
        // migration between tiers.
        let mut w = Recorder::default();
        let mut e = Engine::new();
        let horizon = (NBUCKETS as u64) << GRAN_LOG2;
        let t_far = 2 * horizon + 5;
        e.scheduler().schedule(SimTime::from_nanos(t_far), Ev::A(0));
        // A chain of near events walks the wheel forward past `horizon`,
        // then schedules another event at the same far instant.
        struct Walker {
            t_far: u64,
            log: Vec<(u64, Ev)>,
        }
        impl World for Walker {
            type Event = Ev;
            fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
                self.log.push((now.as_nanos(), ev));
                if let Ev::A(n) = ev {
                    if n > 0 {
                        sched.schedule_after(
                            now,
                            SimDuration::from_nanos(self.t_far / 8),
                            Ev::A(n - 1),
                        );
                    } else if now.as_nanos() < self.t_far {
                        sched.schedule(SimTime::from_nanos(self.t_far), Ev::B);
                    }
                }
            }
        }
        let mut walker = Walker {
            t_far,
            log: Vec::new(),
        };
        e.scheduler().schedule(SimTime::ZERO, Ev::A(6));
        e.run(&mut walker);
        w.log = walker.log;
        let at_far: Vec<Ev> = w
            .log
            .iter()
            .filter(|(t, _)| *t == t_far)
            .map(|(_, ev)| *ev)
            .collect();
        // A(0) was scheduled first (seq 0), B second — FIFO preserved.
        assert_eq!(at_far, vec![Ev::A(0), Ev::B]);
    }

    #[test]
    fn slab_slots_are_reused_without_aliasing() {
        // Schedule/deliver in waves; pending() and payload integrity prove
        // freed slots never alias live events.
        #[derive(Default)]
        struct Echo {
            got: Vec<u64>,
        }
        impl World for Echo {
            type Event = u64;
            fn handle(&mut self, _now: SimTime, ev: u64, _s: &mut Scheduler<u64>) {
                self.got.push(ev);
            }
        }
        let mut w = Echo::default();
        let mut e = Engine::new();
        for wave in 0u64..50 {
            for i in 0u64..20 {
                let t = wave * 1000 + i;
                e.scheduler().schedule(SimTime::from_nanos(t), t);
            }
            e.run(&mut w);
            assert_eq!(e.scheduler().pending(), 0);
        }
        assert_eq!(w.got.len(), 1000);
        for (i, &v) in w.got.iter().enumerate() {
            assert_eq!(v, (i as u64 / 20) * 1000 + (i as u64 % 20));
        }
    }
}
