//! Deterministic insertion-ordered hash containers.
//!
//! [`DetMap`] is an open-addressing hash map whose *observable* behavior —
//! iteration order, lookup results, and therefore every simulation artifact
//! derived from it — is independent of the hash seed: iteration yields
//! entries in insertion order (like `indexmap`), never in bucket order. The
//! seed only perturbs the private probe sequence, so two maps built by the
//! same operation sequence are observationally identical even with
//! different seeds.
//!
//! This is the sanctioned replacement for `BTreeMap` on simulation hot
//! paths: `O(1)` expected lookup/insert/remove instead of `O(log n)`
//! pointer-chasing, with none of `std::collections::HashMap`'s
//! `RandomState` nondeterminism (the `no-unordered-iteration` lint bans
//! that outright). Zero external dependencies.
//!
//! Design:
//! - `entries`: insertion-ordered `Vec<Option<(K, V)>>`; removal leaves a
//!   `None` hole so earlier indices stay stable. Holes are compacted away
//!   once they outnumber live entries.
//! - `index`: power-of-two open-addressing table of `u32` entry indices
//!   with linear probing and tombstones, rebuilt on growth/compaction.
//! - hashing: a seeded FNV-style byte hasher finished with a splitmix64
//!   mix; `usize` writes are widened to `u64` so layouts agree across
//!   platforms.

use std::hash::{Hash, Hasher};

const EMPTY: u32 = u32::MAX;
const TOMB: u32 = u32::MAX - 1;
/// Largest entry index representable in the index table.
const MAX_ENTRY: u32 = u32::MAX - 2;

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded deterministic hasher: FNV-1a over bytes, splitmix64 finish.
struct DetHasher {
    state: u64,
}

impl DetHasher {
    fn with_seed(seed: u64) -> Self {
        DetHasher {
            state: splitmix64(seed),
        }
    }
}

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }
    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state ^ n).wrapping_mul(SPLITMIX_GAMMA) ^ (self.state >> 29);
    }
    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
    fn write_i8(&mut self, n: i8) {
        self.write_u64(n as u8 as u64);
    }
    fn write_i16(&mut self, n: i16) {
        self.write_u64(n as u16 as u64);
    }
    fn write_i32(&mut self, n: i32) {
        self.write_u64(n as u32 as u64);
    }
    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }
    fn write_i128(&mut self, n: i128) {
        self.write_u128(n as u128);
    }
    fn write_isize(&mut self, n: isize) {
        self.write_u64(n as u64);
    }
}

/// A seeded, insertion-ordered, deterministic hash map.
///
/// Iteration order is the order keys were (most recently) inserted;
/// overwriting an existing key keeps its original position, while
/// remove + reinsert moves it to the back. All observable behavior is
/// independent of the seed.
#[derive(Clone)]
pub struct DetMap<K, V> {
    /// Insertion-ordered entries; `None` marks a removed slot.
    entries: Vec<Option<(K, V)>>,
    /// Open-addressing table over `entries` indices (`EMPTY` / `TOMB`).
    index: Vec<u32>,
    /// Number of live (`Some`) entries.
    live: usize,
    /// Index slots that are not `EMPTY` (live + tombstones).
    used: usize,
    seed: u64,
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: std::fmt::Debug, V: std::fmt::Debug> std::fmt::Debug for DetMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V> DetMap<K, V> {
    /// Creates an empty map with the default seed.
    pub fn new() -> Self {
        Self::with_seed(0x0DE7_0DE7_0DE7_0DE7)
    }

    /// Creates an empty map with an explicit probe seed. The seed never
    /// affects observable behavior — only the private probe sequence.
    pub fn with_seed(seed: u64) -> Self {
        DetMap {
            entries: Vec::new(),
            index: Vec::new(),
            live: 0,
            used: 0,
            seed,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the map holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes every entry, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.iter_mut().for_each(|s| *s = EMPTY);
        self.live = 0;
        self.used = 0;
    }

    /// Live entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|e| e.as_ref().map(|(k, v)| (k, v)))
    }

    /// Live entries in insertion order, values mutable.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries
            .iter_mut()
            .filter_map(|e| e.as_mut().map(|(k, v)| (&*k, v)))
    }

    /// Live keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Live values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    fn hash_of(&self, key: &K) -> u64
    where
        K: Hash,
    {
        let mut h = DetHasher::with_seed(self.seed);
        key.hash(&mut h);
        h.finish()
    }

    /// Probes for `key`; returns its `entries` index if present.
    fn find(&self, key: &K) -> Option<usize>
    where
        K: Hash + Eq,
    {
        if self.live == 0 || self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut i = (self.hash_of(key) as usize) & mask;
        loop {
            match self.index[i] {
                EMPTY => return None,
                TOMB => {}
                e => {
                    if let Some((k, _)) = &self.entries[e as usize] {
                        if k == key {
                            return Some(e as usize);
                        }
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool
    where
        K: Hash + Eq,
    {
        self.find(key).is_some()
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V>
    where
        K: Hash + Eq,
    {
        let i = self.find(key)?;
        self.entries[i].as_ref().map(|(_, v)| v)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V>
    where
        K: Hash + Eq,
    {
        let i = self.find(key)?;
        self.entries[i].as_mut().map(|(_, v)| v)
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// present (keeping its original insertion position, like `indexmap`).
    pub fn insert(&mut self, key: K, value: V) -> Option<V>
    where
        K: Hash + Eq,
    {
        if let Some(i) = self.find(&key) {
            if let Some((_, v)) = &mut self.entries[i] {
                return Some(std::mem::replace(v, value));
            }
        }
        self.push_new(key, value);
        None
    }

    /// The value for `key`, inserting `default()` at the back first if
    /// absent (the `entry(k).or_insert_with(f)` pattern).
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V
    where
        K: Hash + Eq,
    {
        let i = match self.find(&key) {
            Some(i) => i,
            None => {
                self.push_new(key, default());
                self.entries.len() - 1
            }
        };
        match &mut self.entries[i] {
            Some((_, v)) => v,
            None => panic!("detmap: index points at a removed entry"),
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        K: Hash + Eq,
    {
        if self.live == 0 || self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut i = (self.hash_of(key) as usize) & mask;
        loop {
            match self.index[i] {
                EMPTY => return None,
                TOMB => {}
                e => {
                    let hit = matches!(&self.entries[e as usize], Some((k, _)) if k == key);
                    if hit {
                        self.index[i] = TOMB;
                        self.live -= 1;
                        let out = self.entries[e as usize].take().map(|(_, v)| v);
                        self.maybe_compact();
                        return out;
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Keeps only entries for which `f` returns true, preserving insertion
    /// order of the survivors.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool)
    where
        K: Hash + Eq,
    {
        let mut removed = 0usize;
        for e in self.entries.iter_mut() {
            let drop_it = match e {
                Some((k, v)) => !f(k, v),
                None => false,
            };
            if drop_it {
                *e = None;
                removed += 1;
            }
        }
        if removed > 0 {
            self.live -= removed;
            self.rebuild_index();
            self.maybe_compact();
        }
    }

    /// Appends a key known to be absent.
    fn push_new(&mut self, key: K, value: V)
    where
        K: Hash + Eq,
    {
        self.reserve_one();
        debug_assert!(self.entries.len() < MAX_ENTRY as usize);
        let mask = self.index.len() - 1;
        let mut i = (self.hash_of(&key) as usize) & mask;
        loop {
            match self.index[i] {
                EMPTY => {
                    self.index[i] = self.entries.len() as u32;
                    self.used += 1;
                    break;
                }
                TOMB => {
                    self.index[i] = self.entries.len() as u32;
                    break;
                }
                _ => i = (i + 1) & mask,
            }
        }
        self.entries.push(Some((key, value)));
        self.live += 1;
    }

    /// Ensures the index table has room for one more entry at < 3/4 load
    /// (counting tombstones), growing or cleaning as needed.
    fn reserve_one(&mut self)
    where
        K: Hash + Eq,
    {
        let cap = self.index.len();
        if cap == 0 {
            self.index = vec![EMPTY; 8];
            return;
        }
        if (self.used + 1) * 4 > cap * 3 {
            self.compact_entries();
            self.rebuild_index_with(((self.live + 1) * 2).next_power_of_two().max(8));
        }
    }

    /// Drops `None` holes once they outnumber live entries.
    fn maybe_compact(&mut self)
    where
        K: Hash + Eq,
    {
        if self.entries.len() >= 16 && self.entries.len() >= 2 * self.live {
            self.compact_entries();
            self.rebuild_index();
        }
    }

    fn compact_entries(&mut self) {
        if self.entries.len() != self.live {
            self.entries.retain(|e| e.is_some());
        }
    }

    /// Rebuilds the index table at its current capacity (entries holes
    /// allowed: only live entries are indexed).
    fn rebuild_index(&mut self)
    where
        K: Hash + Eq,
    {
        let cap = self.index.len().max(8);
        self.rebuild_index_with(cap);
    }

    fn rebuild_index_with(&mut self, cap: usize)
    where
        K: Hash + Eq,
    {
        debug_assert!(cap.is_power_of_two() && cap * 3 >= self.live * 4);
        self.index.clear();
        self.index.resize(cap, EMPTY);
        self.used = self.live;
        let mask = cap - 1;
        for (pos, entry) in self.entries.iter().enumerate() {
            let Some((k, _)) = entry else { continue };
            let mut h = DetHasher::with_seed(self.seed);
            k.hash(&mut h);
            let mut i = (h.finish() as usize) & mask;
            while self.index[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.index[i] = pos as u32;
        }
    }
}

impl<K: Hash + Eq, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut m = DetMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A seeded, insertion-ordered, deterministic hash set.
#[derive(Clone)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DetSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T> DetSet<T> {
    /// Creates an empty set with the default seed.
    pub fn new() -> Self {
        DetSet { map: DetMap::new() }
    }

    /// Creates an empty set with an explicit probe seed.
    pub fn with_seed(seed: u64) -> Self {
        DetSet {
            map: DetMap::with_seed(seed),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Removes every element, keeping allocations.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool
    where
        T: Hash + Eq,
    {
        self.map.contains_key(value)
    }

    /// Inserts `value`; returns true if it was newly added.
    pub fn insert(&mut self, value: T) -> bool
    where
        T: Hash + Eq,
    {
        if self.map.contains_key(&value) {
            return false;
        }
        self.map.insert(value, ());
        true
    }

    /// Removes `value`; returns true if it was present.
    pub fn remove(&mut self, value: &T) -> bool
    where
        T: Hash + Eq,
    {
        self.map.remove(value).is_some()
    }

    /// Keeps only elements for which `f` returns true.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool)
    where
        T: Hash + Eq,
    {
        self.map.retain(|k, _| f(k));
    }
}

impl<T: Hash + Eq> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = DetSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = DetMap::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), None);
        assert_eq!(m.insert("a", 10), Some(1));
        assert_eq!(m.get(&"a"), Some(&10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&"a"), Some(10));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.get(&"a"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iteration_is_insertion_order() {
        let mut m = DetMap::new();
        for k in [5u64, 3, 9, 1, 7] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![5, 3, 9, 1, 7]);
        // Overwrite keeps position; remove + reinsert moves to the back.
        m.insert(3, 33);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![5, 3, 9, 1, 7]);
        m.remove(&5);
        m.insert(5, 55);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![3, 9, 1, 7, 5]);
    }

    #[test]
    fn observable_behavior_is_seed_independent() {
        let mut a = DetMap::with_seed(1);
        let mut b = DetMap::with_seed(0xDEAD_BEEF);
        for k in 0u64..200 {
            a.insert(k * 7 % 131, k);
            b.insert(k * 7 % 131, k);
        }
        for k in (0u64..200).step_by(3) {
            a.remove(&(k * 7 % 131));
            b.remove(&(k * 7 % 131));
        }
        let va: Vec<(u64, u64)> = a.iter().map(|(k, v)| (*k, *v)).collect();
        let vb: Vec<(u64, u64)> = b.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn growth_and_compaction_preserve_content() {
        let mut m = DetMap::new();
        for k in 0u64..1000 {
            m.insert(k, k);
        }
        for k in 0u64..900 {
            assert_eq!(m.remove(&k), Some(k));
        }
        assert_eq!(m.len(), 100);
        for k in 900u64..1000 {
            assert_eq!(m.get(&k), Some(&k));
        }
        assert_eq!(m.keys().copied().collect::<Vec<_>>().len(), 100);
        // Entries vec was compacted below the tombstone threshold.
        assert!(m.entries.len() <= 2 * m.live.max(8));
    }

    #[test]
    fn retain_preserves_order() {
        let mut m: DetMap<u64, u64> = (0..50u64).map(|k| (k, k)).collect();
        m.retain(|k, _| k % 2 == 0);
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, (0..50).filter(|k| k % 2 == 0).collect::<Vec<_>>());
        assert_eq!(m.len(), 25);
        assert!(m.contains_key(&4) && !m.contains_key(&5));
    }

    #[test]
    fn or_insert_with_inserts_once() {
        let mut m = DetMap::new();
        *m.or_insert_with(7u64, || 1) += 1;
        *m.or_insert_with(7u64, || 100) += 1;
        assert_eq!(m.get(&7), Some(&3));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn set_semantics() {
        let mut s = DetSet::new();
        assert!(s.insert("x"));
        assert!(!s.insert("x"));
        assert!(s.contains(&"x"));
        assert!(s.remove(&"x"));
        assert!(!s.remove(&"x"));
        assert!(s.is_empty());
        let s2: DetSet<u32> = [3, 1, 2, 1].into_iter().collect();
        assert_eq!(s2.iter().copied().collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn tombstone_heavy_workload_terminates() {
        // Insert/remove cycles at a fixed small size: tombstones must be
        // cleaned, probes must terminate, content must stay correct.
        let mut m = DetMap::new();
        for round in 0u64..2000 {
            m.insert(round % 5, round);
            if round % 2 == 1 {
                m.remove(&((round + 2) % 5));
            }
        }
        assert!(m.len() <= 5);
        for (k, _) in m.iter() {
            assert!(*k < 5);
        }
    }
}
