//! Byte and page units used throughout the simulation.
//!
//! Both the host and the guest use 4 KiB pages, matching the x86-64 setup
//! of the paper's testbed (AWS c5d.metal, Linux host, Firecracker guest).

/// Bytes per page (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// One kibibyte.
pub const KIB: u64 = 1024;

/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;

/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Number of pages needed to hold `bytes` (rounded up).
pub const fn pages_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Number of bytes in `pages` pages.
pub const fn bytes_for_pages(pages: u64) -> u64 {
    pages * PAGE_SIZE
}

/// Formats a byte count with a binary-unit suffix, e.g. `"20.6 MiB"`.
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_round_trip() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(4096), 1);
        assert_eq!(pages_for_bytes(4097), 2);
        assert_eq!(bytes_for_pages(3), 12_288);
    }

    #[test]
    fn unit_constants() {
        assert_eq!(MIB, 1_048_576);
        assert_eq!(GIB, 1_073_741_824);
        assert_eq!(pages_for_bytes(2 * GIB), 524_288);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KiB");
        assert_eq!(format_bytes(21_600_000), "20.6 MiB");
        assert_eq!(format_bytes(2 * GIB), "2.0 GiB");
    }
}
