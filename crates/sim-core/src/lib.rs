//! Deterministic discrete-event simulation (DES) core.
//!
//! This crate provides the foundation for the FaaSnap reproduction's
//! simulated host: a nanosecond-resolution simulated clock ([`time::SimTime`]),
//! a generic event engine ([`engine::Engine`]), a self-contained
//! deterministic RNG ([`rng::Prng`]), and statistics utilities
//! ([`stats::Log2Histogram`], [`stats::Summary`]) used to reproduce the
//! paper's measurement methodology (e.g. the log-scale page-fault-time
//! histograms of Figure 2).
//!
//! Everything in this crate is deterministic: given the same seed and the
//! same sequence of scheduled events, a simulation replays identically.

#![forbid(unsafe_code)]
pub mod detmap;
pub mod engine;
pub mod json;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use detmap::{DetMap, DetSet};
pub use engine::{Engine, Scheduler};
pub use rng::Prng;
pub use stats::{Log2Histogram, Summary};
pub use time::{SimDuration, SimTime};
