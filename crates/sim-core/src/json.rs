//! Minimal JSON tree, writer, and parser.
//!
//! The workspace serializes experiment configs and cluster SLO metrics as
//! JSON but builds in a sandbox without registry access, so `serde` /
//! `serde_json` are unavailable. This module provides the small piece
//! actually needed: an order-preserving [`Value`] tree, a deterministic
//! pretty printer (objects serialize in insertion order, so equal trees
//! produce byte-identical text), and a strict recursive-descent parser.

use std::fmt;

/// A JSON value. Object keys keep insertion order so serialization is
/// deterministic — required by the fleet-metrics determinism tests.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (covers i64 and u64 ranges).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Creates an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Builder-style [`Value::set`].
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if it is an in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Compact one-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_float(*f)),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

/// Formats a float so it round-trips and always reads back as Float
/// (a `.0` suffix is kept for integral values).
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        // JSON has no Inf/NaN; metrics code must not emit them, but a
        // readable sentinel beats invalid output if one slips through.
        return "null".to_string();
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i128)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i128)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i128)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v as i128)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our configs.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compound() {
        let v = Value::object()
            .with("name", "fleet")
            .with("hosts", 8u64)
            .with("p99_ms", 12.5)
            .with("modes", vec!["warm", "snapshot"])
            .with("shed", 0u64)
            .with(
                "nested",
                Value::object().with("ok", true).with("none", Value::Null),
            );
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), v);
        let compact = v.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), v);
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn preserves_insertion_order_and_determinism() {
        let build = || {
            Value::object()
                .with("z", 1u64)
                .with("a", 2u64)
                .with("m", 3u64)
                .to_string_pretty()
        };
        let s = build();
        assert_eq!(s, build());
        let zi = s.find("\"z\"").unwrap();
        let ai = s.find("\"a\"").unwrap();
        assert!(zi < ai, "insertion order preserved, not sorted");
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn float_formatting_round_trips() {
        for f in [0.0, 1.0, 12.5, 1e-9, 123456.789] {
            let text = Value::Float(f).to_string_compact();
            match parse(&text).unwrap() {
                Value::Float(back) => assert_eq!(back, f),
                other => panic!("float reparsed as {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": [1, 2], "b": "x", "c": 1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1.5));
        assert!(v.get("missing").is_none());
    }
}
