//! The snapshot store: layers composed over a refcounted chunk table.
//!
//! Object model (see DESIGN.md "Snapshot store"):
//!
//! - **Chunk** — `chunk_pages` consecutive guest pages, identified by a
//!   stable content hash, refcounted, byte-accounted once.
//! - **Layer** — a sparse chunk-index → chunk map. `Base` layers carry a
//!   family's full image (all-zero chunks omitted); `Delta` layers carry
//!   only chunks that differ from the stack beneath (all-zero chunks kept
//!   as tombstones).
//! - **Snapshot** — an ordered list of layers, oldest first. Resolution
//!   walks newest-first; an index absent from every layer is zeros.
//!
//! Reference discipline: a resident layer holds one chunk reference per
//! slot; a resident snapshot holds one layer reference per list entry.
//! Dropping the last snapshot over a layer frees the layer, which in turn
//! releases its chunks — eviction therefore reclaims exactly the bytes no
//! other resident snapshot still needs, never a shared base.

use std::cell::Cell;
use std::collections::BTreeMap;

use sim_core::units::PAGE_SIZE;

use crate::chunk::ChunkTable;
use crate::error::StoreError;
use crate::hash::ChunkHash;
use crate::layer::{Layer, LayerId, LayerKind};

/// Stable identity of a snapshot within one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

/// Store-wide parameters.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Pages per chunk. 512 pages = 2 MiB, matching huge-page-sized
    /// extents the restore path already favors.
    pub chunk_pages: u64,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig { chunk_pages: 512 }
    }
}

impl StoreConfig {
    /// Bytes per full chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_pages * PAGE_SIZE
    }
}

/// Self-statistics of one store: how much work the store did, for the
/// faasnap-obs self-profiler. faasnap-store sits below faasnap-obs in
/// the crate DAG, so this is a plain value snapshot harvested by callers
/// (`SelfProfile::harvest(stats.pairs())`) rather than a profiler handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Chunk/layer map operations (inserts, lookups, walk steps).
    pub map_ops: u64,
    /// Content chunks inserted (data or accounting-only references).
    pub chunks_inserted: u64,
    /// Bytes of chunk content read back by `materialize`.
    pub bytes_materialized: u64,
    /// Snapshot resolutions (`resolve` + `resolve_chunk`).
    pub resolves: u64,
}

impl StoreStats {
    /// The stats as `(counter-name, value)` pairs for profiler harvest.
    pub fn pairs(&self) -> [(&'static str, u64); 4] {
        [
            ("store/map_ops", self.map_ops),
            ("store/chunks_inserted", self.chunks_inserted),
            ("store/bytes_materialized", self.bytes_materialized),
            ("store/resolves", self.resolves),
        ]
    }
}

/// Interior-mutable accumulator behind [`StoreStats`]: read paths
/// (`resolve`, `materialize`) take `&self`, so counts live in `Cell`s.
#[derive(Clone, Debug, Default)]
struct StatCells {
    map_ops: Cell<u64>,
    chunks_inserted: Cell<u64>,
    bytes_materialized: Cell<u64>,
    resolves: Cell<u64>,
}

impl StatCells {
    fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            map_ops: self.map_ops.get(),
            chunks_inserted: self.chunks_inserted.get(),
            bytes_materialized: self.bytes_materialized.get(),
            resolves: self.resolves.get(),
        }
    }
}

#[derive(Clone, Debug)]
struct LayerEntry {
    layer: Layer,
    /// Number of resident snapshots listing this layer.
    refs: u64,
}

#[derive(Clone, Debug)]
struct SnapshotEntry {
    /// Layers oldest-first; resolution walks them newest-first.
    layers: Vec<LayerId>,
    /// Logical (pre-dedup) size this snapshot presents to its consumer.
    logical_bytes: u64,
}

/// A content-addressed, layered snapshot store.
#[derive(Clone, Debug, Default)]
pub struct SnapshotStore {
    cfg: StoreConfig,
    chunks: ChunkTable,
    layers: BTreeMap<LayerId, LayerEntry>,
    snapshots: BTreeMap<SnapshotId, SnapshotEntry>,
    next_layer: u64,
    next_snapshot: u64,
    stats: StatCells,
}

impl SnapshotStore {
    pub fn new(cfg: StoreConfig) -> SnapshotStore {
        SnapshotStore {
            cfg,
            ..SnapshotStore::default()
        }
    }

    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Builds the full-length token vector for chunk `idx` from a sparse
    /// nonzero page→token map.
    fn chunk_tokens(&self, pages: &BTreeMap<u64, u64>, idx: u64) -> Vec<u64> {
        let start = idx * self.cfg.chunk_pages;
        let mut tokens = vec![0u64; self.cfg.chunk_pages as usize];
        for (&page, &token) in pages.range(start..start + self.cfg.chunk_pages) {
            tokens[(page - start) as usize] = token;
        }
        tokens
    }

    fn alloc_layer(&mut self, layer: Layer) -> LayerId {
        let id = LayerId(self.next_layer);
        self.next_layer += 1;
        self.layers.insert(id, LayerEntry { layer, refs: 0 });
        id
    }

    /// Records a base layer from a sparse nonzero page→token map: the
    /// chunks containing at least one nonzero page, content-hashed and
    /// refcounted. All-zero chunks are omitted (absent resolves to zeros).
    pub fn put_base_layer(&mut self, pages: &BTreeMap<u64, u64>) -> LayerId {
        let mut layer = Layer::new(LayerKind::Base);
        let mut idxs: Vec<u64> = pages.keys().map(|p| p / self.cfg.chunk_pages).collect();
        idxs.dedup();
        for idx in idxs {
            let tokens = self.chunk_tokens(pages, idx);
            let hash = self.chunks.insert_data(tokens, self.cfg.chunk_bytes());
            layer.chunks.insert(idx, hash);
            StatCells::bump(&self.stats.chunks_inserted, 1);
            StatCells::bump(&self.stats.map_ops, 2);
        }
        self.alloc_layer(layer)
    }

    /// Records a delta layer: the chunks of `pages` that differ from what
    /// `parent` resolves to. All-zero chunks that overwrite nonzero parent
    /// chunks are kept as explicit tombstones. Requires the parent's
    /// chunks to carry content (data inserts, not accounting-only refs).
    pub fn put_delta_layer(
        &mut self,
        parent: SnapshotId,
        pages: &BTreeMap<u64, u64>,
    ) -> Result<LayerId, StoreError> {
        let parent_map = self.resolve(parent)?;
        // Union of chunk indices present in either image.
        let mut idxs: Vec<u64> = pages
            .keys()
            .map(|p| p / self.cfg.chunk_pages)
            .chain(parent_map.keys().copied())
            .collect();
        idxs.sort_unstable();
        idxs.dedup();

        let mut layer = Layer::new(LayerKind::Delta);
        for idx in idxs {
            let new_tokens = self.chunk_tokens(pages, idx);
            let differs = match parent_map.get(&idx) {
                Some(&hash) => {
                    let old = self.chunks.data(hash).ok_or_else(|| {
                        StoreError::Invariant(format!(
                            "delta against accounting-only chunk {:#018x}",
                            hash.0
                        ))
                    })?;
                    old != new_tokens.as_slice()
                }
                None => new_tokens.iter().any(|&t| t != 0),
            };
            if differs {
                let hash = self.chunks.insert_data(new_tokens, self.cfg.chunk_bytes());
                layer.chunks.insert(idx, hash);
                StatCells::bump(&self.stats.chunks_inserted, 1);
            }
            StatCells::bump(&self.stats.map_ops, 2);
        }
        Ok(self.alloc_layer(layer))
    }

    /// Records an accounting-only layer from precomputed chunk identities
    /// (the fleet simulator's synthetic provenance model). Each slot takes
    /// one chunk reference; unseen hashes are admitted at `bytes` each.
    pub fn put_layer_refs(
        &mut self,
        kind: LayerKind,
        slots: impl IntoIterator<Item = (u64, ChunkHash, u64)>,
    ) -> LayerId {
        let mut layer = Layer::new(kind);
        for (idx, hash, bytes) in slots {
            self.chunks.insert_ref(hash, bytes);
            layer.chunks.insert(idx, hash);
            StatCells::bump(&self.stats.chunks_inserted, 1);
            StatCells::bump(&self.stats.map_ops, 2);
        }
        self.alloc_layer(layer)
    }

    /// Composes a snapshot from `layers` (oldest first), taking one
    /// reference on each. `logical_bytes` is the pre-dedup size the
    /// snapshot presents (what a whole-file registry would have charged).
    pub fn compose_snapshot(
        &mut self,
        layers: &[LayerId],
        logical_bytes: u64,
    ) -> Result<SnapshotId, StoreError> {
        for id in layers {
            let entry = self
                .layers
                .get_mut(id)
                .ok_or(StoreError::UnknownLayer(id.0))?;
            entry.refs += 1;
        }
        let id = SnapshotId(self.next_snapshot);
        self.next_snapshot += 1;
        self.snapshots.insert(
            id,
            SnapshotEntry {
                layers: layers.to_vec(),
                logical_bytes,
            },
        );
        Ok(id)
    }

    /// Drops a snapshot: releases its layer references, frees layers that
    /// reach zero (releasing their chunk references in turn), and frees
    /// chunks no resident layer still needs. Returns the freed layers so
    /// callers keeping layer handles (family base maps) can prune them.
    pub fn drop_snapshot(&mut self, id: SnapshotId) -> Result<Vec<LayerId>, StoreError> {
        let entry = self
            .snapshots
            .remove(&id)
            .ok_or(StoreError::UnknownSnapshot(id.0))?;
        let mut freed = Vec::new();
        for layer_id in entry.layers {
            let le = self
                .layers
                .get_mut(&layer_id)
                .ok_or(StoreError::UnknownLayer(layer_id.0))?;
            le.refs -= 1;
            if le.refs == 0 {
                let le = self
                    .layers
                    .remove(&layer_id)
                    .ok_or(StoreError::UnknownLayer(layer_id.0))?;
                for hash in le.layer.chunks.values() {
                    self.chunks.decref(*hash)?;
                }
                freed.push(layer_id);
            }
        }
        Ok(freed)
    }

    /// Resolves a snapshot to its chunk-index → chunk map, newest layer
    /// winning. Indices absent from the result are all-zero chunks.
    pub fn resolve(&self, id: SnapshotId) -> Result<BTreeMap<u64, ChunkHash>, StoreError> {
        let entry = self
            .snapshots
            .get(&id)
            .ok_or(StoreError::UnknownSnapshot(id.0))?;
        StatCells::bump(&self.stats.resolves, 1);
        let mut map = BTreeMap::new();
        for layer_id in entry.layers.iter().rev() {
            let le = self
                .layers
                .get(layer_id)
                .ok_or(StoreError::UnknownLayer(layer_id.0))?;
            for (&idx, &hash) in &le.layer.chunks {
                map.entry(idx).or_insert(hash);
                StatCells::bump(&self.stats.map_ops, 1);
            }
        }
        Ok(map)
    }

    /// Resolves one chunk index through a snapshot's layer chain.
    pub fn resolve_chunk(&self, id: SnapshotId, idx: u64) -> Result<Option<ChunkHash>, StoreError> {
        let entry = self
            .snapshots
            .get(&id)
            .ok_or(StoreError::UnknownSnapshot(id.0))?;
        StatCells::bump(&self.stats.resolves, 1);
        for layer_id in entry.layers.iter().rev() {
            let le = self
                .layers
                .get(layer_id)
                .ok_or(StoreError::UnknownLayer(layer_id.0))?;
            StatCells::bump(&self.stats.map_ops, 1);
            if let Some(hash) = le.layer.chunks.get(&idx) {
                return Ok(Some(*hash));
            }
        }
        Ok(None)
    }

    /// Materializes a snapshot into a sparse nonzero page→token map by
    /// reading chunk content through the layer chain. Requires content
    /// chunks (fails on accounting-only entries).
    pub fn materialize(&self, id: SnapshotId) -> Result<BTreeMap<u64, u64>, StoreError> {
        let mut pages = BTreeMap::new();
        for (idx, hash) in self.resolve(id)? {
            let tokens = self.chunks.data(hash).ok_or_else(|| {
                StoreError::Invariant(format!(
                    "materialize hit accounting-only chunk {:#018x}",
                    hash.0
                ))
            })?;
            StatCells::bump(&self.stats.bytes_materialized, self.cfg.chunk_bytes());
            let start = idx * self.cfg.chunk_pages;
            for (off, &token) in tokens.iter().enumerate() {
                if token != 0 {
                    pages.insert(start + off as u64, token);
                }
            }
        }
        Ok(pages)
    }

    /// Physical bytes resident (each chunk counted once).
    pub fn unique_bytes(&self) -> u64 {
        self.chunks.unique_bytes()
    }

    /// Sum of logical (pre-dedup) bytes across resident snapshots.
    pub fn logical_bytes(&self) -> u64 {
        self.snapshots.values().map(|s| s.logical_bytes).sum()
    }

    /// Logical / unique — how many times each physical byte is shared.
    /// 0.0 when the store is empty: a fresh store has no sharing to
    /// report, and 0 keeps JSON/Prometheus output finite and unambiguous
    /// (a populated store can never legitimately read 0).
    pub fn dedup_ratio(&self) -> f64 {
        let unique = self.unique_bytes();
        if unique == 0 {
            0.0
        } else {
            self.logical_bytes() as f64 / unique as f64
        }
    }

    /// Snapshot of the store's self-statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Number of resident snapshots.
    pub fn resident_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// Number of resident layers.
    pub fn resident_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of resident chunks.
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Direct access to the chunk table (read-only).
    pub fn chunks(&self) -> &ChunkTable {
        &self.chunks
    }

    /// Checks global refcount conservation: every chunk's refcount equals
    /// the number of resident layer slots naming it, every layer's
    /// refcount equals the number of resident snapshot entries naming it,
    /// and byte accounting is exact. Used by property tests.
    pub fn debug_validate(&self) -> Result<(), StoreError> {
        self.chunks.debug_validate()?;
        let mut chunk_refs: BTreeMap<ChunkHash, u64> = BTreeMap::new();
        for le in self.layers.values() {
            for hash in le.layer.chunks.values() {
                *chunk_refs.entry(*hash).or_insert(0) += 1;
            }
        }
        for (hash, entry) in self.chunks.iter() {
            let expect = chunk_refs.get(hash).copied().unwrap_or(0);
            if entry.refs != expect {
                return Err(StoreError::Invariant(format!(
                    "chunk {:#018x} refs {} but {} layer slots name it",
                    hash.0, entry.refs, expect
                )));
            }
        }
        for hash in chunk_refs.keys() {
            if !self.chunks.contains(*hash) {
                return Err(StoreError::UnknownChunk(*hash));
            }
        }
        let mut layer_refs: BTreeMap<LayerId, u64> = BTreeMap::new();
        for se in self.snapshots.values() {
            for id in &se.layers {
                *layer_refs.entry(*id).or_insert(0) += 1;
            }
        }
        for (id, le) in &self.layers {
            let expect = layer_refs.get(id).copied().unwrap_or(0);
            if le.refs != expect {
                return Err(StoreError::Invariant(format!(
                    "layer {} refs {} but {} snapshots name it",
                    id.0, le.refs, expect
                )));
            }
        }
        for id in layer_refs.keys() {
            if !self.layers.contains_key(id) {
                return Err(StoreError::UnknownLayer(id.0));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> StoreConfig {
        StoreConfig { chunk_pages: 4 }
    }

    fn pages(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn base_skips_zero_chunks() {
        let mut s = SnapshotStore::new(cfg4());
        // Pages 0..4 = chunk 0, 8..12 = chunk 2; chunk 1 untouched.
        let base = s.put_base_layer(&pages(&[(1, 10), (9, 20)]));
        let snap = s
            .compose_snapshot(&[base], 12 * PAGE_SIZE)
            .expect("compose");
        let map = s.resolve(snap).expect("resolve");
        assert_eq!(map.keys().copied().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(s.resident_chunks(), 2);
        s.debug_validate().expect("valid");
    }

    #[test]
    fn delta_stores_only_dirty_chunks_and_tombstones() {
        let mut s = SnapshotStore::new(cfg4());
        let base = s.put_base_layer(&pages(&[(1, 10), (9, 20)]));
        let parent = s.compose_snapshot(&[base], 0).expect("compose");
        // New image: chunk 0 unchanged, chunk 1 newly dirty, chunk 2 wiped.
        let img = pages(&[(1, 10), (5, 30)]);
        let delta = s.put_delta_layer(parent, &img).expect("delta");
        let child = s.compose_snapshot(&[base, delta], 0).expect("compose");
        let dl = s.resolve(child).expect("resolve");
        // chunk 0 from base; chunk 1 from delta; chunk 2 tombstoned (all
        // zeros — still mapped, to shadow the base's nonzero chunk).
        assert_eq!(dl.keys().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(dl[&2], ChunkHash::of_zeros(4), "tombstone is zero chunk");
        assert_eq!(s.materialize(child).expect("mat"), img);
        s.debug_validate().expect("valid");
    }

    #[test]
    fn dropping_child_keeps_shared_base() {
        let mut s = SnapshotStore::new(cfg4());
        let base = s.put_base_layer(&pages(&[(0, 1), (4, 2), (8, 3)]));
        let parent = s.compose_snapshot(&[base], 100).expect("compose");
        let delta = s
            .put_delta_layer(parent, &pages(&[(0, 1), (4, 9), (8, 3)]))
            .expect("delta");
        let child = s.compose_snapshot(&[base, delta], 100).expect("compose");
        assert_eq!(s.logical_bytes(), 200);
        let before = s.unique_bytes();
        let freed = s.drop_snapshot(child).expect("drop");
        assert_eq!(freed, vec![delta], "only the delta layer is freed");
        assert!(s.unique_bytes() < before);
        // Base chunks all survive — parent still resolves.
        assert_eq!(
            s.materialize(parent).expect("mat"),
            pages(&[(0, 1), (4, 2), (8, 3)])
        );
        let freed = s.drop_snapshot(parent).expect("drop");
        assert_eq!(freed, vec![base]);
        assert_eq!(s.unique_bytes(), 0);
        assert_eq!(s.resident_chunks(), 0);
        s.debug_validate().expect("valid");
    }

    #[test]
    fn dedup_ratio_counts_shared_bytes_once() {
        let mut s = SnapshotStore::new(cfg4());
        let base = s.put_base_layer(&pages(&[(0, 7)]));
        let a = s.compose_snapshot(&[base], 1000).expect("a");
        let _b = s.compose_snapshot(&[base], 1000).expect("b");
        assert_eq!(s.logical_bytes(), 2000);
        assert_eq!(s.unique_bytes(), 4 * PAGE_SIZE);
        assert!(s.dedup_ratio() > 0.0);
        s.drop_snapshot(a).expect("drop");
        assert_eq!(s.unique_bytes(), 4 * PAGE_SIZE, "still referenced");
        s.debug_validate().expect("valid");
    }

    #[test]
    fn accounting_only_layers_dedup_by_hash() {
        let mut s = SnapshotStore::new(StoreConfig::default());
        let shared = ChunkHash::synthetic(&[1]);
        let l1 = s.put_layer_refs(
            LayerKind::Base,
            vec![(0, shared, 100), (1, ChunkHash::synthetic(&[2]), 100)],
        );
        let l2 = s.put_layer_refs(
            LayerKind::Base,
            vec![(0, shared, 100), (1, ChunkHash::synthetic(&[3]), 100)],
        );
        let s1 = s.compose_snapshot(&[l1], 200).expect("s1");
        let s2 = s.compose_snapshot(&[l2], 200).expect("s2");
        assert_eq!(s.unique_bytes(), 300, "shared chunk counted once");
        assert_eq!(s.logical_bytes(), 400);
        s.drop_snapshot(s1).expect("drop");
        assert_eq!(s.unique_bytes(), 200);
        s.drop_snapshot(s2).expect("drop");
        assert_eq!(s.unique_bytes(), 0);
        s.debug_validate().expect("valid");
    }

    #[test]
    fn empty_store_dedup_ratio_is_zero() {
        let s = SnapshotStore::new(cfg4());
        assert_eq!(s.dedup_ratio(), 0.0);
        let mut s = SnapshotStore::new(cfg4());
        let base = s.put_base_layer(&pages(&[(0, 7)]));
        let snap = s.compose_snapshot(&[base], 1000).expect("compose");
        assert!(s.dedup_ratio() > 0.0);
        s.drop_snapshot(snap).expect("drop");
        assert_eq!(s.dedup_ratio(), 0.0, "emptied store reads 0 again");
    }

    #[test]
    fn stats_count_store_work() {
        let mut s = SnapshotStore::new(cfg4());
        assert_eq!(s.stats(), StoreStats::default());
        let base = s.put_base_layer(&pages(&[(1, 10), (9, 20)]));
        let snap = s.compose_snapshot(&[base], 0).expect("compose");
        assert_eq!(s.stats().chunks_inserted, 2);
        s.resolve(snap).expect("resolve");
        assert_eq!(s.stats().resolves, 1);
        s.materialize(snap).expect("mat");
        // materialize resolves once more and reads both chunks back.
        assert_eq!(s.stats().resolves, 2);
        assert_eq!(s.stats().bytes_materialized, 2 * 4 * PAGE_SIZE);
        assert!(s.stats().map_ops > 0);
        let pairs = s.stats().pairs();
        assert_eq!(pairs[1], ("store/chunks_inserted", 2));
    }

    #[test]
    fn unknown_ids_are_typed_errors() {
        let mut s = SnapshotStore::new(cfg4());
        assert!(matches!(
            s.drop_snapshot(SnapshotId(9)),
            Err(StoreError::UnknownSnapshot(9))
        ));
        assert!(matches!(
            s.compose_snapshot(&[LayerId(5)], 0),
            Err(StoreError::UnknownLayer(5))
        ));
        assert!(matches!(
            s.resolve(SnapshotId(0)),
            Err(StoreError::UnknownSnapshot(0))
        ));
    }
}
