//! faasnap-store: deterministic content-addressed snapshot storage.
//!
//! FaaSnap's per-host registry originally budgeted *whole* snapshot
//! files, so capacity scaled linearly with tenant count. This crate is
//! the fix argued by ADR-004-style pool-level base snapshots: one shared
//! **base** image per function family plus per-instance **delta** layers,
//! with identical chunks (zero pages, shared runtime/guest-kernel pages)
//! deduplicated host-wide through a refcounted content-addressed chunk
//! table.
//!
//! Determinism contract: chunk identity is a pure function of content
//! under an in-tree seeded hash ([`hash::HASH_SEED`]) — no OS entropy, no
//! per-process hasher state — and every container is a `BTreeMap`, so all
//! iteration orders, accounting totals, and eviction decisions are
//! byte-reproducible per seed. Enforced by faasnap-lint.
//!
//! The crate deliberately depends only on `sim-core`: the storage layer
//! (`sim-storage`) stays below it in the crate DAG, and the integration
//! glue lives in `faasnap` (restore paths) and `faasnap-cluster` (fleet
//! accounting).

#![forbid(unsafe_code)]

pub mod chunk;
pub mod error;
pub mod hash;
pub mod layer;
pub mod store;

pub use chunk::{ChunkEntry, ChunkTable};
pub use error::StoreError;
pub use hash::{mix64, mix_words, ChunkHash, HASH_SEED};
pub use layer::{Layer, LayerId, LayerKind};
pub use store::{SnapshotId, SnapshotStore, StoreConfig, StoreStats};
