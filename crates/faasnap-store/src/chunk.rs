//! Refcounted content-addressed chunk table.
//!
//! The table is the dedup boundary: every layer that references a chunk
//! holds one reference, and a chunk's bytes count toward the host budget
//! exactly once no matter how many snapshots share it. Chunks carry their
//! page tokens optionally — the faasnap restore path needs real content to
//! materialize memory, while the fleet simulator only needs byte
//! accounting and inserts reference-only entries under synthetic hashes.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::hash::ChunkHash;

/// One chunk in the table.
#[derive(Clone, Debug)]
pub struct ChunkEntry {
    /// Number of layer slots referencing this chunk.
    pub refs: u64,
    /// Physical bytes this chunk occupies (counted once, toward
    /// `unique_bytes`).
    pub bytes: u64,
    /// Page tokens, when the chunk was inserted with content.
    pub data: Option<Vec<u64>>,
}

/// Content-addressed, refcounted chunk storage.
#[derive(Clone, Debug, Default)]
pub struct ChunkTable {
    entries: BTreeMap<ChunkHash, ChunkEntry>,
    unique_bytes: u64,
}

impl ChunkTable {
    pub fn new() -> ChunkTable {
        ChunkTable::default()
    }

    /// Inserts a chunk by content, taking one reference. If the hash is
    /// already present the tokens are dropped (dedup hit) and only the
    /// refcount moves.
    pub fn insert_data(&mut self, tokens: Vec<u64>, bytes: u64) -> ChunkHash {
        let hash = ChunkHash::of_tokens(&tokens);
        self.insert_entry(hash, bytes, Some(tokens));
        hash
    }

    /// Inserts an accounting-only chunk under a caller-supplied (synthetic
    /// or precomputed) hash, taking one reference.
    pub fn insert_ref(&mut self, hash: ChunkHash, bytes: u64) {
        self.insert_entry(hash, bytes, None);
    }

    fn insert_entry(&mut self, hash: ChunkHash, bytes: u64, data: Option<Vec<u64>>) {
        let unique = &mut self.unique_bytes;
        self.entries
            .entry(hash)
            .and_modify(|e| {
                e.refs += 1;
                // A data insert can fill in content for a chunk first seen
                // as reference-only (same hash ⇒ same logical content).
                if e.data.is_none() {
                    e.data = data.clone();
                }
            })
            .or_insert_with(|| {
                *unique += bytes;
                ChunkEntry {
                    refs: 1,
                    bytes,
                    data,
                }
            });
    }

    /// Takes an additional reference on an existing chunk.
    pub fn incref(&mut self, hash: ChunkHash) -> Result<(), StoreError> {
        let e = self
            .entries
            .get_mut(&hash)
            .ok_or(StoreError::UnknownChunk(hash))?;
        e.refs += 1;
        Ok(())
    }

    /// Drops one reference; frees the chunk (and its bytes) when the count
    /// reaches zero. Returns `true` if the chunk was freed.
    pub fn decref(&mut self, hash: ChunkHash) -> Result<bool, StoreError> {
        let e = self
            .entries
            .get_mut(&hash)
            .ok_or(StoreError::UnknownChunk(hash))?;
        e.refs -= 1;
        if e.refs == 0 {
            let bytes = e.bytes;
            self.entries.remove(&hash);
            self.unique_bytes -= bytes;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Page tokens of a chunk, if it was stored with content.
    pub fn data(&self, hash: ChunkHash) -> Option<&[u64]> {
        self.entries.get(&hash).and_then(|e| e.data.as_deref())
    }

    /// The chunk entry, if present.
    pub fn get(&self, hash: ChunkHash) -> Option<&ChunkEntry> {
        self.entries.get(&hash)
    }

    /// Whether the table holds `hash`.
    pub fn contains(&self, hash: ChunkHash) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Physical bytes across all resident chunks (each counted once).
    pub fn unique_bytes(&self) -> u64 {
        self.unique_bytes
    }

    /// Number of resident chunks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in hash order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (&ChunkHash, &ChunkEntry)> {
        self.entries.iter()
    }

    /// Checks internal invariants: no zero-ref entries, `unique_bytes`
    /// equals the sum over entries. Used by property tests.
    pub fn debug_validate(&self) -> Result<(), StoreError> {
        let mut sum = 0u64;
        for (h, e) in &self.entries {
            if e.refs == 0 {
                return Err(StoreError::Invariant(format!(
                    "chunk {h:?} resident with zero refs"
                )));
            }
            sum += e.bytes;
        }
        if sum != self.unique_bytes {
            return Err(StoreError::Invariant(format!(
                "unique_bytes {} != sum of entries {}",
                self.unique_bytes, sum
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_counts_bytes_once() {
        let mut t = ChunkTable::new();
        let a = t.insert_data(vec![1, 2, 3], 100);
        let b = t.insert_data(vec![1, 2, 3], 100);
        assert_eq!(a, b);
        assert_eq!(t.unique_bytes(), 100);
        assert_eq!(t.get(a).map(|e| e.refs), Some(2));
        assert!(!t.decref(a).expect("resident"));
        assert!(t.decref(a).expect("resident"));
        assert_eq!(t.unique_bytes(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn ref_then_data_fills_content() {
        let mut t = ChunkTable::new();
        let h = ChunkHash::of_tokens(&[9, 9]);
        t.insert_ref(h, 50);
        assert!(t.data(h).is_none());
        t.insert_data(vec![9, 9], 50);
        assert_eq!(t.data(h), Some(&[9, 9][..]));
        assert_eq!(t.unique_bytes(), 50);
    }

    #[test]
    fn unknown_chunk_is_typed_error() {
        let mut t = ChunkTable::new();
        let h = ChunkHash(123);
        assert!(matches!(t.incref(h), Err(StoreError::UnknownChunk(_))));
        assert!(matches!(t.decref(h), Err(StoreError::UnknownChunk(_))));
    }

    #[test]
    fn validate_catches_nothing_on_healthy_table() {
        let mut t = ChunkTable::new();
        t.insert_data(vec![1], 10);
        t.insert_ref(ChunkHash(7), 20);
        t.debug_validate().expect("healthy");
        assert_eq!(t.unique_bytes(), 30);
    }
}
