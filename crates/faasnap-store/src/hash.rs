//! Stable, seeded content hashing for chunks.
//!
//! Chunk identity must be a pure function of chunk *content* and nothing
//! else: no OS entropy, no per-process hasher seeds, no pointer values.
//! Two runs of the simulator — on different machines, in different years —
//! must assign the same [`ChunkHash`] to the same bytes, because goldens
//! pin store accounting byte-for-byte. The construction is FNV-1a over the
//! 64-bit page tokens, folded through a splitmix64 finalizer for avalanche
//! (FNV alone is weak in the high bits, and the chunk table keys on the
//! full 64-bit value).

/// The fixed hash seed. A constant, deliberately: "seeded" here means
/// *explicitly* seeded in-tree, as opposed to `std`'s per-process
/// `RandomState`.
pub const HASH_SEED: u64 = 0xFAA5_0A75_7085_EED5;

/// Content identity of one chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkHash(pub u64);

/// splitmix64 finalizer: full-avalanche mixing of one word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds a sequence of words into a stable 64-bit digest.
pub fn mix_words(seed: u64, words: &[u64]) -> u64 {
    let mut acc = seed ^ HASH_SEED;
    for &w in words {
        // FNV-1a step on the word, then finalize; the finalizer keeps
        // single-bit input differences from staying local.
        acc = (acc ^ w).wrapping_mul(0x0000_0100_0000_01B3);
        acc = mix64(acc);
    }
    acc
}

impl ChunkHash {
    /// Hashes a chunk's page tokens (zero tokens included — a chunk's
    /// identity covers its full extent, holes and all). The token count
    /// is folded in so a short final chunk can never collide with a full
    /// chunk that shares its prefix.
    pub fn of_tokens(tokens: &[u64]) -> ChunkHash {
        ChunkHash(mix_words(tokens.len() as u64, tokens))
    }

    /// The identity of an all-zero chunk of `len` tokens, without
    /// materializing the zeros.
    pub fn of_zeros(len: u64) -> ChunkHash {
        // FNV-1a over `len` zero words has a closed form only in the
        // trivial sense; just compute it. `len` is at most a few hundred.
        let mut acc = len ^ HASH_SEED;
        for _ in 0..len {
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            acc = mix64(acc);
        }
        ChunkHash(acc)
    }

    /// A synthetic identity derived from labels rather than content, for
    /// models that account chunks without materializing tokens (the fleet
    /// simulator's tenant snapshot profiles). Stable across runs.
    pub fn synthetic(words: &[u64]) -> ChunkHash {
        ChunkHash(mix_words(0x5AB1_E71C, words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = ChunkHash::of_tokens(&[1, 2, 3]);
        assert_eq!(a, ChunkHash::of_tokens(&[1, 2, 3]));
        assert_ne!(a, ChunkHash::of_tokens(&[1, 2, 4]));
        assert_ne!(a, ChunkHash::of_tokens(&[3, 2, 1]), "order matters");
    }

    #[test]
    fn length_is_part_of_identity() {
        assert_ne!(
            ChunkHash::of_tokens(&[0, 0]),
            ChunkHash::of_tokens(&[0, 0, 0])
        );
    }

    #[test]
    fn zero_chunk_closed_form_matches_explicit() {
        for len in [0u64, 1, 7, 512] {
            let explicit = ChunkHash::of_tokens(&vec![0u64; len as usize]);
            assert_eq!(ChunkHash::of_zeros(len), explicit, "len {len}");
        }
    }

    #[test]
    fn synthetic_stream_is_stable() {
        // Pinned value: synthetic identities feed golden-tested fleet
        // accounting, so the construction must never drift silently.
        let h = ChunkHash::synthetic(&[7, 42]);
        assert_eq!(h, ChunkHash::synthetic(&[7, 42]));
        assert_ne!(h, ChunkHash::synthetic(&[42, 7]));
        assert_ne!(h, ChunkHash::of_tokens(&[7, 42]));
    }
}
