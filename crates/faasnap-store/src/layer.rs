//! Snapshot layers: a sparse map from chunk index to chunk identity.
//!
//! A **base** layer holds the non-zero chunks of a full memory image;
//! absent indices resolve to zeros. A **delta** layer holds only the
//! chunks that differ from the layers beneath it — including explicit
//! all-zero chunks, which act as tombstones ("this chunk was dirtied back
//! to zeros"). Resolution walks a snapshot's layers newest-first and takes
//! the first hit.

use std::collections::BTreeMap;

use crate::hash::ChunkHash;

/// Stable identity of a layer within one store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LayerId(pub u64);

/// Whether a layer is a family base or a per-instance delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerKind {
    Base,
    Delta,
}

/// A sparse chunk-index → chunk-hash map.
#[derive(Clone, Debug)]
pub struct Layer {
    pub kind: LayerKind,
    /// Chunk index (page / chunk_pages) → content identity.
    pub chunks: BTreeMap<u64, ChunkHash>,
}

impl Layer {
    pub fn new(kind: LayerKind) -> Layer {
        Layer {
            kind,
            chunks: BTreeMap::new(),
        }
    }

    /// Number of chunks this layer pins.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the layer maps no chunks (legal: a delta of an unchanged
    /// memory image is empty).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}
