//! Typed errors for store operations.

use std::fmt;

use crate::hash::ChunkHash;

/// Errors surfaced by [`crate::ChunkTable`] and [`crate::SnapshotStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A chunk hash was referenced but is not resident in the table.
    UnknownChunk(ChunkHash),
    /// A layer id was referenced but is not resident in the store.
    UnknownLayer(u64),
    /// A snapshot id was referenced but is not resident in the store.
    UnknownSnapshot(u64),
    /// An internal invariant check failed (refcount/byte accounting).
    Invariant(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownChunk(h) => write!(f, "unknown chunk {:#018x}", h.0),
            StoreError::UnknownLayer(id) => write!(f, "unknown layer {id}"),
            StoreError::UnknownSnapshot(id) => write!(f, "unknown snapshot {id}"),
            StoreError::Invariant(msg) => write!(f, "store invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
