//! Property tests for the folded-stack profiler: for any span tree the
//! collapse output is byte-identical across rebuilds of the same trace
//! (the profiler adds no iteration-order or float nondeterminism of its
//! own), every line parses as `stack <self-ns>`, and the self-times
//! attribute each nanosecond of a root span exactly once.

use faasnap_obs::{folded_stacks, render_phase_table, TraceContext, Tracer};
use proptest::prelude::*;
use sim_core::rng::Prng;
use sim_core::time::SimTime;

const NAMES: [&str; 7] = [
    "platform/invoke",
    "invocation",
    "setup",
    "function",
    "loader/prefetch",
    "fault/minor",
    "fault/major",
];

/// Builds a random-but-seed-determined span tree: a walk that either
/// opens a child of the current span or closes it, with strictly
/// advancing sim-time so every span nests inside its parent.
fn build_trace(seed: u64) -> Tracer {
    let tracer = Tracer::enabled();
    let mut rng = Prng::new(seed);
    let mut now_ns = 0u64;
    let mut open: Vec<TraceContext> = Vec::new();
    let steps = 4 + rng.below(60);
    for _ in 0..steps {
        now_ns += 1 + rng.below(10_000);
        let parent = open.last().copied().unwrap_or(TraceContext::NONE);
        // Bias toward opening while shallow, closing while deep.
        if open.is_empty() || (open.len() < 5 && rng.chance(0.6)) {
            let name = NAMES[rng.below(NAMES.len() as u64) as usize];
            let ctx = tracer.begin(name, "prop", SimTime::from_nanos(now_ns), parent);
            open.push(ctx);
        } else if let Some(ctx) = open.pop() {
            tracer.end(ctx, SimTime::from_nanos(now_ns));
        }
    }
    while let Some(ctx) = open.pop() {
        now_ns += 1 + rng.below(10_000);
        tracer.end(ctx, SimTime::from_nanos(now_ns));
    }
    tracer
}

proptest! {
    /// Same seed, byte-identical collapse output — the property the
    /// `--profile-out` golden relies on.
    #[test]
    fn folded_stacks_byte_identical(seed in 0u64..2_000) {
        let a = folded_stacks(&build_trace(seed));
        let b = folded_stacks(&build_trace(seed));
        prop_assert_eq!(a, b);
    }

    /// Output is well-formed collapse format: `root;child;... <self-ns>`
    /// lines, sorted, each self-time a positive integer.
    #[test]
    fn folded_stacks_well_formed(seed in 0u64..2_000) {
        let folded = folded_stacks(&build_trace(seed));
        let mut prev: Option<String> = None;
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').expect("stack <self-ns>");
            prop_assert!(!stack.is_empty());
            prop_assert!(stack.split(';').all(|f| NAMES.contains(&f)), "{stack}");
            let ns: u64 = ns.parse().expect("integer self-ns");
            prop_assert!(ns > 0, "zero-self stacks are omitted");
            if let Some(p) = &prev {
                prop_assert!(p < &line.to_string(), "sorted output");
            }
            prev = Some(line.to_string());
        }
    }

    /// Conservation: summed self-times equal the summed durations of the
    /// root spans — each nanosecond inside a root is attributed to
    /// exactly one stack, none dropped, none double-counted.
    #[test]
    fn folded_self_times_conserve_root_durations(seed in 0u64..2_000) {
        let tracer = build_trace(seed);
        let folded_total: u64 = folded_stacks(&tracer)
            .lines()
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        let root_total: u64 = tracer
            .spans()
            .iter()
            .filter(|s| s.parent == TraceContext::NONE)
            .map(|s| s.end.expect("all spans closed").since(s.start).as_nanos())
            .sum();
        prop_assert_eq!(folded_total, root_total);
    }

    /// The phase table renders for any tree and its self% column sums to
    /// ~100 for non-empty traces.
    #[test]
    fn phase_table_renders(seed in 0u64..500) {
        let table = render_phase_table(&build_trace(seed));
        prop_assert!(table.starts_with("phase"));
        let shares: f64 = table
            .lines()
            .skip(1)
            .map(|l| l.rsplit_once(' ').unwrap().1.trim_end_matches('%').parse::<f64>().unwrap())
            .sum();
        prop_assert!((shares - 100.0).abs() < 1.0, "self%% sums to {shares}");
    }
}
