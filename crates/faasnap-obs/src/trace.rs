//! The tracing core: spans and instants over simulated time.
//!
//! A [`Tracer`] is a cheap cloneable handle. Every clone shares one
//! buffer, so the daemon can hand the same handle to the host, the fault
//! resolver, and the loader, and all of them append to a single causally
//! linked trace. A disabled tracer (the default) carries no buffer at
//! all: every emission is a branch on an `Option` and nothing allocates,
//! which is what lets the hot fault path stay instrumented permanently.
//!
//! Spans are identified by [`TraceContext`], a `Copy` token small enough
//! to ride on DES events: the runtime begins a span when it schedules a
//! fault completion, carries the context on the event, and ends the span
//! when the event fires — giving real parent links and real sim-time
//! bounds instead of a reconstructed tree.

use std::cell::RefCell;
use std::rc::Rc;

use sim_core::json::Value;
use sim_core::time::{SimDuration, SimTime};

/// A handle to a live span (or to nothing). `0` is the null context, so
/// the token can be embedded in events without an `Option` wrapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext(u64);

impl TraceContext {
    /// The null context: no span. Emissions parented here become roots;
    /// ending it is a no-op.
    pub const NONE: TraceContext = TraceContext(0);

    /// True if this context refers to no span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    fn from_index(i: usize) -> Self {
        TraceContext(i as u64 + 1)
    }

    fn index(self) -> Option<usize> {
        (self.0 > 0).then(|| (self.0 - 1) as usize)
    }

    /// Stable span identifier (1-based; 0 means none), as exported.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

/// One recorded span.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Span name (e.g. `"fault/major"`). Static so emission never
    /// allocates for the common case.
    pub name: &'static str,
    /// Category (Chrome `cat` field), e.g. `"mm"`.
    pub cat: &'static str,
    /// Begin instant.
    pub start: SimTime,
    /// End instant; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Parent span (or [`TraceContext::NONE`] for roots).
    pub parent: TraceContext,
    /// Display track (Chrome `tid`); children inherit it at begin time.
    pub track: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, Value)>,
}

/// One recorded instant event.
#[derive(Clone, Debug)]
pub struct InstantRec {
    /// Event name.
    pub name: &'static str,
    /// Category.
    pub cat: &'static str,
    /// When it happened.
    pub at: SimTime,
    /// Enclosing span (or none).
    pub parent: TraceContext,
    /// Display track.
    pub track: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, Value)>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<SpanRec>,
    instants: Vec<InstantRec>,
    parent_stack: Vec<TraceContext>,
}

/// The tracing handle. Clones share one buffer; the default handle is
/// disabled and every operation on it is a no-op.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// A disabled tracer: no buffer, zero-cost emissions.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with an empty buffer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Begins a span at `now` under `parent` (inheriting its track).
    /// Returns [`TraceContext::NONE`] when disabled.
    pub fn begin(
        &self,
        name: &'static str,
        cat: &'static str,
        now: SimTime,
        parent: TraceContext,
    ) -> TraceContext {
        let Some(buf) = &self.inner else {
            return TraceContext::NONE;
        };
        let mut b = buf.borrow_mut();
        let track = parent
            .index()
            .and_then(|i| b.spans.get(i))
            .map(|s| s.track)
            .unwrap_or(0);
        b.spans.push(SpanRec {
            name,
            cat,
            start: now,
            end: None,
            parent,
            track,
            args: Vec::new(),
        });
        TraceContext::from_index(b.spans.len() - 1)
    }

    /// Ends the span at `now`. No-op for the null context or when the
    /// span was already closed (the first end wins).
    pub fn end(&self, ctx: TraceContext, now: SimTime) {
        let (Some(buf), Some(i)) = (&self.inner, ctx.index()) else {
            return;
        };
        let mut b = buf.borrow_mut();
        if let Some(span) = b.spans.get_mut(i) {
            if span.end.is_none() {
                span.end = Some(now);
            }
        }
    }

    /// Records a span with known bounds in one call.
    pub fn complete(
        &self,
        name: &'static str,
        cat: &'static str,
        start: SimTime,
        duration: SimDuration,
        parent: TraceContext,
    ) -> TraceContext {
        let ctx = self.begin(name, cat, start, parent);
        self.end(ctx, start + duration);
        ctx
    }

    /// Attaches a key/value annotation to a span.
    pub fn tag(&self, ctx: TraceContext, key: &'static str, value: impl Into<Value>) {
        let (Some(buf), Some(i)) = (&self.inner, ctx.index()) else {
            return;
        };
        let mut b = buf.borrow_mut();
        if let Some(span) = b.spans.get_mut(i) {
            span.args.push((key, value.into()));
        }
    }

    /// Records an instant event at `now` under `parent`.
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        now: SimTime,
        parent: TraceContext,
        args: Vec<(&'static str, Value)>,
    ) {
        let Some(buf) = &self.inner else {
            return;
        };
        let mut b = buf.borrow_mut();
        let track = parent
            .index()
            .and_then(|i| b.spans.get(i))
            .map(|s| s.track)
            .unwrap_or(0);
        b.instants.push(InstantRec {
            name,
            cat,
            at: now,
            parent,
            track,
            args,
        });
    }

    /// Overrides a span's display track (e.g. one track per VM). Later
    /// children inherit the new track.
    pub fn set_track(&self, ctx: TraceContext, track: u64) {
        let (Some(buf), Some(i)) = (&self.inner, ctx.index()) else {
            return;
        };
        let mut b = buf.borrow_mut();
        if let Some(span) = b.spans.get_mut(i) {
            span.track = track;
        }
    }

    /// Pushes a default parent for code that cannot thread a context
    /// (e.g. the platform wrapping a whole invocation run).
    pub fn push_parent(&self, ctx: TraceContext) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().parent_stack.push(ctx);
        }
    }

    /// Pops the innermost default parent.
    pub fn pop_parent(&self) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().parent_stack.pop();
        }
    }

    /// The innermost default parent, or the null context.
    pub fn current_parent(&self) -> TraceContext {
        self.inner
            .as_ref()
            .and_then(|buf| buf.borrow().parent_stack.last().copied())
            .unwrap_or(TraceContext::NONE)
    }

    /// Latest span end recorded so far. Lets a wrapper close its span at
    /// the moment its last child finished when it has no clock of its own.
    pub fn latest_end(&self) -> Option<SimTime> {
        self.inner
            .as_ref()
            .and_then(|b| b.borrow().spans.iter().filter_map(|s| s.end).max())
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner
            .as_ref()
            .map(|b| b.borrow().spans.len())
            .unwrap_or(0)
    }

    /// A copy of all spans, in creation order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().spans.clone())
            .unwrap_or_default()
    }

    /// A copy of all instants, in creation order.
    pub fn instants(&self) -> Vec<InstantRec> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().instants.clone())
            .unwrap_or_default()
    }

    /// Distinct span names, in first-appearance order.
    pub fn distinct_span_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for s in self.spans() {
            if !names.contains(&s.name) {
                names.push(s.name);
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        let ctx = tr.begin("x", "c", t(0), TraceContext::NONE);
        assert!(ctx.is_none());
        tr.end(ctx, t(5));
        tr.tag(ctx, "k", 1u64);
        tr.instant("i", "c", t(1), ctx, Vec::new());
        assert_eq!(tr.span_count(), 0);
        assert!(tr.spans().is_empty());
        assert!(tr.instants().is_empty());
    }

    #[test]
    fn spans_nest_and_share_buffer_across_clones() {
        let tr = Tracer::enabled();
        let clone = tr.clone();
        let root = tr.begin("root", "c", t(0), TraceContext::NONE);
        let child = clone.begin("child", "c", t(2), root);
        clone.end(child, t(4));
        tr.end(root, t(10));
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].parent, root);
        assert_eq!(spans[1].end, Some(t(4)));
        assert_eq!(spans[0].end, Some(t(10)));
    }

    #[test]
    fn first_end_wins() {
        let tr = Tracer::enabled();
        let s = tr.begin("s", "c", t(0), TraceContext::NONE);
        tr.end(s, t(3));
        tr.end(s, t(9));
        assert_eq!(tr.spans()[0].end, Some(t(3)));
    }

    #[test]
    fn children_inherit_track() {
        let tr = Tracer::enabled();
        let root = tr.begin("root", "c", t(0), TraceContext::NONE);
        tr.set_track(root, 7);
        let child = tr.begin("child", "c", t(1), root);
        assert_eq!(tr.spans()[child.index().unwrap()].track, 7);
    }

    #[test]
    fn parent_stack() {
        let tr = Tracer::enabled();
        assert!(tr.current_parent().is_none());
        let outer = tr.begin("outer", "c", t(0), TraceContext::NONE);
        tr.push_parent(outer);
        assert_eq!(tr.current_parent(), outer);
        tr.pop_parent();
        assert!(tr.current_parent().is_none());
    }

    #[test]
    fn distinct_names_in_first_appearance_order() {
        let tr = Tracer::enabled();
        tr.begin("a", "c", t(0), TraceContext::NONE);
        tr.begin("b", "c", t(1), TraceContext::NONE);
        tr.begin("a", "c", t(2), TraceContext::NONE);
        assert_eq!(tr.distinct_span_names(), vec!["a", "b"]);
    }
}
