//! The indented text-tree renderer.
//!
//! Re-implements the old `faasnap-daemon::spans` display format as just
//! another view over real recorded spans: each line is
//! `name [start +duration] key=value ...`, children indented two spaces,
//! in span-creation order. Unlike the old module, nothing here is
//! reconstructed from an `InvocationReport` — the tree is exactly what
//! the instrumented code emitted.

use sim_core::json::Value;
use sim_core::time::SimTime;

use crate::trace::{SpanRec, Tracer};

fn value_text(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        other => other.to_string_compact(),
    }
}

fn render_span(
    spans: &[SpanRec],
    children: &[Vec<usize>],
    i: usize,
    depth: usize,
    out: &mut String,
) {
    let s = &spans[i];
    let start = s.start.since(SimTime::ZERO);
    let indent = "  ".repeat(depth);
    out.push_str(&format!("{indent}{} [{start} ", s.name));
    match s.end {
        Some(end) => out.push_str(&format!("+{}]", end.since(s.start))),
        None => out.push_str("+?]"),
    }
    for (k, v) in &s.args {
        out.push_str(&format!(" {k}={}", value_text(v)));
    }
    out.push('\n');
    for &c in &children[i] {
        render_span(spans, children, c, depth + 1, out);
    }
}

/// Renders the whole buffer as an indented tree (roots in creation
/// order). Returns an empty string for a disabled tracer.
pub fn render_text_tree(tracer: &Tracer) -> String {
    let spans = tracer.spans();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.id() {
            0 => roots.push(i),
            p => children[(p - 1) as usize].push(i),
        }
    }
    let mut out = String::new();
    for r in roots {
        render_span(&spans, &children, r, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;
    use sim_core::time::SimDuration;

    #[test]
    fn renders_nesting_and_tags() {
        let tr = Tracer::enabled();
        let ms = |v| SimTime::ZERO + SimDuration::from_millis(v);
        let root = tr.begin("invocation", "vm", ms(0), TraceContext::NONE);
        tr.tag(root, "function", "image");
        let setup = tr.complete("setup", "vm", ms(0), SimDuration::from_millis(50), root);
        tr.tag(setup, "mmap_calls", 117u64);
        let f = tr.begin("function", "vm", ms(50), root);
        tr.complete("fault/major", "mm", ms(60), SimDuration::from_micros(90), f);
        tr.end(f, ms(170));
        tr.end(root, ms(170));
        let text = render_text_tree(&tr);
        assert!(text.starts_with("invocation [0ns +170"), "got: {text}");
        assert!(text.contains("function=image"));
        assert!(text.contains("\n  setup"));
        assert!(text.contains("mmap_calls=117"));
        assert!(text.contains("\n    fault/major"));
    }

    #[test]
    fn disabled_renders_empty() {
        assert_eq!(render_text_tree(&Tracer::disabled()), "");
    }

    #[test]
    fn open_span_renders_question_mark() {
        let tr = Tracer::enabled();
        tr.begin("open", "c", SimTime::ZERO, TraceContext::NONE);
        assert!(render_text_tree(&tr).contains("+?]"));
    }
}
