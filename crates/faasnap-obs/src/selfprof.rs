//! Engine self-profiling: where does the *simulator* spend its effort?
//!
//! The tracer and metrics registry measure simulated time — what the
//! modeled system does. [`SelfProfile`] measures the simulator itself:
//! events processed by the DES loop, map operations in fault resolution,
//! bytes materialized by the chunk store, router lookups, and (behind
//! the `wallclock` cargo feature) real monotonic nanoseconds per
//! subsystem. This is the measurement substrate the raw-speed roadmap
//! item optimizes against: first see where the wall-clock goes, then
//! make it go away.
//!
//! Determinism: counters are driven entirely by simulation work, so a
//! default build (feature off) produces byte-identical reports per seed
//! — every `wall_ns` column reads 0. Enabling `wallclock` swaps in
//! `std::time::Instant`, the one sanctioned monotonic-clock use in the
//! workspace; the determinism lint carves out exactly this crate for
//! the `no-wallclock` rule, and nothing here ever feeds timing back
//! into the simulation, so sim results stay identical either way.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Accumulated cost of one named scope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStat {
    /// Times the scope was entered.
    pub calls: u64,
    /// Total wall-clock nanoseconds spent inside (0 without the
    /// `wallclock` feature).
    pub wall_ns: u64,
}

#[derive(Debug, Default)]
struct SelfBuf {
    counters: BTreeMap<&'static str, u64>,
    scopes: BTreeMap<&'static str, ScopeStat>,
}

/// The self-profiling handle. Clones share one buffer, mirroring
/// [`crate::Tracer`]/[`crate::Metrics`]: the default handle is disabled
/// and every operation on it is a branch on an `Option`.
#[derive(Clone, Debug, Default)]
pub struct SelfProfile {
    inner: Option<Rc<RefCell<SelfBuf>>>,
}

impl SelfProfile {
    /// A disabled handle: zero-cost no-op emissions.
    pub fn disabled() -> Self {
        SelfProfile::default()
    }

    /// An enabled handle with an empty buffer.
    pub fn enabled() -> Self {
        SelfProfile {
            inner: Some(Rc::new(RefCell::new(SelfBuf::default()))),
        }
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `v` to a named counter.
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(buf) = &self.inner {
            *buf.borrow_mut().counters.entry(name).or_insert(0) += v;
        }
    }

    /// Increments a named counter by one.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets a named counter to the maximum of its current value and `v`
    /// (for high-water marks like peak queue depth).
    pub fn max(&self, name: &'static str, v: u64) {
        if let Some(buf) = &self.inner {
            let mut b = buf.borrow_mut();
            let slot = b.counters.entry(name).or_insert(0);
            *slot = (*slot).max(v);
        }
    }

    /// Current value of a counter (0 if never touched or disabled).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|b| b.borrow().counters.get(name).copied())
            .unwrap_or(0)
    }

    /// Folds a batch of `(name, value)` pairs into the counters — the
    /// harvest path for subsystems that cannot hold a handle (sim-core
    /// and faasnap-store sit below faasnap-obs in the crate DAG, so they
    /// expose plain stat structs that callers feed in here).
    pub fn harvest(&self, pairs: impl IntoIterator<Item = (&'static str, u64)>) {
        if self.inner.is_some() {
            for (name, v) in pairs {
                self.add(name, v);
            }
        }
    }

    /// Directly accumulates `calls`/`wall_ns` into a named scope.
    pub fn record_scope(&self, name: &'static str, calls: u64, wall_ns: u64) {
        if let Some(buf) = &self.inner {
            let mut b = buf.borrow_mut();
            let s = b.scopes.entry(name).or_default();
            s.calls += calls;
            s.wall_ns += wall_ns;
        }
    }

    /// Enters a named scope; the returned guard records one call (plus
    /// elapsed wall time under the `wallclock` feature) when dropped.
    pub fn scope(&self, name: &'static str) -> ScopeGuard {
        ScopeGuard {
            prof: self.clone(),
            name,
            #[cfg(feature = "wallclock")]
            start: self.inner.as_ref().map(|_| std::time::Instant::now()),
        }
    }

    /// Snapshot of all counters in name order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().counters.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    /// Snapshot of all scopes in name order.
    pub fn scopes(&self) -> Vec<(&'static str, ScopeStat)> {
        self.inner
            .as_ref()
            .map(|b| b.borrow().scopes.iter().map(|(k, v)| (*k, *v)).collect())
            .unwrap_or_default()
    }

    /// Renders the text report: a `== counters ==` section of
    /// `name value` lines and a `== scopes ==` table of
    /// `name calls wall_ns`, both in name order. Empty string when
    /// disabled. Byte-deterministic per seed on default builds, where
    /// every `wall_ns` is 0.
    pub fn render_report(&self) -> String {
        if !self.is_enabled() {
            return String::new();
        }
        let mut out = String::from("== counters ==\n");
        for (name, v) in self.counters() {
            out.push_str(&format!("{name} {v}\n"));
        }
        out.push_str("== scopes ==\n");
        for (name, s) in self.scopes() {
            out.push_str(&format!("{name} calls={} wall_ns={}\n", s.calls, s.wall_ns));
        }
        out
    }
}

/// RAII guard for [`SelfProfile::scope`].
#[must_use = "the scope is measured when the guard drops"]
pub struct ScopeGuard {
    prof: SelfProfile,
    name: &'static str,
    #[cfg(feature = "wallclock")]
    start: Option<std::time::Instant>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        #[cfg(feature = "wallclock")]
        let ns = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        #[cfg(not(feature = "wallclock"))]
        let ns = 0u64;
        self.prof.record_scope(self.name, 1, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let p = SelfProfile::disabled();
        p.inc("a");
        p.add("b", 10);
        p.record_scope("s", 1, 5);
        drop(p.scope("s"));
        assert!(!p.is_enabled());
        assert_eq!(p.counter("a"), 0);
        assert!(p.counters().is_empty());
        assert!(p.scopes().is_empty());
        assert_eq!(p.render_report(), "");
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let p = SelfProfile::enabled();
        p.inc("z/events");
        p.add("a/bytes", 4096);
        p.inc("z/events");
        p.max("a/peak", 7);
        p.max("a/peak", 3);
        assert_eq!(p.counter("z/events"), 2);
        assert_eq!(
            p.counters(),
            vec![("a/bytes", 4096), ("a/peak", 7), ("z/events", 2)],
        );
    }

    #[test]
    fn harvest_folds_pairs() {
        let p = SelfProfile::enabled();
        p.harvest([("engine/delivered", 100), ("engine/scheduled", 120)]);
        p.harvest([("engine/delivered", 5)]);
        assert_eq!(p.counter("engine/delivered"), 105);
        assert_eq!(p.counter("engine/scheduled"), 120);
    }

    #[test]
    fn scopes_count_calls() {
        let p = SelfProfile::enabled();
        for _ in 0..3 {
            let _g = p.scope("engine/run");
        }
        p.record_scope("store/materialize", 2, 0);
        let scopes = p.scopes();
        assert_eq!(scopes.len(), 2);
        assert_eq!(scopes[0].0, "engine/run");
        assert_eq!(scopes[0].1.calls, 3);
        assert_eq!(scopes[1].1.calls, 2);
    }

    #[test]
    fn shared_buffer_across_clones() {
        let p = SelfProfile::enabled();
        let q = p.clone();
        p.inc("x");
        q.inc("x");
        assert_eq!(p.counter("x"), 2);
    }

    #[test]
    fn report_layout() {
        let p = SelfProfile::enabled();
        p.add("engine/events", 12);
        p.record_scope("engine/run", 1, 0);
        let r = p.render_report();
        assert_eq!(
            r,
            "== counters ==\nengine/events 12\n== scopes ==\nengine/run calls=1 wall_ns=0\n",
        );
    }

    #[cfg(not(feature = "wallclock"))]
    #[test]
    fn default_build_reports_zero_wall_ns() {
        let p = SelfProfile::enabled();
        drop(p.scope("s"));
        assert_eq!(p.scopes()[0].1.wall_ns, 0);
    }
}
