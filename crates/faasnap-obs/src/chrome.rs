//! Chrome trace-event JSON export.
//!
//! Produces the ["trace event format"] consumed by Perfetto and
//! `chrome://tracing`: completed spans become `"ph": "X"` events with
//! microsecond `ts`/`dur`, instants become `"ph": "i"`. All values are
//! derived from sim-time and emitted through [`sim_core::json`]'s
//! order-preserving writer, so two runs with the same seed serialize
//! byte-identically — a property the golden tests pin.
//!
//! ["trace event format"]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use sim_core::json::Value;
use sim_core::time::SimTime;

use crate::trace::{SpanRec, TraceContext, Tracer};

/// The process id used for every event (one simulated host).
const PID: u64 = 1;

fn us(t: SimTime) -> f64 {
    t.as_micros_f64()
}

fn args_object(span_id: u64, parent: TraceContext, args: &[(&'static str, Value)]) -> Value {
    let mut o = Value::object()
        .with("span_id", span_id)
        .with("parent_id", parent.id());
    for (k, v) in args {
        o.set(k, v.clone());
    }
    o
}

/// Renders one span as a Chrome `"X"` (complete) event. Open spans are
/// exported with zero duration and an `unclosed` marker rather than
/// dropped, so a wedged simulation still yields a loadable trace.
fn span_event(id: u64, s: &SpanRec) -> Value {
    let end = s.end.unwrap_or(s.start);
    let mut args = args_object(id, s.parent, &s.args);
    if s.end.is_none() {
        args.set("unclosed", true);
    }
    Value::object()
        .with("name", s.name)
        .with("cat", s.cat)
        .with("ph", "X")
        .with("ts", us(s.start))
        .with("dur", us(end) - us(s.start))
        .with("pid", PID)
        .with("tid", s.track)
        .with("args", args)
}

/// Builds the full trace document for a tracer's buffer.
pub fn chrome_trace(tracer: &Tracer) -> Value {
    let mut events = vec![Value::object()
        .with("name", "process_name")
        .with("ph", "M")
        .with("pid", PID)
        .with("tid", 0u64)
        .with("args", Value::object().with("name", "faasnap-sim"))];
    for (i, s) in tracer.spans().iter().enumerate() {
        events.push(span_event(i as u64 + 1, s));
    }
    for inst in tracer.instants() {
        events.push(
            Value::object()
                .with("name", inst.name)
                .with("cat", inst.cat)
                .with("ph", "i")
                .with("ts", us(inst.at))
                .with("s", "t")
                .with("pid", PID)
                .with("tid", inst.track)
                .with("args", args_object(0, inst.parent, &inst.args)),
        );
    }
    Value::object()
        .with("displayTimeUnit", "ms")
        .with("traceEvents", Value::Array(events))
}

/// The trace document as pretty-printed JSON (deterministic bytes).
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut s = chrome_trace(tracer).to_string_pretty();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    fn sample() -> Tracer {
        let tr = Tracer::enabled();
        let root = tr.begin("invocation", "vm", t(0), TraceContext::NONE);
        tr.tag(root, "strategy", "faasnap");
        let f = tr.complete("function", "vm", t(50), SimDuration::from_micros(100), root);
        tr.instant("reply", "vm", t(150), f, Vec::new());
        tr.end(root, t(150));
        tr
    }

    #[test]
    fn document_shape() {
        let doc = chrome_trace(&sample());
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata + two spans + one instant.
        assert_eq!(events.len(), 4);
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("invocation"));
        assert_eq!(events[1].get("dur").unwrap().as_f64(), Some(150.0));
        assert_eq!(events[3].get("ph").unwrap().as_str(), Some("i"));
        // Parent link of the child span points at span 1.
        let args = events[2].get("args").unwrap();
        assert_eq!(args.get("parent_id").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn output_parses_and_round_trips_deterministically() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
        sim_core::json::parse(&a).expect("valid JSON");
    }

    #[test]
    fn unclosed_span_marked_not_dropped() {
        let tr = Tracer::enabled();
        tr.begin("open", "c", t(5), TraceContext::NONE);
        let doc = chrome_trace(&tr);
        let ev = &doc.get("traceEvents").unwrap().as_array().unwrap()[1];
        assert_eq!(ev.get("dur").unwrap().as_f64(), Some(0.0));
        assert_eq!(
            ev.get("args").unwrap().get("unclosed").cloned(),
            Some(Value::Bool(true))
        );
    }
}
