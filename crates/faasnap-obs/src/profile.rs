//! The sim-time profiler: folded flamegraph stacks and a per-phase
//! self/total table over the recorded span tree.
//!
//! [`folded_stacks`] renders the classic `collapse` format — one line
//! per distinct call stack, `root;child;leaf <self-nanoseconds>` —
//! loadable directly in speedscope or `inferno-flamegraph`. Self time is
//! a span's duration minus the durations of its children, so the stacks
//! attribute every simulated nanosecond exactly once and the flamegraph
//! widths sum to the trace's wall span. Lines are emitted in
//! lexicographic stack order, which makes the output a pure function of
//! the recorded spans: the repository pins it byte-for-byte in goldens.
//!
//! [`render_phase_table`] aggregates the same self/total accounting into
//! the paper's latency-breakdown vocabulary: restore/setup work,
//! guest-fault wait, loader prefetch, function compute, fleet queueing.
//! This is the table the FaaSnap evaluation lives on (where does a
//! restored invocation actually spend its time?), computed from real
//! span bounds rather than reconstructed counters.

use std::collections::BTreeMap;

use sim_core::time::SimDuration;

use crate::trace::{SpanRec, TraceContext, Tracer};

/// The phase vocabulary of the latency breakdown, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Snapshot restore and VM setup work (mappings, record phase).
    Restore,
    /// Guest execution blocked on page-fault resolution.
    FaultWait,
    /// Loading-set prefetch and readahead I/O.
    LoaderPrefetch,
    /// The function's own compute (trace execution).
    Compute,
    /// Fleet-level queueing and routing.
    Queueing,
    /// Everything else (platform wrappers, uncategorized spans).
    Other,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Restore,
        Phase::FaultWait,
        Phase::LoaderPrefetch,
        Phase::Compute,
        Phase::Queueing,
        Phase::Other,
    ];

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Restore => "restore",
            Phase::FaultWait => "guest-fault-wait",
            Phase::LoaderPrefetch => "loader-prefetch",
            Phase::Compute => "compute",
            Phase::Queueing => "queueing",
            Phase::Other => "other",
        }
    }

    /// Classifies a span by name: the span taxonomy is small and stable
    /// (pinned by the trace goldens), so prefix rules suffice.
    pub fn classify(span_name: &str) -> Phase {
        if span_name == "setup" || span_name == "platform/record" {
            Phase::Restore
        } else if span_name.starts_with("fault/") {
            Phase::FaultWait
        } else if span_name.starts_with("loader/") || span_name.starts_with("readahead/") {
            Phase::LoaderPrefetch
        } else if span_name == "function" {
            Phase::Compute
        } else if span_name.starts_with("fleet/") {
            Phase::Queueing
        } else {
            Phase::Other
        }
    }
}

/// A span's duration in nanoseconds; open spans count as zero-length
/// (they never finished, so they own no attributable sim time).
fn duration_ns(s: &SpanRec) -> u64 {
    s.end.map(|e| e.since(s.start).as_nanos()).unwrap_or(0)
}

/// Per-span self time: duration minus the summed durations of direct
/// children, clamped at zero (overlapping children cannot drive a
/// parent's self time negative).
fn self_times_ns(spans: &[SpanRec]) -> Vec<u64> {
    let mut child_ns = vec![0u64; spans.len()];
    for s in spans {
        if let Some(p) = parent_index(s.parent) {
            child_ns[p] += duration_ns(s);
        }
    }
    spans
        .iter()
        .zip(&child_ns)
        .map(|(s, &c)| duration_ns(s).saturating_sub(c))
        .collect()
}

fn parent_index(ctx: TraceContext) -> Option<usize> {
    match ctx.id() {
        0 => None,
        p => Some((p - 1) as usize),
    }
}

/// The `name;name;...` stack path of each span (root first).
fn stack_paths(spans: &[SpanRec]) -> Vec<String> {
    let mut paths: Vec<String> = Vec::with_capacity(spans.len());
    for s in spans {
        // Spans only ever reference earlier spans as parents (contexts
        // are handed out in creation order), so parents are resolved.
        let path = match parent_index(s.parent) {
            Some(p) => format!("{};{}", paths[p], s.name),
            None => s.name.to_string(),
        };
        paths.push(path);
    }
    paths
}

/// Renders the recorded spans as folded flamegraph stacks: one line per
/// distinct stack, `a;b;c <self-ns>`, lexicographically sorted, with a
/// trailing newline. Zero-self-time stacks are omitted (they would draw
/// zero-width frames). Returns an empty string for a disabled tracer or
/// an empty buffer.
pub fn folded_stacks(tracer: &Tracer) -> String {
    let spans = tracer.spans();
    let selfs = self_times_ns(&spans);
    let paths = stack_paths(&spans);
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for (path, ns) in paths.into_iter().zip(selfs) {
        if ns > 0 {
            *agg.entry(path).or_insert(0) += ns;
        }
    }
    let mut out = String::new();
    for (path, ns) in agg {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// One row of the phase table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// Summed self time of spans in this phase.
    pub self_ns: u64,
    /// Summed durations of spans in this phase (children included, so a
    /// phase whose spans nest can exceed its self time).
    pub total_ns: u64,
    /// Number of spans classified into this phase.
    pub spans: u64,
}

/// Aggregates spans into per-phase self/total sim time, indexed in
/// [`Phase::ALL`] order.
pub fn phase_breakdown(tracer: &Tracer) -> Vec<(Phase, PhaseRow)> {
    let spans = tracer.spans();
    let selfs = self_times_ns(&spans);
    let mut rows: BTreeMap<Phase, PhaseRow> = BTreeMap::new();
    for (s, &self_ns) in spans.iter().zip(&selfs) {
        let row = rows.entry(Phase::classify(s.name)).or_default();
        row.self_ns += self_ns;
        row.total_ns += duration_ns(s);
        row.spans += 1;
    }
    Phase::ALL
        .iter()
        .filter_map(|&p| rows.get(&p).map(|r| (p, r.clone())))
        .collect()
}

/// Renders the per-phase table as fixed-width text: phase, self time,
/// total time, span count, and self share of the summed self time.
/// Deterministic: phases in fixed order, durations via [`SimDuration`]'s
/// display, shares rounded to 0.1%.
pub fn render_phase_table(tracer: &Tracer) -> String {
    if !tracer.is_enabled() {
        return String::new();
    }
    let rows = phase_breakdown(tracer);
    let grand_self: u64 = rows.iter().map(|(_, r)| r.self_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>7} {:>7}\n",
        "phase", "self", "total", "spans", "self%"
    ));
    for (phase, row) in rows {
        let share = if grand_self == 0 {
            0.0
        } else {
            row.self_ns as f64 * 100.0 / grand_self as f64
        };
        out.push_str(&format!(
            "{:<18} {:>12} {:>12} {:>7} {:>6.1}%\n",
            phase.label(),
            SimDuration::from_nanos(row.self_ns).to_string(),
            SimDuration::from_nanos(row.total_ns).to_string(),
            row.spans,
            (share * 10.0).round() / 10.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimTime;

    fn us(v: u64) -> SimTime {
        SimTime::from_nanos(v * 1000)
    }

    /// platform/invoke (0..100µs)
    ///   setup (0..30µs)
    ///   function (30..100µs)
    ///     fault/major (40..50µs)
    ///     fault/minor (50..52µs)
    fn sample() -> Tracer {
        let tr = Tracer::enabled();
        let root = tr.begin("platform/invoke", "daemon", us(0), TraceContext::NONE);
        let setup = tr.begin("setup", "vm", us(0), root);
        tr.end(setup, us(30));
        let f = tr.begin("function", "vm", us(30), root);
        let maj = tr.begin("fault/major", "mm", us(40), f);
        tr.end(maj, us(50));
        let min = tr.begin("fault/minor", "mm", us(50), f);
        tr.end(min, us(52));
        tr.end(f, us(100));
        tr.end(root, us(100));
        tr
    }

    #[test]
    fn folded_stacks_attribute_self_time_once() {
        let folded = folded_stacks(&sample());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "platform/invoke;function 58000",
                "platform/invoke;function;fault/major 10000",
                "platform/invoke;function;fault/minor 2000",
                "platform/invoke;setup 30000",
            ],
        );
        // Self times sum to the root's wall span: every nanosecond
        // attributed exactly once.
        let total: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn folded_stacks_merge_identical_stacks() {
        let tr = Tracer::enabled();
        let root = tr.begin("r", "c", us(0), TraceContext::NONE);
        for i in 0..3u64 {
            let c = tr.begin("leaf", "c", us(10 * i), root);
            tr.end(c, us(10 * i + 4));
        }
        tr.end(root, us(100));
        let folded = folded_stacks(&tr);
        assert_eq!(folded, "r 88000\nr;leaf 12000\n");
    }

    #[test]
    fn disabled_and_empty_render_empty() {
        assert_eq!(folded_stacks(&Tracer::disabled()), "");
        assert_eq!(folded_stacks(&Tracer::enabled()), "");
        assert_eq!(render_phase_table(&Tracer::disabled()), "");
        // An enabled-but-empty tracer still renders the header.
        let header_only = render_phase_table(&Tracer::enabled());
        assert_eq!(header_only.lines().count(), 1);
    }

    #[test]
    fn open_spans_own_no_time() {
        let tr = Tracer::enabled();
        let root = tr.begin("r", "c", us(0), TraceContext::NONE);
        tr.begin("open", "c", us(1), root);
        tr.end(root, us(10));
        // The open child contributes nothing; the root keeps its full span.
        assert_eq!(folded_stacks(&tr), "r 10000\n");
    }

    #[test]
    fn phase_classification_covers_taxonomy() {
        assert_eq!(Phase::classify("setup"), Phase::Restore);
        assert_eq!(Phase::classify("platform/record"), Phase::Restore);
        assert_eq!(Phase::classify("fault/major"), Phase::FaultWait);
        assert_eq!(Phase::classify("fault/uffd"), Phase::FaultWait);
        assert_eq!(Phase::classify("loader/prefetch"), Phase::LoaderPrefetch);
        assert_eq!(Phase::classify("loader/chunk"), Phase::LoaderPrefetch);
        assert_eq!(Phase::classify("readahead/async"), Phase::LoaderPrefetch);
        assert_eq!(Phase::classify("function"), Phase::Compute);
        assert_eq!(Phase::classify("fleet/request"), Phase::Queueing);
        assert_eq!(Phase::classify("platform/invoke"), Phase::Other);
        assert_eq!(Phase::classify("invocation"), Phase::Other);
    }

    #[test]
    fn phase_breakdown_self_vs_total() {
        let rows = phase_breakdown(&sample());
        let get = |p: Phase| {
            rows.iter()
                .find(|(q, _)| *q == p)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        let compute = get(Phase::Compute);
        assert_eq!(compute.total_ns, 70_000, "function span 30..100µs");
        assert_eq!(compute.self_ns, 58_000, "minus 12µs of faults");
        let faults = get(Phase::FaultWait);
        assert_eq!(faults.spans, 2);
        assert_eq!(faults.self_ns, 12_000);
        assert_eq!(faults.self_ns, faults.total_ns, "faults are leaves");
    }

    #[test]
    fn phase_table_is_deterministic() {
        let render = || render_phase_table(&sample());
        let text = render();
        assert_eq!(text, render());
        assert!(text.starts_with("phase"));
        assert!(text.contains("guest-fault-wait"));
        assert!(text.contains("compute"));
        // Fixed phase order: restore before compute before other.
        let restore = text.find("restore").unwrap();
        let compute = text.find("compute").unwrap();
        let other = text.find("other").unwrap();
        assert!(restore < compute && compute < other);
    }
}
