//! Observability for the FaaSnap simulation.
//!
//! Three pieces, all deterministic and all zero-cost when disabled:
//!
//! * [`trace`] — causal spans and instant events over simulated time.
//!   A [`Tracer`] handle is cloned into each layer (fault resolver,
//!   loader, platform, fleet router); [`TraceContext`] tokens ride on
//!   DES events so spans get real parent links and real sim-time bounds.
//! * [`chrome`] / [`text`] — two renderers over the same recorded
//!   buffer: Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`) and the classic indented text tree.
//! * [`metrics`] — a counters/gauges/histograms registry with
//!   Prometheus text exposition, backed by
//!   [`sim_core::stats::Log2Histogram`].
//!
//! Handles are `Rc`-shared rather than global: the simulation is
//! single-threaded and deterministic, and keeping the registry on the
//! `Host`/`Platform` keeps two concurrent simulations (e.g. in tests)
//! fully isolated.

#![forbid(unsafe_code)]
pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod selfprof;
pub mod text;
pub mod trace;

pub use chrome::{chrome_trace, chrome_trace_json};
pub use metrics::Metrics;
pub use profile::{folded_stacks, phase_breakdown, render_phase_table, Phase, PhaseRow};
pub use selfprof::{ScopeStat, SelfProfile};
pub use text::render_text_tree;
pub use trace::{InstantRec, SpanRec, TraceContext, Tracer};
