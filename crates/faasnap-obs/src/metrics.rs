//! A small metrics registry with Prometheus text exposition.
//!
//! Counters, gauges, and [`Log2Histogram`]-backed histograms, addressed
//! by `(name, labels)`. Like [`crate::trace::Tracer`], a [`Metrics`]
//! handle is a cheap clone sharing one registry, and the default handle
//! is disabled (every operation a no-op). Series are stored in
//! first-touch order — never hashed — so a deterministic simulation
//! produces byte-identical exposition text.
//!
//! Histogram buckets reuse [`Log2Histogram::EDGES_US`], i.e. histogram
//! metrics are *microsecond* latencies bucketed by powers of two, which
//! is exactly the paper's Figure 2 presentation re-expressed as a
//! Prometheus histogram.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use sim_core::stats::Log2Histogram;
use sim_core::time::SimDuration;

/// Label set: key/value pairs in fixed order.
type Labels = Vec<(&'static str, String)>;

#[derive(Debug)]
struct Series<T> {
    name: &'static str,
    labels: Labels,
    value: T,
}

#[derive(Debug, Default)]
struct Registry {
    counters: Vec<Series<u64>>,
    gauges: Vec<Series<f64>>,
    histograms: Vec<Series<Log2Histogram>>,
}

fn find_or_insert<'a, T: Default>(
    series: &'a mut Vec<Series<T>>,
    name: &'static str,
    labels: &[(&'static str, &str)],
) -> &'a mut T {
    let pos = series
        .iter()
        .position(|s| s.name == name && labels_match(&s.labels, labels));
    let idx = match pos {
        Some(i) => i,
        None => {
            series.push(Series {
                name,
                labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
                value: T::default(),
            });
            series.len() - 1
        }
    };
    &mut series[idx].value
}

fn labels_match(stored: &Labels, query: &[(&'static str, &str)]) -> bool {
    stored.len() == query.len()
        && stored
            .iter()
            .zip(query)
            .all(|((sk, sv), (qk, qv))| sk == qk && sv == qv)
}

fn label_suffix(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Distinct family names in first-touch order.
fn family_names<T>(series: &[Series<T>]) -> Vec<&'static str> {
    let mut names = Vec::new();
    for s in series {
        if !names.contains(&s.name) {
            names.push(s.name);
        }
    }
    names
}

/// Formats an edge for a `le` label: integral edges drop the fraction,
/// infinity becomes `+Inf`.
fn le_label(edge: f64) -> String {
    if edge.is_infinite() {
        "+Inf".to_string()
    } else if edge.fract() == 0.0 {
        format!("{}", edge as u64)
    } else {
        format!("{edge}")
    }
}

/// The metrics handle. Clones share one registry; the default handle is
/// disabled.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    inner: Option<Rc<RefCell<Registry>>>,
}

impl Metrics {
    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// An enabled handle with an empty registry.
    pub fn enabled() -> Self {
        Metrics {
            inner: Some(Rc::new(RefCell::new(Registry::default()))),
        }
    }

    /// True if this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&self, name: &'static str, labels: &[(&'static str, &str)], v: u64) {
        if let Some(reg) = &self.inner {
            *find_or_insert(&mut reg.borrow_mut().counters, name, labels) += v;
        }
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        if let Some(reg) = &self.inner {
            *find_or_insert(&mut reg.borrow_mut().gauges, name, labels) = v;
        }
    }

    /// Raises a gauge to `v` if `v` is larger (high-water marks such as
    /// peak queue depth).
    pub fn gauge_max(&self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        if let Some(reg) = &self.inner {
            let mut reg = reg.borrow_mut();
            let g = find_or_insert(&mut reg.gauges, name, labels);
            if v > *g {
                *g = v;
            }
        }
    }

    /// Records a duration sample into a log2-µs histogram.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], d: SimDuration) {
        if let Some(reg) = &self.inner {
            find_or_insert(&mut reg.borrow_mut().histograms, name, labels).record(d);
        }
    }

    /// Current value of a counter, if it exists (for tests/assertions).
    pub fn counter_value(&self, name: &str, labels: &[(&'static str, &str)]) -> Option<u64> {
        let reg = self.inner.as_ref()?;
        let reg = reg.borrow();
        reg.counters
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
            .map(|s| s.value)
    }

    /// Renders the registry in Prometheus text exposition format.
    /// Families appear in first-touch order (counters, then gauges, then
    /// histograms), each introduced by a `# TYPE` line with all of its
    /// series grouped under it, as the exposition format requires.
    pub fn render_prometheus(&self) -> String {
        let Some(reg) = &self.inner else {
            return String::new();
        };
        let reg = reg.borrow();
        let mut out = String::new();
        for name in family_names(&reg.counters) {
            let _ = writeln!(out, "# TYPE {name} counter");
            for s in reg.counters.iter().filter(|s| s.name == name) {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    s.name,
                    label_suffix(&s.labels, None),
                    s.value
                );
            }
        }
        for name in family_names(&reg.gauges) {
            let _ = writeln!(out, "# TYPE {name} gauge");
            for s in reg.gauges.iter().filter(|s| s.name == name) {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    s.name,
                    label_suffix(&s.labels, None),
                    s.value
                );
            }
        }
        for name in family_names(&reg.histograms) {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for s in reg.histograms.iter().filter(|s| s.name == name) {
                let rows = s.value.rows();
                let mut cum = 0u64;
                // rows[0] is the below-first-edge count; rows[i + 1] the
                // i-th bucket. Cumulate into `le` buckets at each finite
                // edge; the final open bucket becomes the `+Inf` row.
                let finite = Log2Histogram::EDGES_US.len() - 1;
                for (i, &edge) in Log2Histogram::EDGES_US[..finite].iter().enumerate() {
                    cum += rows[i].1;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_suffix(&s.labels, Some(("le", &le_label(edge)))),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    label_suffix(&s.labels, Some(("le", "+Inf"))),
                    s.value.count()
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_suffix(&s.labels, None),
                    s.value.total().as_micros_f64()
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_suffix(&s.labels, None),
                    s.value.count()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let m = Metrics::disabled();
        m.counter_inc("c", &[]);
        m.gauge_set("g", &[], 3.0);
        m.observe("h", &[], SimDuration::from_micros(5));
        assert_eq!(m.render_prometheus(), "");
        assert_eq!(m.counter_value("c", &[]), None);
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = Metrics::enabled();
        m.counter_inc("faults_total", &[("class", "minor")]);
        m.counter_inc("faults_total", &[("class", "minor")]);
        m.counter_add("faults_total", &[("class", "major")], 5);
        assert_eq!(
            m.counter_value("faults_total", &[("class", "minor")]),
            Some(2)
        );
        assert_eq!(
            m.counter_value("faults_total", &[("class", "major")]),
            Some(5)
        );
        let text = m.render_prometheus();
        assert_eq!(
            text.lines().next(),
            Some("# TYPE faults_total counter"),
            "one TYPE line first"
        );
        assert!(text.contains("faults_total{class=\"minor\"} 2"));
        assert!(text.contains("faults_total{class=\"major\"} 5"));
        assert_eq!(text.matches("# TYPE faults_total").count(), 1);
    }

    #[test]
    fn families_grouped_despite_interleaved_touches() {
        let m = Metrics::enabled();
        m.counter_inc("a_total", &[("k", "1")]);
        m.counter_inc("b_total", &[]);
        m.counter_inc("a_total", &[("k", "2")]);
        let lines: Vec<String> = m.render_prometheus().lines().map(String::from).collect();
        assert_eq!(
            lines,
            [
                "# TYPE a_total counter",
                "a_total{k=\"1\"} 1",
                "a_total{k=\"2\"} 1",
                "# TYPE b_total counter",
                "b_total 1",
            ]
        );
    }

    #[test]
    fn gauge_max_keeps_high_water_mark() {
        let m = Metrics::enabled();
        m.gauge_max("depth", &[], 3.0);
        m.gauge_max("depth", &[], 1.0);
        m.gauge_max("depth", &[], 7.0);
        assert!(m.render_prometheus().contains("depth 7"));
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let m = Metrics::enabled();
        m.observe("wait_us", &[], SimDuration::from_micros_f64(0.3));
        m.observe("wait_us", &[], SimDuration::from_micros_f64(3.0));
        m.observe("wait_us", &[], SimDuration::from_micros_f64(700.0));
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE wait_us histogram"));
        assert!(text.contains("wait_us_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("wait_us_bucket{le=\"4\"} 2"));
        assert!(text.contains("wait_us_bucket{le=\"512\"} 2"));
        assert!(text.contains("wait_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wait_us_sum 703.3"));
        assert!(text.contains("wait_us_count 3"));
    }

    #[test]
    fn exposition_is_deterministic_given_same_operations() {
        let build = || {
            let m = Metrics::enabled();
            m.counter_inc("a_total", &[("k", "x")]);
            m.gauge_set("b", &[], 2.5);
            m.observe("c_us", &[], SimDuration::from_micros(9));
            m.render_prometheus()
        };
        assert_eq!(build(), build());
    }
}
