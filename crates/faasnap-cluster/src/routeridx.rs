//! Incrementally-maintained router indices: O(log n) placement instead
//! of O(hosts) scans.
//!
//! [`RouterIndex`] is a shared handle (cheaply cloneable, disabled by
//! default — the same pattern as [`faasnap_obs::Metrics`]) that every
//! [`HostSim`](crate::hostsim::HostSim) notifies whenever its load,
//! admission headroom, warm pool, snapshot registry, or loading-set
//! cache changes. With the index attached, [`RouterIndex::pick`]
//! answers every [`RoutePolicy`] query from precomputed structures:
//!
//! * **Random** — a Fenwick tree over the admittable bit-vector selects
//!   the k-th admittable host (ascending host id) in O(log n), drawing
//!   exactly one random value via `below(count)` — the same draw
//!   `Prng::choose` makes on the materialized scan list, so the random
//!   stream stays byte-identical.
//! * **LeastLoaded** — a segment tree over `(load, host)` keyed with a
//!   sentinel for non-admittable hosts answers the global min in O(1).
//! * **SnapshotLocality** — per-tenant host lists (warm VMs with their
//!   expiries, snapshot residency, cache residency) restrict the
//!   locality classes to the handful of hosts that can possibly match;
//!   the fallback class (no local state anywhere) reuses the
//!   least-loaded root.
//!
//! Exactness: the scan computes `min over admittable hosts of
//! (locality(tenant, now), load, host)`. The index partitions that min
//! by locality class — warm candidates, then snapshot-hot (snapshot
//! registered *and* cache resident), then snapshot-cold, then the
//! global least-loaded — and inside each class minimizes the identical
//! `(load, host)` key, so the argmin is the same host. Warm entries are
//! mirrored verbatim from each host's pool (including not-yet-purged
//! expired VMs) and filtered by `expiry >= now` at query time, exactly
//! like [`HostSim::locality`](crate::hostsim::HostSim::locality). A
//! disabled handle makes every notification a no-op and `pick` falls
//! back to the scan, so unit tests and ad-hoc `HostSim` use are
//! unaffected.

use std::cell::RefCell;
use std::rc::Rc;

use sim_core::detmap::DetMap;
use sim_core::rng::Prng;
use sim_core::time::SimTime;

use crate::arrival::TenantId;
use crate::hostsim::HostSim;
use crate::router::RoutePolicy;

/// Segment-tree sentinel for hosts that cannot admit.
const FULL: (usize, usize) = (usize::MAX, usize::MAX);

/// Shared, optionally-enabled router index handle.
#[derive(Clone, Default)]
pub struct RouterIndex {
    inner: Option<Rc<RefCell<IndexInner>>>,
}

impl std::fmt::Debug for RouterIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterIndex")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl RouterIndex {
    /// A disabled handle: every notification is a no-op and `pick`
    /// falls back to the O(hosts) scan.
    pub fn disabled() -> Self {
        RouterIndex { inner: None }
    }

    /// An enabled index over `n` hosts, all initially unknown (hosts
    /// report their real load/admission state when attached).
    pub fn enabled(n: usize) -> Self {
        RouterIndex {
            inner: Some(Rc::new(RefCell::new(IndexInner::new(n)))),
        }
    }

    /// True if notifications are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `host`'s current load signal and admission headroom.
    pub fn set_host(&self, host: usize, load: usize, admit: bool) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().set_host(host, load, admit);
        }
    }

    /// Records a warm VM for `tenant` parked on `host` until `expiry`.
    pub fn warm_add(&self, host: usize, tenant: TenantId, expiry: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().warm_add(host, tenant, expiry);
        }
    }

    /// Removes one warm-VM record matching `(host, expiry)` exactly.
    pub fn warm_remove(&self, host: usize, tenant: TenantId, expiry: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().warm_remove(host, tenant, expiry);
        }
    }

    /// Reconciles `tenant`'s snapshot residency on `host`.
    pub fn set_snapshot(&self, host: usize, tenant: TenantId, present: bool) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .set_member(Kind::Snapshot, host, tenant, present);
        }
    }

    /// Reconciles `tenant`'s loading-set cache residency on `host`.
    pub fn set_cached(&self, host: usize, tenant: TenantId, present: bool) {
        if let Some(inner) = &self.inner {
            inner
                .borrow_mut()
                .set_member(Kind::Cached, host, tenant, present);
        }
    }

    /// Picks a host for `tenant` under `policy`. With the index enabled
    /// this never touches `hosts`; disabled, it delegates to the scan.
    pub fn pick(
        &self,
        policy: RoutePolicy,
        hosts: &[HostSim],
        tenant: TenantId,
        now: SimTime,
        rng: &mut Prng,
    ) -> Option<usize> {
        match &self.inner {
            None => policy.pick(hosts, tenant, now, rng),
            Some(inner) => inner.borrow().pick(policy, tenant, now, rng),
        }
    }
}

/// Which per-tenant membership list a reconciliation targets.
#[derive(Clone, Copy)]
enum Kind {
    Snapshot,
    Cached,
}

struct IndexInner {
    n: usize,
    loads: Vec<usize>,
    admit: Vec<bool>,
    /// Segment tree (1-based, `seg[1]` = root) of `(load, host)` with
    /// [`FULL`] at non-admittable leaves; `size` is the leaf count.
    seg: Vec<(usize, usize)>,
    size: usize,
    /// Fenwick tree (1-based) over the admittable bit-vector.
    fen: Vec<u32>,
    admit_count: usize,
    /// tenant → warm VMs as (host, expiry); duplicates allowed (a host
    /// can park several VMs of one tenant, and two hosts can too).
    warm: DetMap<TenantId, Vec<(usize, SimTime)>>,
    /// tenant → hosts where a snapshot is registered.
    snap: DetMap<TenantId, Vec<usize>>,
    /// tenant → hosts where the loading set is cache-resident.
    cached: DetMap<TenantId, Vec<usize>>,
}

impl IndexInner {
    fn new(n: usize) -> Self {
        let size = n.next_power_of_two().max(1);
        IndexInner {
            n,
            loads: vec![0; n],
            admit: vec![false; n],
            seg: vec![FULL; 2 * size],
            size,
            fen: vec![0; n + 1],
            admit_count: 0,
            warm: DetMap::new(),
            snap: DetMap::new(),
            cached: DetMap::new(),
        }
    }

    fn set_host(&mut self, host: usize, load: usize, admit: bool) {
        self.loads[host] = load;
        if self.admit[host] != admit {
            self.admit[host] = admit;
            if admit {
                self.admit_count += 1;
                self.fen_add(host, 1);
            } else {
                self.admit_count -= 1;
                self.fen_add(host, -1);
            }
        }
        self.seg_set(host, if admit { (load, host) } else { FULL });
    }

    fn seg_set(&mut self, host: usize, v: (usize, usize)) {
        let mut i = self.size + host;
        self.seg[i] = v;
        while i > 1 {
            i /= 2;
            self.seg[i] = self.seg[2 * i].min(self.seg[2 * i + 1]);
        }
    }

    fn fen_add(&mut self, host: usize, delta: i32) {
        let mut i = host + 1;
        while i <= self.n {
            self.fen[i] = (self.fen[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// The `k`-th (0-based) admittable host in ascending id order.
    /// Requires `k < admit_count`.
    fn fen_select(&self, k: usize) -> usize {
        let mut pos = 0usize;
        let mut rem = (k + 1) as u32;
        let mut mask = self.n.next_power_of_two();
        // next_power_of_two can exceed n; the bound check below handles it.
        while mask > 0 {
            let next = pos + mask;
            if next <= self.n && self.fen[next] < rem {
                rem -= self.fen[next];
                pos = next;
            }
            mask /= 2;
        }
        // `pos` counts the admittable hosts strictly before the answer,
        // which in Fenwick terms is the 0-based host id itself.
        pos
    }

    fn warm_add(&mut self, host: usize, tenant: TenantId, expiry: SimTime) {
        self.warm
            .or_insert_with(tenant, Vec::new)
            .push((host, expiry));
    }

    fn warm_remove(&mut self, host: usize, tenant: TenantId, expiry: SimTime) {
        let Some(list) = self.warm.get_mut(&tenant) else {
            return;
        };
        if let Some(pos) = list.iter().position(|&(h, e)| h == host && e == expiry) {
            list.swap_remove(pos);
        }
        if list.is_empty() {
            self.warm.remove(&tenant);
        }
    }

    fn set_member(&mut self, kind: Kind, host: usize, tenant: TenantId, present: bool) {
        let map = match kind {
            Kind::Snapshot => &mut self.snap,
            Kind::Cached => &mut self.cached,
        };
        if present {
            let list = map.or_insert_with(tenant, Vec::new);
            if !list.contains(&host) {
                list.push(host);
            }
        } else if let Some(list) = map.get_mut(&tenant) {
            if let Some(pos) = list.iter().position(|&h| h == host) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                map.remove(&tenant);
            }
        }
    }

    fn pick(
        &self,
        policy: RoutePolicy,
        tenant: TenantId,
        now: SimTime,
        rng: &mut Prng,
    ) -> Option<usize> {
        match policy {
            RoutePolicy::Random => {
                // Mirror `Prng::choose` on the scan's admittable list:
                // no draw at all when the list is empty, one `below`
                // draw otherwise.
                if self.admit_count == 0 {
                    None
                } else {
                    Some(self.fen_select(rng.below(self.admit_count as u64) as usize))
                }
            }
            RoutePolicy::LeastLoaded => self.least_loaded(),
            RoutePolicy::SnapshotLocality => self
                .best_warm(tenant, now)
                .or_else(|| self.best_snapshot(tenant))
                .or_else(|| self.least_loaded()),
        }
    }

    fn least_loaded(&self) -> Option<usize> {
        let (load, host) = self.seg[1];
        if (load, host) == FULL {
            None
        } else {
            Some(host)
        }
    }

    /// Min-(load, host) admittable host holding an unexpired warm VM.
    fn best_warm(&self, tenant: TenantId, now: SimTime) -> Option<usize> {
        let list = self.warm.get(&tenant)?;
        list.iter()
            .filter(|&&(h, expiry)| expiry >= now && self.admit[h])
            .map(|&(h, _)| (self.loads[h], h))
            .min()
            .map(|(_, h)| h)
    }

    /// Min-(load, host) admittable host with a registered snapshot,
    /// cache-resident loading sets ranking above cold ones — the
    /// SnapshotHot ≻ SnapshotCold ordering of the scan.
    fn best_snapshot(&self, tenant: TenantId) -> Option<usize> {
        let list = self.snap.get(&tenant)?;
        let hot = self.cached.get(&tenant);
        let is_hot = |h: usize| hot.is_some_and(|v| v.contains(&h));
        let best = |want_hot: bool| {
            list.iter()
                .filter(|&&h| self.admit[h] && is_hot(h) == want_hot)
                .map(|&h| (self.loads[h], h))
                .min()
                .map(|(_, h)| h)
        };
        best(true).or_else(|| best(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let idx = RouterIndex::disabled();
        assert!(!idx.is_enabled());
        idx.set_host(0, 3, true);
        idx.warm_add(0, 1, t(5));
        idx.set_snapshot(0, 1, true);
        idx.set_cached(0, 1, true);
        // No panic, no state: pick falls through to the scan (empty
        // fleet here, so every policy sheds).
        let mut rng = Prng::new(1);
        for policy in [
            RoutePolicy::Random,
            RoutePolicy::LeastLoaded,
            RoutePolicy::SnapshotLocality,
        ] {
            assert_eq!(idx.pick(policy, &[], 1, t(0), &mut rng), None);
        }
    }

    #[test]
    fn least_loaded_tracks_updates() {
        let idx = RouterIndex::enabled(4);
        for h in 0..4 {
            idx.set_host(h, 0, true);
        }
        let mut rng = Prng::new(7);
        assert_eq!(
            idx.pick(RoutePolicy::LeastLoaded, &[], 0, t(0), &mut rng),
            Some(0)
        );
        idx.set_host(0, 2, true);
        idx.set_host(1, 1, true);
        assert_eq!(
            idx.pick(RoutePolicy::LeastLoaded, &[], 0, t(0), &mut rng),
            Some(2)
        );
        idx.set_host(2, 9, true);
        idx.set_host(3, 9, true);
        assert_eq!(
            idx.pick(RoutePolicy::LeastLoaded, &[], 0, t(0), &mut rng),
            Some(1)
        );
        for h in 0..4 {
            idx.set_host(h, 9, false);
        }
        assert_eq!(
            idx.pick(RoutePolicy::LeastLoaded, &[], 0, t(0), &mut rng),
            None
        );
    }

    #[test]
    fn random_matches_choose_on_admittable_list() {
        let idx = RouterIndex::enabled(5);
        // Hosts 1, 3, 4 admittable.
        idx.set_host(0, 0, false);
        idx.set_host(1, 0, true);
        idx.set_host(2, 0, false);
        idx.set_host(3, 0, true);
        idx.set_host(4, 0, true);
        let admittable = [1usize, 3, 4];
        let mut a = Prng::new(99);
        let mut b = Prng::new(99);
        for _ in 0..200 {
            let scan = a.choose(&admittable).copied();
            let fast = idx.pick(RoutePolicy::Random, &[], 0, t(0), &mut b);
            assert_eq!(scan, fast);
        }
    }

    #[test]
    fn locality_classes_rank_warm_hot_cold_nothing() {
        let idx = RouterIndex::enabled(4);
        for h in 0..4 {
            idx.set_host(h, 0, true);
        }
        let mut rng = Prng::new(5);
        let tenant = 7;
        // Nothing anywhere: global least-loaded (host 0).
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(0), &mut rng),
            Some(0)
        );
        // Cold snapshot on 3 beats nothing.
        idx.set_snapshot(3, tenant, true);
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(0), &mut rng),
            Some(3)
        );
        // Hot snapshot on 2 beats cold on 3.
        idx.set_snapshot(2, tenant, true);
        idx.set_cached(2, tenant, true);
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(0), &mut rng),
            Some(2)
        );
        // Warm VM on 1 beats everything — until it expires.
        idx.warm_add(1, tenant, t(10));
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(0), &mut rng),
            Some(1)
        );
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(11), &mut rng),
            Some(2),
            "expired warm entries are filtered at query time"
        );
        // A full host drops out of every class.
        idx.set_host(2, 0, false);
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(11), &mut rng),
            Some(3)
        );
        // Cache residency without a snapshot is Nothing, not hot.
        idx.set_snapshot(3, tenant, false);
        idx.set_cached(3, tenant, true);
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(11), &mut rng),
            Some(0),
            "cached-but-no-snapshot host is plain least-loaded"
        );
    }

    /// The load-bearing equivalence: drive a small fleet with random
    /// arrivals, completions, expiries, and eviction cascades, and at
    /// every routing decision check the indexed pick against the
    /// O(hosts) scan on identical rng clones. Tight budgets force warm
    /// cap evictions, registry evictions, and cache-eviction cascades —
    /// every notification path in `HostSim`.
    #[test]
    fn indexed_pick_matches_scan_over_random_traffic() {
        use crate::hostsim::{Admission, HostConfig, QueuedJob, ServiceTimes};
        use faasnap_obs::TraceContext;
        use sim_core::time::SimDuration;

        let times = ServiceTimes {
            snapshot_bytes: 40,
            loading_set_bytes: 30,
            ..ServiceTimes::default()
        };
        for (pi, policy) in [
            RoutePolicy::Random,
            RoutePolicy::LeastLoaded,
            RoutePolicy::SnapshotLocality,
        ]
        .into_iter()
        .enumerate()
        {
            let cfg = HostConfig {
                slots: 2,
                queue_cap: 1,
                warm_ttl: SimDuration::from_secs(2),
                warm_pool_cap: 2,
                snapshot_budget_bytes: 100,
                cache_budget_bytes: 70,
                store: crate::store::StoreParams::default(),
                branch: false,
            };
            let idx = RouterIndex::enabled(4);
            let mut hosts: Vec<HostSim> = (0..4).map(|_| HostSim::new(cfg)).collect();
            for (i, h) in hosts.iter_mut().enumerate() {
                h.attach_index(idx.clone(), i);
            }
            let mut rng = Prng::new(0xD1FF ^ pi as u64);
            let mut route_rng = Prng::new(0x9A7E);
            // (finish_time, host, tenant), kept sorted by finish_time
            // with FIFO insertion order on ties.
            let mut pending: Vec<(SimTime, usize, TenantId)> = Vec::new();
            let mut now = SimTime::ZERO;
            for step in 0..600 {
                now += SimDuration::from_millis(rng.below(400));
                while pending.first().is_some_and(|&(f, _, _)| f <= now) {
                    let (fin, host, tenant) = pending.remove(0);
                    hosts[host].finish(tenant, fin);
                    if let Some(job) = hosts[host].pop_queued() {
                        let (_, service) =
                            hosts[host].start_service(job.tenant, job.family, fin, &times);
                        let at = fin + service;
                        let pos = pending.partition_point(|&(f, _, _)| f <= at);
                        pending.insert(pos, (at, host, job.tenant));
                    }
                }
                let tenant: TenantId = rng.below(6) as TenantId;
                let mut shadow = route_rng.clone();
                let scan = policy.pick(&hosts, tenant, now, &mut shadow);
                let fast = idx.pick(policy, &hosts, tenant, now, &mut route_rng);
                assert_eq!(scan, fast, "{policy:?} diverged at step {step}");
                let Some(host) = fast else { continue };
                let job = QueuedJob {
                    tenant,
                    family: tenant as u64 % 2,
                    arrived: now,
                    ctx: TraceContext::NONE,
                };
                if let Admission::Started { service, .. } = hosts[host].admit(job, now, &times) {
                    let at = now + service;
                    let pos = pending.partition_point(|&(f, _, _)| f <= at);
                    pending.insert(pos, (at, host, tenant));
                }
            }
        }
    }

    #[test]
    fn warm_duplicates_remove_one_instance() {
        let idx = RouterIndex::enabled(2);
        idx.set_host(0, 0, true);
        idx.set_host(1, 0, true);
        let tenant = 3;
        idx.warm_add(1, tenant, t(10));
        idx.warm_add(1, tenant, t(20));
        idx.warm_remove(1, tenant, t(10));
        let mut rng = Prng::new(2);
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(15), &mut rng),
            Some(1),
            "the t=20 warm VM survives"
        );
        idx.warm_remove(1, tenant, t(20));
        assert_eq!(
            idx.pick(RoutePolicy::SnapshotLocality, &[], tenant, t(15), &mut rng),
            Some(0)
        );
    }
}
