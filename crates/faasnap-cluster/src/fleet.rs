//! The fleet discrete-event simulation.
//!
//! Reuses [`sim_core::engine::Engine`] — the same deterministic DES core
//! that drives the single-host microsimulation — with a two-event
//! alphabet: a request arrives at the router, or an invocation finishes
//! on a host. Everything in between (placement, admission, warm-pool and
//! snapshot-registry state transitions) happens synchronously inside the
//! handlers, so a run is a pure function of its [`ClusterConfig`].

use faasnap_obs::{Metrics, SelfProfile, TraceContext, Tracer};
use sim_core::engine::{Engine, Scheduler, World};
use sim_core::rng::Prng;
use sim_core::time::{SimDuration, SimTime};

use crate::arrival::{Arrival, TenantId, WorkloadSpec};
use crate::hostsim::{Admission, HostConfig, HostSim, QueuedJob, ServeMode, ServiceTimes};
use crate::metrics::FleetMetrics;
use crate::router::RoutePolicy;
use crate::routeridx::RouterIndex;
use crate::slo::{SloConfig, SloMonitor};

/// Storage-fault profile for a fleet run: the aggregate, fleet-level
/// view of the single-host fault-injection machinery. Restores that
/// actually touch the disk (snapshot-cold restores and cold boots) hit a
/// transient storage fault with `storage_fault_prob`; the host retries,
/// adding `retry_penalty` to the service time. With `degrade_prob` a
/// faulted restore additionally exhausts its prefetch retries and
/// degrades to demand paging, paying `degrade_penalty` on top. Warm and
/// snapshot-hot serves never consult the fault stream, so a profile of
/// `None` draws zero extra random values and leaves runs byte-identical
/// to a fault-free fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetFaultProfile {
    /// Probability a disk-touching restore hits a transient read fault.
    pub storage_fault_prob: f64,
    /// Extra service time paid per faulted restore (retry + backoff).
    pub retry_penalty: SimDuration,
    /// Probability a faulted restore degrades (prefetch abandoned).
    pub degrade_prob: f64,
    /// Extra service time paid by a degraded restore (demand paging).
    pub degrade_penalty: SimDuration,
}

impl FleetFaultProfile {
    /// A mild profile mirroring the default single-host retry policy:
    /// 2% of disk-touching restores fault and pay ~3 ms of retries; a
    /// quarter of those degrade and pay another 25 ms of demand paging.
    pub fn mild() -> Self {
        FleetFaultProfile {
            storage_fault_prob: 0.02,
            retry_penalty: SimDuration::from_millis(3),
            degrade_prob: 0.25,
            degrade_penalty: SimDuration::from_millis(25),
        }
    }
}

/// Everything a fleet run depends on.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of hosts.
    pub hosts: usize,
    /// Per-host configuration (identical fleet).
    pub host: HostConfig,
    /// Placement policy.
    pub policy: RoutePolicy,
    /// The multi-tenant workload.
    pub workload: WorkloadSpec,
    /// Simulated duration of the arrival stream.
    pub horizon: SimDuration,
    /// Master seed (arrivals and routing fork independent streams).
    pub seed: u64,
    /// Per-base-workload service times; tenants resolve through their
    /// `workload` name, falling back to [`ServiceTimes::default`].
    pub services: Vec<(String, ServiceTimes)>,
    /// Trace handle: per-request `fleet/request` spans and routing
    /// instants (disabled by default — zero cost).
    pub tracer: Tracer,
    /// Metrics handle: fleet counters, queue-depth gauges, and the
    /// end-to-end latency histogram (disabled by default).
    pub obs: Metrics,
    /// Optional storage-fault profile. `None` (the default, used by
    /// [`ClusterConfig::demo`] and [`ClusterConfig::smoke`]) runs the
    /// fleet fault-free and byte-identical to builds without the
    /// feature.
    pub fault_profile: Option<FleetFaultProfile>,
    /// Engine self-profiling handle (disabled by default — zero cost).
    /// When enabled, the run harvests router/engine/store work counters.
    pub selfprof: SelfProfile,
    /// Burn-rate SLO rule parameters. The monitor always runs — it is a
    /// pure function of the event stream — but emits trace instants and
    /// `fleet_slo_*` families only on alert transitions, so a healthy
    /// run's artifacts are byte-identical to a monitor-free build.
    pub slo: SloConfig,
}

impl ClusterConfig {
    /// A representative fleet: `hosts` hosts serving a Zipf-skewed
    /// 36-tenant mix over a few Table 2 workloads at `rate_per_s`
    /// aggregate, sized so snapshot registries cannot hold every tenant
    /// (which is what makes placement matter).
    pub fn demo(hosts: usize, policy: RoutePolicy, seed: u64) -> Self {
        let workloads = ["hello-world", "json", "compression", "image"];
        ClusterConfig {
            hosts,
            host: HostConfig::default(),
            policy,
            workload: WorkloadSpec::zipf(36, &workloads, 40.0, 1.2),
            horizon: SimDuration::from_secs(300),
            seed,
            services: Vec::new(),
            tracer: Tracer::disabled(),
            obs: Metrics::disabled(),
            fault_profile: None,
            selfprof: SelfProfile::disabled(),
            slo: SloConfig::default(),
        }
    }

    /// A small, fully specified fleet shared by `faasnapd cluster
    /// --smoke` and the metrics golden test: identical parameters, so a
    /// given seed produces byte-identical metrics everywhere. Uses the
    /// built-in default service times — no calibration run needed.
    pub fn smoke(policy: RoutePolicy, seed: u64) -> Self {
        let workloads = ["hello-world", "json"];
        ClusterConfig {
            hosts: 2,
            host: HostConfig::default(),
            policy,
            workload: WorkloadSpec::zipf(6, &workloads, 10.0, 1.2),
            horizon: SimDuration::from_secs(30),
            seed,
            services: Vec::new(),
            tracer: Tracer::disabled(),
            obs: Metrics::disabled(),
            fault_profile: None,
            selfprof: SelfProfile::disabled(),
            slo: SloConfig::default(),
        }
    }

    /// The fixed branching smoke fleet behind `faasnapd cluster --smoke
    /// --branch` and the `fork_fleet.json` golden: one branch-enabled
    /// host with no warm reuse and a starved loading-set cache, so
    /// co-located same-family restores must branch off each other's
    /// in-flight disk reads. Byte-deterministic per seed, like
    /// [`ClusterConfig::smoke`].
    pub fn fork_smoke(policy: RoutePolicy, seed: u64) -> Self {
        let mut cfg = ClusterConfig::smoke(policy, seed);
        cfg.hosts = 1;
        cfg.host.branch = true;
        cfg.host.warm_pool_cap = 0;
        cfg.host.cache_budget_bytes = 1;
        cfg.workload = WorkloadSpec::zipf(8, &["hello-world"], 60.0, 1.0);
        cfg
    }

    /// The trace-scale fleet behind `faasnapd cluster --mega` and the
    /// `cluster_mega` bench driver: ≥10⁶ invocations across 1000 hosts
    /// (≈4000 req/s aggregate over a 300 s horizon from 4000 Zipf-skewed
    /// tenants). Like [`ClusterConfig::smoke`] it uses the built-in
    /// default service times, so no calibration run is needed and a
    /// given seed is byte-deterministic.
    pub fn mega(policy: RoutePolicy, seed: u64) -> Self {
        let workloads = ["hello-world", "json", "compression", "image"];
        ClusterConfig {
            hosts: 1000,
            host: HostConfig::default(),
            policy,
            workload: WorkloadSpec::zipf(4000, &workloads, 4000.0, 1.2),
            horizon: SimDuration::from_secs(300),
            seed,
            services: Vec::new(),
            tracer: Tracer::disabled(),
            obs: Metrics::disabled(),
            fault_profile: None,
            selfprof: SelfProfile::disabled(),
            slo: SloConfig::default(),
        }
    }

    /// Service times for a base workload name.
    pub fn service_for(&self, workload: &str) -> ServiceTimes {
        self.services
            .iter()
            .find(|(name, _)| name == workload)
            .map(|(_, t)| *t)
            .unwrap_or_default()
    }
}

/// Fleet event alphabet.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// The `i`-th arrival reaches the router.
    Arrive(usize),
    /// An invocation finishes on `host`.
    Done {
        host: usize,
        tenant: TenantId,
        mode: ServeMode,
        arrived: SimTime,
        ctx: TraceContext,
    },
}

struct FleetWorld<'a> {
    arrivals: &'a [Arrival],
    tenant_times: &'a [ServiceTimes],
    /// Per-tenant snapshot family (tenants of the same base workload
    /// share base-image chunks in the hosts' snapshot stores).
    tenant_families: &'a [u64],
    policy: RoutePolicy,
    hosts: Vec<HostSim>,
    /// Incrementally-maintained routing index: `pick` answers from
    /// precomputed structures instead of scanning every host.
    index: RouterIndex,
    route_rng: Prng,
    fault_profile: Option<FleetFaultProfile>,
    fault_rng: Prng,
    metrics: FleetMetrics,
    tracer: Tracer,
    obs: Metrics,
    selfprof: SelfProfile,
    slo: SloMonitor,
}

impl FleetWorld<'_> {
    /// Applies the fleet fault profile to one started invocation. Only
    /// disk-touching restores (snapshot-cold, cold boot) consult the
    /// fault stream; with no profile armed, no random values are drawn
    /// and the service time passes through untouched, so fault-free
    /// runs stay byte-identical.
    fn faulted_service(
        &mut self,
        mode: ServeMode,
        service: SimDuration,
        ctx: TraceContext,
    ) -> SimDuration {
        let Some(profile) = self.fault_profile else {
            return service;
        };
        if !matches!(mode, ServeMode::SnapshotCold | ServeMode::Cold) {
            return service;
        }
        if !self.fault_rng.chance(profile.storage_fault_prob) {
            return service;
        }
        self.metrics.storage_faults += 1;
        self.obs
            .counter_inc("fleet_storage_faults_total", &[("site", "restore")]);
        self.tracer.tag(ctx, "storage_fault", true);
        let mut service = service + profile.retry_penalty;
        if self.fault_rng.chance(profile.degrade_prob) {
            self.metrics.degraded_restores += 1;
            self.obs
                .counter_inc("fleet_degraded_restores_total", &[("site", "restore")]);
            self.tracer.tag(ctx, "degraded", true);
            service += profile.degrade_penalty;
        }
        service
    }

    fn dispatch(&mut self, host: usize, job: QueuedJob, now: SimTime, sched: &mut Scheduler<Ev>) {
        let times = self.tenant_times[job.tenant];
        let (mode, service) = self.hosts[host].start_service(job.tenant, job.family, now, &times);
        let service = self.faulted_service(mode, service, job.ctx);
        sched.schedule_after(
            now,
            service,
            Ev::Done {
                host,
                tenant: job.tenant,
                mode,
                arrived: job.arrived,
                ctx: job.ctx,
            },
        );
    }
}

impl World for FleetWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::Arrive(i) => {
                let tenant = self.arrivals[i].tenant;
                let ctx = self
                    .tracer
                    .begin("fleet/request", "fleet", now, TraceContext::NONE);
                self.tracer.tag(ctx, "tenant", tenant);
                self.selfprof.inc("router/lookups");
                match self
                    .index
                    .pick(self.policy, &self.hosts, tenant, now, &mut self.route_rng)
                {
                    None => {
                        self.tracer.tag(ctx, "shed", true);
                        self.tracer.end(ctx, now);
                        self.obs
                            .counter_inc("fleet_shed_total", &[("host", "router")]);
                        self.metrics.record_shed(tenant);
                    }
                    Some(host) => {
                        self.tracer.instant(
                            "router/route",
                            "fleet",
                            now,
                            ctx,
                            vec![("host", (host as u64).into())],
                        );
                        let job = QueuedJob {
                            tenant,
                            family: self.tenant_families[tenant],
                            arrived: now,
                            ctx,
                        };
                        let times = self.tenant_times[tenant];
                        match self.hosts[host].admit(job, now, &times) {
                            Admission::Started { mode, service } => {
                                let service = self.faulted_service(mode, service, ctx);
                                sched.schedule_after(
                                    now,
                                    service,
                                    Ev::Done {
                                        host,
                                        tenant,
                                        mode,
                                        arrived: now,
                                        ctx,
                                    },
                                );
                            }
                            Admission::Queued => {}
                            // The router only picks admittable hosts, but
                            // account for it defensively.
                            Admission::Shed => {
                                self.tracer.tag(ctx, "shed", true);
                                self.tracer.end(ctx, now);
                                self.metrics.record_shed(tenant);
                            }
                        }
                    }
                }
            }
            Ev::Done {
                host,
                tenant,
                mode,
                arrived,
                ctx,
            } => {
                self.tracer.tag(ctx, "mode", mode.label());
                self.tracer.end(ctx, now);
                let latency = now.since(arrived);
                // The log2 histogram buckets are labeled in µs; fleet
                // latencies are ms-scale, so scale down by 1000 and name
                // the family _ms — its bucket labels then read as ms.
                self.obs.observe(
                    "fleet_latency_ms",
                    &[("policy", self.policy.label())],
                    latency.mul_f64(0.001),
                );
                self.metrics.record(tenant, mode, latency);
                self.slo
                    .observe(now, latency, mode, &self.tracer, &self.obs);
                self.hosts[host].finish(tenant, now);
                if let Some(job) = self.hosts[host].pop_queued() {
                    self.dispatch(host, job, now, sched);
                }
            }
        }
    }
}

/// Runs one fleet simulation to completion and returns its metrics.
pub fn run_cluster(cfg: &ClusterConfig) -> FleetMetrics {
    assert!(cfg.hosts > 0, "cluster needs at least one host");
    let arrivals = cfg.workload.generate(cfg.seed, cfg.horizon);
    let tenant_times: Vec<ServiceTimes> = cfg
        .workload
        .tenants
        .iter()
        .map(|t| cfg.service_for(&t.workload))
        .collect();
    // Snapshot families: tenants running the same base workload share a
    // family, indexed by first appearance (deterministic in the spec).
    let mut families: Vec<&str> = Vec::new();
    let tenant_families: Vec<u64> = cfg
        .workload
        .tenants
        .iter()
        .map(|t| {
            let w = t.workload.as_str();
            match families.iter().position(|&f| f == w) {
                Some(i) => i as u64,
                None => {
                    families.push(w);
                    (families.len() - 1) as u64
                }
            }
        })
        .collect();
    let tenant_names: Vec<(String, String)> = cfg
        .workload
        .tenants
        .iter()
        .map(|t| (t.name.clone(), t.workload.clone()))
        .collect();
    let index = RouterIndex::enabled(cfg.hosts);
    let mut world = FleetWorld {
        arrivals: &arrivals,
        tenant_times: &tenant_times,
        tenant_families: &tenant_families,
        policy: cfg.policy,
        hosts: (0..cfg.hosts)
            .map(|i| {
                let mut h = HostSim::new(cfg.host);
                h.set_metrics(cfg.obs.clone(), i);
                h.attach_index(index.clone(), i);
                h
            })
            .collect(),
        index,
        // Routing randomness is independent of arrival randomness so the
        // same trace replays under every policy.
        route_rng: Prng::new(cfg.seed ^ 0x1205_7EA3_C0FF_EE00),
        fault_profile: cfg.fault_profile,
        // Fault randomness gets its own stream: arming a profile must
        // not perturb arrivals or routing for the same seed.
        fault_rng: Prng::new(cfg.seed ^ 0xFA17_0F1E_E75E_ED00),
        metrics: FleetMetrics::new(
            cfg.policy.label(),
            cfg.seed,
            cfg.hosts,
            cfg.horizon,
            tenant_names,
        ),
        tracer: cfg.tracer.clone(),
        obs: cfg.obs.clone(),
        selfprof: cfg.selfprof.clone(),
        slo: SloMonitor::new(cfg.slo),
    };
    let mut engine: Engine<Ev> = Engine::new();
    for (i, a) in arrivals.iter().enumerate() {
        engine.scheduler().schedule(a.time, Ev::Arrive(i));
    }
    {
        let _scope = cfg.selfprof.scope("fleet/engine_run");
        engine.run(&mut world);
    }
    let estats = engine.stats();
    cfg.selfprof.harvest([
        ("engine/delivered", estats.delivered),
        ("engine/scheduled", estats.scheduled),
    ]);
    cfg.selfprof.max("engine/peak_pending", estats.peak_pending);
    let FleetWorld {
        hosts,
        mut metrics,
        slo,
        ..
    } = world;
    let mut store_totals = [0u64; 4];
    for (i, h) in hosts.iter().enumerate() {
        metrics.host_busy[i] = h.busy_time();
        metrics.host_slots[i] = h.config().slots;
        metrics.fork_branched += h.branched_count();
        metrics.fork_saved_bytes += h.branched_saved_bytes();
        let reg = h.snapshots();
        metrics.store_unique_bytes[i] = reg.total_bytes();
        metrics.store_logical_bytes[i] = reg.logical_bytes();
        metrics.snapshots_resident[i] = reg.len() as u64;
        if cfg.selfprof.is_enabled() {
            for (slot, (_, v)) in store_totals.iter_mut().zip(reg.store().stats().pairs()) {
                *slot += v;
            }
        }
        let label = i.to_string();
        cfg.obs.gauge_set(
            "fleet_store_unique_bytes",
            &[("host", &label)],
            reg.total_bytes() as f64,
        );
        cfg.obs.gauge_set(
            "fleet_store_logical_bytes",
            &[("host", &label)],
            reg.logical_bytes() as f64,
        );
        cfg.obs.gauge_set(
            "fleet_store_dedup_ratio",
            &[("host", &label)],
            reg.dedup_ratio(),
        );
        cfg.obs.gauge_set(
            "fleet_snapshots_resident",
            &[("host", &label)],
            reg.len() as f64,
        );
        // Per-GB snapshot density; a host with an empty store reads 0,
        // not inf, so fresh fleets scrape cleanly.
        let per_gb = if reg.total_bytes() == 0 {
            0.0
        } else {
            reg.len() as f64 / (reg.total_bytes() as f64 / (1u64 << 30) as f64)
        };
        cfg.obs
            .gauge_set("fleet_snapshots_per_gb", &[("host", &label)], per_gb);
    }
    if cfg.selfprof.is_enabled() {
        // Store stat names mirror StoreStats::pairs(), summed fleet-wide.
        cfg.selfprof.harvest([
            ("store/map_ops", store_totals[0]),
            ("store/chunks_inserted", store_totals[1]),
            ("store/bytes_materialized", store_totals[2]),
            ("store/resolves", store_totals[3]),
        ]);
    }
    if slo.any_fired() {
        slo.emit_final_gauges(&cfg.obs);
        metrics.slo = Some(slo.summary_json());
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(policy: RoutePolicy, seed: u64) -> ClusterConfig {
        let mut cfg = ClusterConfig::demo(4, policy, seed);
        cfg.horizon = SimDuration::from_secs(60);
        cfg
    }

    #[test]
    fn runs_to_completion_and_serves_everything() {
        let cfg = quick_cfg(RoutePolicy::LeastLoaded, 42);
        let m = run_cluster(&cfg);
        let expected = cfg.workload.generate(cfg.seed, cfg.horizon).len() as u64;
        assert_eq!(m.total_served() + m.total_shed(), expected);
        assert!(m.total_served() > 0);
        assert!(m.p(99.0) >= m.p(50.0));
    }

    #[test]
    fn deterministic_metrics_json() {
        let run = |seed| {
            run_cluster(&quick_cfg(RoutePolicy::SnapshotLocality, seed))
                .to_json()
                .to_string_pretty()
        };
        assert_eq!(run(42), run(42), "same seed, byte-identical JSON");
        assert_ne!(run(42), run(43), "different seed, different run");
    }

    #[test]
    fn locality_beats_random_p99_under_skew() {
        // Full demo horizon: each tenant's one compulsory cold start must
        // be amortized below the 99th percentile for locality routing.
        let random = run_cluster(&ClusterConfig::demo(8, RoutePolicy::Random, 42));
        let locality = run_cluster(&ClusterConfig::demo(8, RoutePolicy::SnapshotLocality, 42));
        assert!(
            locality.p(99.0) < random.p(99.0),
            "locality p99 {} !< random p99 {}",
            locality.p(99.0),
            random.p(99.0)
        );
        // The mechanism: locality serves a far larger share from warm
        // VMs and hot snapshots.
        let l = locality.mode_mix();
        let r = random.mode_mix();
        assert!(
            l[0] + l[1] > r[0] + r[1],
            "locality mix {l:?} vs random {r:?}"
        );
    }

    #[test]
    fn overload_sheds_instead_of_unbounded_queueing() {
        let mut cfg = quick_cfg(RoutePolicy::LeastLoaded, 7);
        // One tiny host, heavy stream: must shed, not queue forever.
        cfg.hosts = 1;
        cfg.host.slots = 1;
        cfg.host.queue_cap = 2;
        cfg.workload = WorkloadSpec::zipf(6, &["hello-world"], 50.0, 1.0);
        let m = run_cluster(&cfg);
        assert!(m.total_shed() > 0);
        // Queue bound caps per-request queueing delay at roughly
        // queue_cap × service time; nothing should wait unboundedly.
        assert!(m.total_served() > 0);
    }

    #[test]
    fn branch_mode_shares_in_flight_restores() {
        // Snapshot-heavy stream on one branch-enabled host: no warm
        // pool, so every serve after the first is a snapshot restore,
        // and concurrent same-family restores must branch.
        let base = || {
            let mut cfg = quick_cfg(RoutePolicy::LeastLoaded, 11);
            cfg.hosts = 1;
            cfg.host.warm_pool_cap = 0;
            cfg.host.cache_budget_bytes = 1; // loading sets never stay hot
            cfg.workload = WorkloadSpec::zipf(8, &["hello-world"], 60.0, 1.0);
            cfg
        };
        let off = run_cluster(&base());
        assert_eq!(off.fork_branched, 0);
        assert!(off.to_json().get("fork").is_none());
        let mut cfg = base();
        cfg.host.branch = true;
        let on = run_cluster(&cfg);
        assert!(on.fork_branched > 0, "no branch under heavy overlap");
        assert_eq!(
            on.fork_saved_bytes,
            on.fork_branched * ServiceTimes::default().loading_set_bytes
        );
        let v = on.to_json();
        assert_eq!(
            v.get("fork").unwrap().get("branched").unwrap().as_u64(),
            Some(on.fork_branched)
        );
        // Branched siblings dodge disk reads, so the tail improves.
        assert!(on.p(99.0) <= off.p(99.0));
    }

    #[test]
    fn single_tenant_on_one_host_serves_warm_after_first() {
        let mut cfg = quick_cfg(RoutePolicy::SnapshotLocality, 3);
        cfg.hosts = 1;
        cfg.workload = WorkloadSpec::zipf(1, &["hello-world"], 5.0, 1.0);
        let m = run_cluster(&cfg);
        let mix = m.mode_mix();
        assert_eq!(mix[3], 1, "exactly one cold start, got {mix:?}");
        assert!(mix[0] > 0, "later invocations warm: {mix:?}");
    }
}
