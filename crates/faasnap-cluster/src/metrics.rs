//! Fleet SLO metrics: latency percentiles, serving-mode mix, shedding,
//! utilization — serialized deterministically to JSON.
//!
//! Numbers a provider would page on: per-function and fleet-wide
//! p50/p95/p99 of end-to-end latency (queueing included), how
//! invocations were served (warm / hot snapshot / cold snapshot / cold
//! boot), how many requests were shed by backpressure, and how busy each
//! host's slots were. Serialization goes through [`sim_core::json`],
//! whose object writer preserves insertion order, so two runs with the
//! same seed produce byte-identical documents (a property the tests pin).

use sim_core::json::Value;
use sim_core::stats::Summary;
use sim_core::time::{SimDuration, SimTime};

use crate::arrival::TenantId;
use crate::hostsim::ServeMode;

/// Per-tenant serving statistics.
#[derive(Clone, Debug, Default)]
pub struct TenantMetrics {
    /// Tenant display name.
    pub name: String,
    /// Base workload the tenant runs.
    pub workload: String,
    /// Invocations served per mode: warm, hot snapshot, cold snapshot,
    /// cold boot.
    pub served: [u64; 4],
    /// Requests shed for this tenant.
    pub shed: u64,
    /// End-to-end latency samples (ms), queueing included.
    pub latency_ms: Summary,
}

impl TenantMetrics {
    /// Total served invocations.
    pub fn total_served(&self) -> u64 {
        self.served.iter().sum()
    }
}

/// Whole-fleet metrics for one simulated run.
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    /// Routing policy label.
    pub policy: String,
    /// Seed the run used.
    pub seed: u64,
    /// Number of hosts.
    pub hosts: usize,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Per-tenant stats, indexed by [`TenantId`].
    pub tenants: Vec<TenantMetrics>,
    /// Fleet-wide latency samples (ms).
    pub latency_ms: Summary,
    /// Per-host cumulative busy time.
    pub host_busy: Vec<SimDuration>,
    /// Per-host slot counts (denominator for utilization).
    pub host_slots: Vec<u32>,
    /// Disk-touching restores that hit an injected storage fault (only
    /// non-zero when a fault profile is armed).
    pub storage_faults: u64,
    /// Faulted restores that additionally degraded to demand paging.
    pub degraded_restores: u64,
    /// Per-host unique (deduplicated) snapshot-store bytes at end of run.
    pub store_unique_bytes: Vec<u64>,
    /// Per-host logical (pre-dedup) snapshot bytes at end of run.
    pub store_logical_bytes: Vec<u64>,
    /// Per-host count of resident (restorable) snapshots at end of run.
    pub snapshots_resident: Vec<u64>,
    /// Invocations served by branching off an in-flight same-family
    /// restore (snapshot branching; 0 unless branch mode is on).
    pub fork_branched: u64,
    /// Loading-set bytes branched serves avoided re-reading from disk.
    pub fork_saved_bytes: u64,
    /// Burn-rate SLO alert log, present only when a rule fired during
    /// the run — healthy runs serialize without an `slo` key, keeping
    /// their documents byte-identical to monitor-free builds.
    pub slo: Option<Value>,
}

impl FleetMetrics {
    /// Creates an empty collector.
    pub fn new(
        policy: &str,
        seed: u64,
        hosts: usize,
        horizon: SimDuration,
        tenants: Vec<(String, String)>,
    ) -> Self {
        FleetMetrics {
            policy: policy.to_string(),
            seed,
            hosts,
            horizon,
            tenants: tenants
                .into_iter()
                .map(|(name, workload)| TenantMetrics {
                    name,
                    workload,
                    ..TenantMetrics::default()
                })
                .collect(),
            latency_ms: Summary::new(),
            host_busy: vec![SimDuration::ZERO; hosts],
            host_slots: vec![0; hosts],
            storage_faults: 0,
            degraded_restores: 0,
            store_unique_bytes: vec![0; hosts],
            store_logical_bytes: vec![0; hosts],
            snapshots_resident: vec![0; hosts],
            fork_branched: 0,
            fork_saved_bytes: 0,
            slo: None,
        }
    }

    /// Records one completed invocation.
    pub fn record(&mut self, tenant: TenantId, mode: ServeMode, latency: SimDuration) {
        let t = &mut self.tenants[tenant];
        let slot = match mode {
            ServeMode::Warm => 0,
            ServeMode::SnapshotHot => 1,
            ServeMode::SnapshotCold => 2,
            ServeMode::Cold => 3,
        };
        t.served[slot] += 1;
        t.latency_ms.record_ms(latency);
        self.latency_ms.record_ms(latency);
    }

    /// Records one shed request.
    pub fn record_shed(&mut self, tenant: TenantId) {
        self.tenants[tenant].shed += 1;
    }

    /// Total invocations served.
    pub fn total_served(&self) -> u64 {
        self.tenants.iter().map(TenantMetrics::total_served).sum()
    }

    /// Total requests shed.
    pub fn total_shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Fleet-wide latency percentile in milliseconds.
    pub fn p(&self, pct: f64) -> f64 {
        self.latency_ms.percentile(pct)
    }

    /// Fleet-wide serving-mode counts (warm, snap-hot, snap-cold, cold).
    pub fn mode_mix(&self) -> [u64; 4] {
        let mut mix = [0u64; 4];
        for t in &self.tenants {
            for (m, c) in mix.iter_mut().zip(t.served) {
                *m += c;
            }
        }
        mix
    }

    /// Fleet-wide unique (deduplicated) snapshot-store bytes.
    pub fn store_unique_total(&self) -> u64 {
        self.store_unique_bytes.iter().sum()
    }

    /// Fleet-wide logical (pre-dedup) snapshot bytes.
    pub fn store_logical_total(&self) -> u64 {
        self.store_logical_bytes.iter().sum()
    }

    /// Fleet-wide dedup ratio: logical over unique bytes. Empty stores
    /// read 0.0 — a sentinel no populated fleet can produce (dedup of
    /// real bytes is always ≥ 1.0), so dashboards can tell "no data"
    /// from "no dedup" without a NaN/inf guard.
    pub fn store_dedup_ratio(&self) -> f64 {
        let unique = self.store_unique_total();
        if unique == 0 {
            0.0
        } else {
            self.store_logical_total() as f64 / unique as f64
        }
    }

    /// Fleet-wide count of resident (restorable) snapshots.
    pub fn snapshots_resident_total(&self) -> u64 {
        self.snapshots_resident.iter().sum()
    }

    /// Resident snapshots per GiB of unique store bytes — the capacity
    /// headline: how many functions stay restorable per gigabyte a host
    /// actually spends.
    pub fn snapshots_per_gb(&self) -> f64 {
        let unique = self.store_unique_total();
        if unique == 0 {
            0.0
        } else {
            self.snapshots_resident_total() as f64 / (unique as f64 / (1u64 << 30) as f64)
        }
    }

    /// Mean slot utilization across hosts in `[0, 1]`.
    pub fn mean_utilization(&self) -> f64 {
        if self.hosts == 0 || self.horizon.is_zero() {
            return 0.0;
        }
        let span = self.horizon.as_secs_f64();
        let total: f64 = self
            .host_busy
            .iter()
            .zip(&self.host_slots)
            .map(|(busy, &slots)| {
                if slots == 0 {
                    0.0
                } else {
                    (busy.as_secs_f64() / (span * slots as f64)).min(1.0)
                }
            })
            .sum();
        total / self.hosts as f64
    }

    /// The full metrics document. Object keys are emitted in a fixed
    /// order and tenants in index order, so equal runs serialize
    /// byte-identically.
    pub fn to_json(&self) -> Value {
        let mix = self.mode_mix();
        let fleet = Value::object()
            .with("served", self.total_served())
            .with("shed", self.total_shed())
            .with("p50_ms", round3(self.latency_ms.p50()))
            .with("p95_ms", round3(self.latency_ms.p95()))
            .with("p99_ms", round3(self.latency_ms.p99()))
            .with("mean_ms", round3(self.latency_ms.mean()))
            .with(
                "mode_mix",
                Value::object()
                    .with("warm", mix[0])
                    .with("snapshot_hot", mix[1])
                    .with("snapshot_cold", mix[2])
                    .with("cold", mix[3]),
            )
            .with("mean_utilization", round3(self.mean_utilization()))
            .with("storage_faults", self.storage_faults)
            .with("degraded_restores", self.degraded_restores)
            .with(
                "store",
                Value::object()
                    .with("unique_bytes", self.store_unique_total())
                    .with("logical_bytes", self.store_logical_total())
                    .with("dedup_ratio", round3(self.store_dedup_ratio()))
                    .with("snapshots_resident", self.snapshots_resident_total())
                    .with("snapshots_per_gb", round3(self.snapshots_per_gb())),
            );
        let tenants: Vec<Value> = self
            .tenants
            .iter()
            .filter(|t| t.total_served() > 0 || t.shed > 0)
            .map(|t| {
                Value::object()
                    .with("name", t.name.as_str())
                    .with("workload", t.workload.as_str())
                    .with("served", t.total_served())
                    .with("shed", t.shed)
                    .with("warm", t.served[0])
                    .with("snapshot_hot", t.served[1])
                    .with("snapshot_cold", t.served[2])
                    .with("cold", t.served[3])
                    .with("p50_ms", round3(t.latency_ms.p50()))
                    .with("p99_ms", round3(t.latency_ms.p99()))
            })
            .collect();
        let hosts: Vec<Value> = self
            .host_busy
            .iter()
            .zip(&self.host_slots)
            .enumerate()
            .map(|(i, (busy, &slots))| {
                let util = if slots == 0 || self.horizon.is_zero() {
                    0.0
                } else {
                    (busy.as_secs_f64() / (self.horizon.as_secs_f64() * slots as f64)).min(1.0)
                };
                Value::object()
                    .with("busy_s", round3(busy.as_secs_f64()))
                    .with("slots", u64::from(slots))
                    .with("utilization", round3(util))
                    .with("store_unique_bytes", self.store_unique_bytes[i])
                    .with("store_logical_bytes", self.store_logical_bytes[i])
                    .with("snapshots_resident", self.snapshots_resident[i])
            })
            .collect();
        let mut root = Value::object()
            .with("policy", self.policy.as_str())
            .with("seed", self.seed)
            .with("hosts", self.hosts)
            .with("horizon_s", round3(self.horizon.as_secs_f64()))
            .with("fleet", fleet)
            .with("tenants", Value::Array(tenants))
            .with("per_host", Value::Array(hosts));
        // Like `slo`, the fork section appears only when branching
        // actually happened, so branch-free runs stay byte-identical.
        if self.fork_branched > 0 {
            root = root.with(
                "fork",
                Value::object()
                    .with("branched", self.fork_branched)
                    .with("saved_disk_bytes", self.fork_saved_bytes),
            );
        }
        if let Some(slo) = &self.slo {
            root = root.with("slo", slo.clone());
        }
        root
    }
}

/// Rounds to 3 decimals so tiny float noise cannot leak into the JSON
/// (the values themselves are already deterministic; this keeps the
/// documents readable).
fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// A latency instant helper used by the fleet world.
pub fn latency_between(arrived: SimTime, finished: SimTime) -> SimDuration {
    finished.since(arrived)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> FleetMetrics {
        FleetMetrics::new(
            "random",
            7,
            2,
            SimDuration::from_secs(100),
            vec![
                ("t00-json".into(), "json".into()),
                ("t01-hello".into(), "hello-world".into()),
            ],
        )
    }

    #[test]
    fn records_and_aggregates() {
        let mut m = metrics();
        m.record(0, ServeMode::Warm, SimDuration::from_millis(40));
        m.record(0, ServeMode::SnapshotCold, SimDuration::from_millis(120));
        m.record(1, ServeMode::Cold, SimDuration::from_millis(2000));
        m.record_shed(1);
        assert_eq!(m.total_served(), 3);
        assert_eq!(m.total_shed(), 1);
        assert_eq!(m.mode_mix(), [1, 0, 1, 1]);
        assert!(m.p(99.0) >= m.p(50.0));
    }

    #[test]
    fn json_shape_and_determinism() {
        let build = || {
            let mut m = metrics();
            m.host_slots = vec![4, 4];
            m.host_busy = vec![SimDuration::from_secs(40), SimDuration::from_secs(10)];
            m.record(0, ServeMode::Warm, SimDuration::from_millis(40));
            m.record(1, ServeMode::Cold, SimDuration::from_millis(2000));
            m.to_json().to_string_pretty()
        };
        let a = build();
        assert_eq!(a, build(), "byte-identical across builds");
        let v = sim_core::json::parse(&a).unwrap();
        assert_eq!(v.get("policy").unwrap().as_str(), Some("random"));
        assert_eq!(
            v.get("fleet").unwrap().get("served").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(v.get("tenants").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("per_host").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn utilization_bounds() {
        let mut m = metrics();
        m.host_slots = vec![2, 2];
        m.host_busy = vec![SimDuration::from_secs(100), SimDuration::from_secs(400)];
        let u = m.mean_utilization();
        // Host 0: 100/(100*2) = 0.5; host 1 clamps to 1.0 → mean 0.75.
        assert!((u - 0.75).abs() < 1e-9, "got {u}");
    }

    #[test]
    fn idle_tenants_omitted_from_json() {
        let m = metrics();
        let v = m.to_json();
        assert_eq!(v.get("tenants").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn empty_store_dedup_ratio_reads_zero() {
        let m = metrics();
        assert_eq!(m.store_dedup_ratio(), 0.0);
        assert_eq!(m.snapshots_per_gb(), 0.0);
        let v = m.to_json();
        let store = v.get("fleet").unwrap().get("store").unwrap();
        assert_eq!(store.get("dedup_ratio").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn fork_section_only_present_when_branching_happened() {
        let mut m = metrics();
        assert!(m.to_json().get("fork").is_none());
        m.fork_branched = 3;
        m.fork_saved_bytes = 30;
        let v = m.to_json();
        let fork = v.get("fork").unwrap();
        assert_eq!(fork.get("branched").unwrap().as_u64(), Some(3));
        assert_eq!(fork.get("saved_disk_bytes").unwrap().as_u64(), Some(30));
    }

    #[test]
    fn slo_section_only_present_when_alerts_fired() {
        let mut m = metrics();
        assert!(m.to_json().get("slo").is_none());
        m.slo = Some(Value::object().with("alerts", Value::Array(Vec::new())));
        assert!(m.to_json().get("slo").is_some());
    }
}
