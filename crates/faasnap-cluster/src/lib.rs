//! Fleet-level FaaSnap: what do fast snapshot restores buy at scale?
//!
//! The rest of the workspace models one host in microarchitectural
//! detail. This crate zooms out to the layer FaaSnap is designed to slot
//! into — a fleet of hosts behind a router serving an open-loop,
//! multi-tenant invocation stream — and asks the questions a provider
//! would: which placement policy minimizes tail latency, how do warm-VM
//! pools and snapshot registries interact under memory and storage
//! budgets, and how does FaaSnap's restore latency shift the §7.1
//! warm/snapshot/cold crossover fleet-wide.
//!
//! The pieces:
//!
//! * [`arrival`] — deterministic open-loop trace generators (per-tenant
//!   Poisson, bursty on/off, Zipf-skewed tenant popularity) built on
//!   [`sim_core::rng::Prng`].
//! * [`hostsim`] — the per-host serving model: concurrency slots, a
//!   bounded pending queue, a TTL-governed warm-VM pool, a snapshot
//!   registry with LRU eviction under a storage budget, and a page-cache
//!   model that makes restores faster on hosts that recently served the
//!   same function (the locality signal the router exploits).
//! * [`store`] — the store-aware snapshot registry backing [`hostsim`]:
//!   tenant snapshots become layers of content-addressed chunk
//!   references in a [`faasnap_store::SnapshotStore`], the budget
//!   charges unique (deduplicated) bytes, and eviction drops only
//!   chunks no surviving snapshot references — letting far more
//!   functions stay restorable per host under Zipf skew.
//! * [`router`] — pluggable placement: random, least-loaded, and
//!   snapshot-locality-aware, plus admission control and load shedding.
//! * [`routeridx`] — incrementally-maintained routing indices (Fenwick
//!   select for random, a segment tree for least-loaded, per-tenant
//!   locality lists) answering the same queries without per-request
//!   scans — byte-identical placements at fleet scale.
//! * [`fleet`] — the discrete-event simulation tying it together on
//!   [`sim_core::engine::Engine`].
//! * [`metrics`] — per-function and fleet-wide SLO metrics (p50/p95/p99,
//!   serving-mode mix, shed count, host utilization), serialized to JSON
//!   via [`sim_core::json`].
//! * [`slo`] — multi-window burn-rate SLO monitoring (latency and
//!   cold-start error budgets) evaluated live on the event stream, with
//!   a deterministic alert log.
//! * [`calibrate`] — measures per-function [`hostsim::ServiceTimes`] from
//!   the real single-host [`faasnap_daemon::platform::Platform`], so the
//!   fleet model runs on latencies produced by the detailed simulator
//!   rather than constants.
//!
//! Everything is deterministic: the same [`fleet::ClusterConfig`] and
//! seed yield byte-identical serialized metrics.

#![forbid(unsafe_code)]
pub mod arrival;
pub mod calibrate;
pub mod fleet;
pub mod hostsim;
pub mod metrics;
pub mod router;
pub mod routeridx;
pub mod slo;
pub mod store;

pub use arrival::{Arrival, ArrivalPattern, TenantSpec, WorkloadSpec};
pub use fleet::{run_cluster, ClusterConfig, FleetFaultProfile};
pub use hostsim::{HostConfig, ServiceTimes};
pub use metrics::FleetMetrics;
pub use router::RoutePolicy;
pub use routeridx::RouterIndex;
pub use slo::{AlertEvent, SloAlert, SloConfig, SloMonitor};
pub use store::{snapshot_chunks, StoreParams, StoreRegistry};
