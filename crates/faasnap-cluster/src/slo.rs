//! Multi-window burn-rate SLO monitoring over the fleet event stream.
//!
//! Two error-budget rules, evaluated deterministically on every
//! completed invocation:
//!
//! * **latency** — an invocation is *bad* when its end-to-end latency
//!   exceeds [`SloConfig::latency_threshold`]; the budget allows
//!   [`SloConfig::latency_objective`] of them.
//! * **cold_start** — an invocation is *bad* when it was served by a
//!   disk-touching restore (snapshot-cold or cold boot); the budget
//!   allows [`SloConfig::cold_objective`] of them.
//!
//! Each rule uses the classic multi-window burn-rate recipe (Google SRE
//! workbook): the *burn rate* is `bad_fraction / objective` over a
//! window, and an alert fires only when **both** the long and the short
//! window burn at ≥ [`SloConfig::burn_threshold`] — the long window
//! proves budget is really being spent, the short window proves it is
//! *still* being spent (fast resolve once the spike passes). Alerts
//! resolve when both windows drop back below the threshold.
//!
//! Everything is a pure function of the simulated event stream, so
//! alert timestamps are byte-reproducible per seed. Emission is lazy:
//! trace instants and `fleet_slo_*` metric families appear only when a
//! transition actually happens, so a healthy run with the monitor
//! enabled produces byte-identical artifacts to one without it.

use std::collections::VecDeque;

use faasnap_obs::{Metrics, TraceContext, Tracer};
use sim_core::json::Value;
use sim_core::time::{SimDuration, SimTime};

use crate::hostsim::ServeMode;

/// Burn-rate rule parameters. The defaults suit the smoke/demo fleets:
/// a 1 s latency bound with a 10% budget, a 30% cold-start budget, and
/// 10 s / 2 s windows burning at 2× budget before paging. The budget and
/// the startup guard are sized so the compulsory one-cold-start-per-
/// tenant spike at the beginning of every fleet run stays inside budget:
/// those are expected warmup, not an incident.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloConfig {
    /// Latency above this is an error-budget hit.
    pub latency_threshold: SimDuration,
    /// Allowed fraction of slow invocations.
    pub latency_objective: f64,
    /// Allowed fraction of disk-touching (snapshot-cold / cold) serves.
    pub cold_objective: f64,
    /// Long evaluation window (is budget really being spent?).
    pub long_window: SimDuration,
    /// Short evaluation window (is it still being spent?).
    pub short_window: SimDuration,
    /// Both windows must burn at ≥ this multiple of budget to fire.
    pub burn_threshold: f64,
    /// Minimum samples in the long window before a rule may fire —
    /// keeps the first handful of (necessarily cold) invocations from
    /// paging on startup.
    pub min_samples: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            latency_threshold: SimDuration::from_secs(1),
            latency_objective: 0.10,
            cold_objective: 0.30,
            long_window: SimDuration::from_secs(10),
            short_window: SimDuration::from_secs(2),
            burn_threshold: 2.0,
            min_samples: 50,
        }
    }
}

/// A fired or resolved alert transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertEvent {
    /// Both windows crossed the burn threshold.
    Fire,
    /// Both windows dropped back below it.
    Resolve,
}

impl AlertEvent {
    /// Stable label (`event="..."`).
    pub fn label(self) -> &'static str {
        match self {
            AlertEvent::Fire => "fire",
            AlertEvent::Resolve => "resolve",
        }
    }
}

/// One alert transition in a run's deterministic alert log.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlert {
    /// Rule name (`"latency"` or `"cold_start"`).
    pub rule: &'static str,
    /// Fire or resolve.
    pub event: AlertEvent,
    /// Simulated instant of the transition.
    pub at: SimTime,
    /// Long-window burn rate at the transition.
    pub burn_long: f64,
    /// Short-window burn rate at the transition.
    pub burn_short: f64,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    at: SimTime,
    slow: bool,
    cold: bool,
}

/// Rolling `[samples, slow, cold]` totals over a window.
type WindowCounts = [u64; 3];

fn counts_add(c: &mut WindowCounts, s: &Sample) {
    c[0] += 1;
    c[1] += u64::from(s.slow);
    c[2] += u64::from(s.cold);
}

fn counts_sub(c: &mut WindowCounts, s: &Sample) {
    c[0] -= 1;
    c[1] -= u64::from(s.slow);
    c[2] -= u64::from(s.cold);
}

/// The burn-rate evaluator. Owns a sliding sample window bounded by the
/// long-window length and the per-rule alert state. Window populations
/// are maintained as rolling counters — O(1) amortized per observation
/// — computing the same integer tallies a rescan of the window would,
/// so burn rates (and therefore alert transitions) are bit-identical to
/// the scanning evaluator this replaced. Requires nondecreasing `now`,
/// which the event engine guarantees.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    window: VecDeque<Sample>,
    /// Totals over the long window — after eviction, the whole deque.
    long_counts: WindowCounts,
    /// Deque entries older than the short cutoff (a prefix, since
    /// samples arrive in time order) …
    short_skip: usize,
    /// … and totals over the short-window suffix behind them.
    short_counts: WindowCounts,
    latency_active: bool,
    cold_active: bool,
    alerts: Vec<SloAlert>,
}

impl SloMonitor {
    /// Creates a monitor with the given rule parameters.
    pub fn new(cfg: SloConfig) -> SloMonitor {
        SloMonitor {
            cfg,
            window: VecDeque::new(),
            long_counts: [0; 3],
            short_skip: 0,
            short_counts: [0; 3],
            latency_active: false,
            cold_active: false,
            alerts: Vec::new(),
        }
    }

    /// Burn rate of one predicate's rolling counts:
    /// `(bad / n) / objective`. Returns `(burn, samples_in_window)`.
    fn burn(counts: &WindowCounts, objective: f64, bad_idx: usize) -> (f64, u64) {
        let n = counts[0];
        let bad = counts[bad_idx];
        if n == 0 || objective <= 0.0 {
            return (0.0, n);
        }
        ((bad as f64 / n as f64) / objective, n)
    }

    /// Feeds one completed invocation and evaluates both rules, emitting
    /// any transitions to `tracer`/`obs` (lazily — a quiet rule touches
    /// neither).
    pub fn observe(
        &mut self,
        now: SimTime,
        latency: SimDuration,
        mode: ServeMode,
        tracer: &Tracer,
        obs: &Metrics,
    ) {
        // Evict samples the long window can no longer see, then admit.
        let cutoff = now - self.cfg.long_window;
        while let Some(s) = self.window.front().copied() {
            if s.at >= cutoff {
                break;
            }
            self.window.pop_front();
            counts_sub(&mut self.long_counts, &s);
            if self.short_skip > 0 {
                // Already aged out of the short window; just realign.
                self.short_skip -= 1;
            } else {
                counts_sub(&mut self.short_counts, &s);
            }
        }
        let sample = Sample {
            at: now,
            slow: latency > self.cfg.latency_threshold,
            cold: matches!(mode, ServeMode::SnapshotCold | ServeMode::Cold),
        };
        self.window.push_back(sample);
        counts_add(&mut self.long_counts, &sample);
        counts_add(&mut self.short_counts, &sample);
        // Advance the short-window boundary past newly-aged samples.
        let cutoff_short = now - self.cfg.short_window;
        while let Some(s) = self.window.get(self.short_skip).copied() {
            if s.at >= cutoff_short {
                break;
            }
            counts_sub(&mut self.short_counts, &s);
            self.short_skip += 1;
        }

        // (rule name, error-budget objective, index of the bad-sample
        // tally in the window counts, currently-active flag).
        let rules: [(&'static str, f64, usize, bool); 2] = [
            (
                "latency",
                self.cfg.latency_objective,
                1,
                self.latency_active,
            ),
            ("cold_start", self.cfg.cold_objective, 2, self.cold_active),
        ];
        for (rule, objective, bad_idx, active) in rules {
            let (burn_long, n_long) = Self::burn(&self.long_counts, objective, bad_idx);
            let (burn_short, _) = Self::burn(&self.short_counts, objective, bad_idx);
            let thr = self.cfg.burn_threshold;
            // Fire and stay firing only while BOTH windows burn: the
            // short window is what lets the alert resolve quickly once
            // the spike passes, even though the long window still
            // remembers it.
            let crossing = burn_long >= thr && burn_short >= thr;
            let next = if active {
                crossing
            } else {
                crossing && n_long >= self.cfg.min_samples
            };
            if next != active {
                let event = if next {
                    AlertEvent::Fire
                } else {
                    AlertEvent::Resolve
                };
                self.transition(rule, event, now, burn_long, burn_short, tracer, obs);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn transition(
        &mut self,
        rule: &'static str,
        event: AlertEvent,
        at: SimTime,
        burn_long: f64,
        burn_short: f64,
        tracer: &Tracer,
        obs: &Metrics,
    ) {
        match rule {
            "latency" => self.latency_active = event == AlertEvent::Fire,
            _ => self.cold_active = event == AlertEvent::Fire,
        }
        self.alerts.push(SloAlert {
            rule,
            event,
            at,
            burn_long,
            burn_short,
        });
        tracer.instant(
            "slo/alert",
            "slo",
            at,
            TraceContext::NONE,
            vec![
                ("rule", rule.into()),
                ("event", event.label().into()),
                ("burn_long", round3(burn_long).into()),
                ("burn_short", round3(burn_short).into()),
            ],
        );
        obs.counter_inc(
            "fleet_slo_transitions_total",
            &[("rule", rule), ("event", event.label())],
        );
    }

    /// The deterministic alert log, in transition order.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// True once any rule has ever fired.
    pub fn any_fired(&self) -> bool {
        !self.alerts.is_empty()
    }

    /// Rules currently in the firing state.
    pub fn active_rules(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.latency_active {
            v.push("latency");
        }
        if self.cold_active {
            v.push("cold_start");
        }
        v
    }

    /// End-of-run gauge emission: `fleet_slo_active` per rule. Only
    /// called when alerts fired, keeping healthy runs golden-identical.
    pub fn emit_final_gauges(&self, obs: &Metrics) {
        for rule in ["latency", "cold_start"] {
            let active = self.active_rules().contains(&rule);
            obs.gauge_set(
                "fleet_slo_active",
                &[("rule", rule)],
                if active { 1.0 } else { 0.0 },
            );
        }
    }

    /// The alert log as a JSON value for the fleet metrics document.
    pub fn summary_json(&self) -> Value {
        let alerts: Vec<Value> = self
            .alerts
            .iter()
            .map(|a| {
                Value::object()
                    .with("rule", a.rule)
                    .with("event", a.event.label())
                    .with("at_s", round3(a.at.as_secs_f64()))
                    .with("burn_long", round3(a.burn_long))
                    .with("burn_short", round3(a.burn_short))
            })
            .collect();
        let active: Vec<Value> = self.active_rules().into_iter().map(Value::from).collect();
        Value::object()
            .with("alerts", Value::Array(alerts))
            .with("active", Value::Array(active))
    }
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            min_samples: 10,
            ..SloConfig::default()
        }
    }

    fn feed(
        mon: &mut SloMonitor,
        start_ms: u64,
        count: u64,
        step_ms: u64,
        latency: SimDuration,
        mode: ServeMode,
    ) {
        let (tr, obs) = (Tracer::disabled(), Metrics::disabled());
        for i in 0..count {
            let at = SimTime::from_nanos((start_ms + i * step_ms) * 1_000_000);
            mon.observe(at, latency, mode, &tr, &obs);
        }
    }

    #[test]
    fn healthy_stream_never_fires() {
        let mut mon = SloMonitor::new(cfg());
        feed(
            &mut mon,
            0,
            500,
            50,
            SimDuration::from_millis(30),
            ServeMode::Warm,
        );
        assert!(!mon.any_fired());
        assert!(mon.active_rules().is_empty());
    }

    #[test]
    fn sustained_slowness_fires_then_resolves() {
        let mut mon = SloMonitor::new(cfg());
        // 100 warm+fast, then 50 slow (2 s > 1 s threshold), then fast
        // again long enough for both windows to clear.
        feed(
            &mut mon,
            0,
            100,
            50,
            SimDuration::from_millis(30),
            ServeMode::Warm,
        );
        feed(
            &mut mon,
            5000,
            50,
            50,
            SimDuration::from_secs(2),
            ServeMode::Warm,
        );
        assert!(mon.any_fired(), "slow burst must fire");
        assert_eq!(mon.active_rules(), vec!["latency"]);
        feed(
            &mut mon,
            7500,
            400,
            50,
            SimDuration::from_millis(30),
            ServeMode::Warm,
        );
        assert!(mon.active_rules().is_empty(), "must resolve after spike");
        let events: Vec<AlertEvent> = mon.alerts().iter().map(|a| a.event).collect();
        assert_eq!(events, vec![AlertEvent::Fire, AlertEvent::Resolve]);
        let fire = &mon.alerts()[0];
        assert_eq!(fire.rule, "latency");
        assert!(fire.burn_long >= 2.0 && fire.burn_short >= 2.0);
    }

    #[test]
    fn cold_storm_fires_cold_start_rule() {
        let mut mon = SloMonitor::new(cfg());
        feed(
            &mut mon,
            0,
            60,
            50,
            SimDuration::from_millis(200),
            ServeMode::Cold,
        );
        assert_eq!(mon.active_rules(), vec!["cold_start"]);
        assert!(mon
            .alerts()
            .iter()
            .all(|a| a.rule == "cold_start" && a.event == AlertEvent::Fire));
    }

    #[test]
    fn min_samples_suppresses_startup_colds() {
        let mut mon = SloMonitor::new(SloConfig {
            min_samples: 30,
            ..SloConfig::default()
        });
        // First 20 invocations all cold — below min_samples, no page.
        feed(
            &mut mon,
            0,
            20,
            50,
            SimDuration::from_millis(200),
            ServeMode::Cold,
        );
        assert!(!mon.any_fired());
    }

    #[test]
    fn short_spike_outside_short_window_stays_quiet() {
        let mut mon = SloMonitor::new(cfg());
        // A slow burst, then 3 s of fast traffic: the long window still
        // sees the burst, but the short window is clean — no alert.
        feed(
            &mut mon,
            0,
            30,
            10,
            SimDuration::from_secs(2),
            ServeMode::Warm,
        );
        let before = mon.alerts().len();
        feed(
            &mut mon,
            2500,
            60,
            50,
            SimDuration::from_millis(30),
            ServeMode::Warm,
        );
        // Whatever fired during the burst must have resolved; nothing
        // new fires from the tail.
        assert!(mon.active_rules().is_empty());
        assert!(mon.alerts().len() <= before + 1, "at most the resolve");
    }

    #[test]
    fn deterministic_alert_log() {
        let run = || {
            let mut mon = SloMonitor::new(cfg());
            feed(
                &mut mon,
                0,
                80,
                40,
                SimDuration::from_millis(30),
                ServeMode::Warm,
            );
            feed(
                &mut mon,
                3200,
                40,
                40,
                SimDuration::from_secs(3),
                ServeMode::Cold,
            );
            mon.summary_json().to_string_pretty()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lazy_emission_touches_nothing_when_healthy() {
        let obs = Metrics::enabled();
        let tr = Tracer::enabled();
        let mut mon = SloMonitor::new(cfg());
        for i in 0..200u64 {
            mon.observe(
                SimTime::from_nanos(i * 50_000_000),
                SimDuration::from_millis(20),
                ServeMode::Warm,
                &tr,
                &obs,
            );
        }
        assert_eq!(obs.render_prometheus(), "", "no families touched");
        assert_eq!(tr.spans().len(), 0);
        assert_eq!(tr.instants().len(), 0);
    }
}
