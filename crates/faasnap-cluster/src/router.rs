//! Fleet routing: which host serves an incoming invocation.
//!
//! All policies only consider hosts that can admit without shedding (the
//! admission-control contract); if no host can, the request is shed at
//! the router. On top of that base, [`RoutePolicy::SnapshotLocality`]
//! prefers hosts whose local state makes the invocation cheap — an idle
//! warm VM first, then a snapshot whose loading set is page-cache
//! resident, then any registered snapshot — mirroring the
//! snapshot-affinity placement the FaaSnap paper's fleet context implies
//! and the REAP-line of work evaluates.

use sim_core::rng::Prng;
use sim_core::time::SimTime;

use crate::arrival::TenantId;
use crate::hostsim::HostSim;

/// A placement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Uniformly random among admittable hosts.
    Random,
    /// The admittable host with the fewest running + queued requests.
    LeastLoaded,
    /// Locality first (warm VM ≻ hot snapshot ≻ cold snapshot), load as
    /// the tie-breaker.
    SnapshotLocality,
}

impl RoutePolicy {
    /// Stable label used in metrics JSON and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            RoutePolicy::Random => "random",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::SnapshotLocality => "snapshot-locality",
        }
    }

    /// Parses a policy label.
    pub fn parse(s: &str) -> Result<RoutePolicy, String> {
        match s {
            "random" => Ok(RoutePolicy::Random),
            "least-loaded" => Ok(RoutePolicy::LeastLoaded),
            "snapshot-locality" | "locality" => Ok(RoutePolicy::SnapshotLocality),
            other => Err(format!("unknown routing policy {other:?}")),
        }
    }

    /// Picks a host for `tenant`, or `None` to shed (no admittable
    /// host). Deterministic given the rng state and host states.
    pub fn pick(
        self,
        hosts: &[HostSim],
        tenant: TenantId,
        now: SimTime,
        rng: &mut Prng,
    ) -> Option<usize> {
        let admittable: Vec<usize> = (0..hosts.len()).filter(|&h| hosts[h].can_admit()).collect();
        // Empty → None throughout: an exhausted fleet sheds at the router.
        match self {
            RoutePolicy::Random => rng.choose(&admittable).copied(),
            RoutePolicy::LeastLoaded => admittable
                .iter()
                .min_by_key(|&&h| (hosts[h].load(), h))
                .copied(),
            RoutePolicy::SnapshotLocality => admittable
                .iter()
                .min_by_key(|&&h| (hosts[h].locality(tenant, now), hosts[h].load(), h))
                .copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostsim::{HostConfig, LocalityClass, ServiceTimes};
    use sim_core::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn fleet(n: usize) -> Vec<HostSim> {
        (0..n)
            .map(|_| {
                HostSim::new(HostConfig {
                    slots: 2,
                    queue_cap: 1,
                    warm_ttl: SimDuration::from_secs(600),
                    warm_pool_cap: 4,
                    snapshot_budget_bytes: 1 << 30,
                    cache_budget_bytes: 1 << 30,
                    store: crate::store::StoreParams::default(),
                    branch: false,
                })
            })
            .collect()
    }

    #[test]
    fn locality_prefers_snapshot_host() {
        let mut hosts = fleet(3);
        let st = ServiceTimes::default();
        // Host 1 has served tenant 7: snapshot + cache resident.
        hosts[1].start_service(7, 7, t(0), &st);
        hosts[1].finish(7, t(1));
        assert_eq!(hosts[1].locality(7, t(2)), LocalityClass::WarmVm);
        let mut rng = Prng::new(1);
        let picked = RoutePolicy::SnapshotLocality.pick(&hosts, 7, t(2), &mut rng);
        assert_eq!(picked, Some(1));
        // An unknown tenant falls back to least load (host 0 by index).
        let picked = RoutePolicy::SnapshotLocality.pick(&hosts, 9, t(2), &mut rng);
        assert_eq!(picked, Some(0));
    }

    #[test]
    fn least_loaded_balances() {
        let mut hosts = fleet(2);
        let st = ServiceTimes::default();
        hosts[0].start_service(0, 0, t(0), &st);
        let mut rng = Prng::new(2);
        assert_eq!(
            RoutePolicy::LeastLoaded.pick(&hosts, 1, t(0), &mut rng),
            Some(1)
        );
    }

    #[test]
    fn all_full_sheds() {
        let mut hosts = fleet(2);
        let st = ServiceTimes::default();
        for h in hosts.iter_mut() {
            // Fill both slots and the 1-deep queue.
            use crate::hostsim::QueuedJob;
            for tenant in 0..3 {
                h.admit(
                    QueuedJob {
                        tenant,
                        family: tenant as u64,
                        arrived: t(0),
                        ctx: faasnap_obs::TraceContext::NONE,
                    },
                    t(0),
                    &st,
                );
            }
            assert!(!h.can_admit());
        }
        let mut rng = Prng::new(3);
        for policy in [
            RoutePolicy::Random,
            RoutePolicy::LeastLoaded,
            RoutePolicy::SnapshotLocality,
        ] {
            assert_eq!(policy.pick(&hosts, 0, t(0), &mut rng), None);
        }
    }

    #[test]
    fn random_spreads() {
        let hosts = fleet(4);
        let mut rng = Prng::new(4);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let h = RoutePolicy::Random.pick(&hosts, 0, t(0), &mut rng).unwrap();
            seen[h] = true;
        }
        assert!(seen.iter().all(|&s| s), "all hosts eventually picked");
    }

    #[test]
    fn labels_round_trip() {
        for p in [
            RoutePolicy::Random,
            RoutePolicy::LeastLoaded,
            RoutePolicy::SnapshotLocality,
        ] {
            assert_eq!(RoutePolicy::parse(p.label()).unwrap(), p);
        }
        assert!(RoutePolicy::parse("bogus").is_err());
    }
}
