//! `faasnapd` — command-line front-end to the FaaSnap platform.
//!
//! The real FaaSnap daemon is an HTTP service driven by a remote load
//! balancer; this CLI exposes the same operations over the simulated
//! host — plus a fleet simulation on top of it — one flow per run:
//!
//! ```sh
//! faasnapd list
//! faasnapd invoke <function> [--strategy faasnap|firecracker|cached|reap|warm]
//!                            [--input a|b] [--ratio <f64>] [--device nvme|ebs]
//!                            [--fork <n>]
//!                            [--trace] [--trace-out <file>] [--metrics-out <file>]
//!                            [--profile-out <file>] [--self-profile-out <file>]
//! faasnapd burst <function> --parallelism <n> [--strategy ...] [--kind same|diff]
//! faasnapd policy <function>
//! faasnapd cluster [--hosts 8] [--seed 42] [--policy all|random|least-loaded|snapshot-locality]
//!                  [--tenants 36] [--rate 40] [--skew 1.2] [--horizon 300]
//!                  [--snapshot-budget <bytes>] [--dedup on|off] [--chunk-bytes <bytes>]
//!                  [--fault-prob 0.02] [--fault-retry-ms 3] [--degrade-prob 0.25] [--degrade-ms 25]
//!                  [--slo-latency-ms 1000] [--slo-burn 2.0]
//!                  [--smoke] [--mega] [--repeat <n>] [--branch]
//!                  [--metrics-out <file>] [--trace-out <file>]
//!                  [--profile-out <file>] [--self-profile-out <file>]
//! faasnapd lint [--root <dir>] [--deep] [--json]
//! ```
//!
//! `--trace-out` writes a Chrome trace-event JSON file loadable in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`; `--metrics-out`
//! writes a Prometheus text-exposition snapshot. `--profile-out` writes
//! folded flamegraph stacks (collapse format — load in speedscope or
//! feed to `inferno-flamegraph`) aggregated from the same spans, with a
//! per-phase self/total sim-time table printed to stdout;
//! `--self-profile-out` writes the engine's own work counters
//! (event-loop deliveries, fault-resolver map operations, store chunk
//! traffic — plus per-scope wall-ns when the `wallclock` feature of
//! `faasnap-obs` is enabled). `cluster --smoke` runs the fixed
//! [`ClusterConfig::smoke`] fleet (no calibration), which the
//! repository's golden tests pin byte-for-byte. `cluster --mega` runs
//! the fixed trace-scale [`ClusterConfig::mega`] fleet (≥10⁶
//! invocations, 1000 hosts, no calibration) and emits only the fleet
//! aggregates. `--repeat <n>` reruns the identical fleet n times in
//! one process — asserting byte-identical metrics — so benchmarks can
//! divide wall time by n and factor out the process-startup floor.
//!
//! The fleet runs a burn-rate SLO monitor (latency + cold-start error
//! budgets, long/short windows) on every invocation; it is silent on
//! healthy runs and appends an `slo` section to the JSON document (and
//! `fleet_slo_*` metric families) only when an alert actually fires.
//! `--slo-latency-ms` moves the latency threshold; `--slo-burn` the
//! burn-rate multiple both windows must exceed.
//!
//! Snapshot registries are store-aware: each host's registry charges its
//! `--snapshot-budget` against *unique* chunk bytes in a
//! content-addressed store, so snapshots sharing zero, runtime, or
//! function-family chunks cost far less than their logical size, and
//! eviction frees only chunks no surviving snapshot references.
//! `--branch` turns on snapshot branching: while a snapshot restore is
//! paging a family's chunks from disk, co-located same-family requests
//! branch COW siblings off it instead of re-reading the loading set,
//! adding a `fork` section (and `fleet_fork_*` metric families) when
//! any request actually branched. `--smoke --branch` runs the fixed
//! [`ClusterConfig::fork_smoke`] branching fleet, which the repo's
//! `fork_fleet.json` golden pins byte-for-byte.
//! `--dedup off` makes every chunk tenant-unique — reproducing the old
//! whole-file LRU accounting as an ablation baseline — and
//! `--chunk-bytes` sets the dedup granularity (default 2 MiB).

use faasnap::strategy::RestoreStrategy;
use faasnap_cluster::{
    calibrate, run_cluster, ClusterConfig, FleetFaultProfile, RoutePolicy, StoreParams,
    WorkloadSpec,
};
use faasnap_daemon::config::ExperimentConfig;
use faasnap_daemon::observe::{traced_fork, traced_invoke};
use faasnap_daemon::platform::{BurstKind, Platform};
use faasnap_daemon::policy::{best_mode_for_period, Costs, ModeLatencies};
use faasnap_obs::{
    chrome_trace_json, folded_stacks, render_phase_table, render_text_tree, Metrics, SelfProfile,
    Tracer,
};
use sim_core::json::Value;
use sim_core::stats::Summary;
use sim_core::time::SimDuration;
use sim_storage::profiles::DiskProfile;

struct Args {
    positional: Vec<String>,
    flags: std::collections::BTreeMap<String, String>,
}

impl Args {
    fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = std::collections::BTreeMap::new();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if matches!(
                    name,
                    "trace" | "smoke" | "mega" | "deep" | "json" | "branch"
                ) {
                    "true".to_string()
                } else {
                    iter.next()
                        .unwrap_or_else(|| die(&format!("--{name} needs a value")))
                };
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: &str) -> T {
        self.flag(name, default)
            .parse()
            .unwrap_or_else(|_| die(&format!("--{name} must be a number")))
    }
}

fn die(msg: &str) -> ! {
    eprintln!("faasnapd: {msg}");
    std::process::exit(2);
}

fn profile_for(device: &str) -> DiskProfile {
    match device {
        "nvme" => DiskProfile::nvme_c5d(),
        "ebs" => DiskProfile::ebs_io2(),
        other => die(&format!("unknown device {other:?} (nvme|ebs)")),
    }
}

fn write_artifact(path: &str, what: &str, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    eprintln!("wrote {what} to {path}");
}

fn platform_for(device: &str, seed: u64) -> Platform {
    let mut p = Platform::new(profile_for(device), seed);
    for f in faas_workloads::all_functions() {
        p.register(f);
    }
    p
}

fn strategy_for(name: &str) -> RestoreStrategy {
    ExperimentConfig::parse_strategy(name).unwrap_or_else(|e| die(&e))
}

fn main() {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("invoke") => cmd_invoke(&args),
        Some("burst") => cmd_burst(&args),
        Some("policy") => cmd_policy(&args),
        Some("cluster") => cmd_cluster(&args),
        Some("lint") => cmd_lint(&args),
        _ => die(
            "usage: faasnapd <list|invoke|burst|policy|cluster|lint> [args]; see --help in the source header",
        ),
    }
}

fn cmd_lint(args: &Args) {
    let root = match args.flags.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| faasnap_lint::find_workspace_root(&d))
            .unwrap_or_else(|| die("no workspace root found (pass --root)")),
    };
    let deep = args.flags.contains_key("deep");
    let report = if deep {
        faasnap_lint::lint_workspace_deep(&root)
    } else {
        faasnap_lint::lint_workspace(&root)
    }
    .unwrap_or_else(|e| die(&e));
    if args.flags.contains_key("json") {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "unwrap-budget: {} of {} non-test unwrap()/expect() call sites used",
            report.unwrap_count, report.unwrap_budget
        );
        if deep {
            println!(
                "panic-path-budget: {} of {} non-test panic paths used",
                report.panic_path_count, report.panic_path_budget
            );
        }
    }
    if !report.is_clean() {
        eprintln!("faasnapd lint: {} diagnostic(s)", report.diagnostics.len());
        std::process::exit(1);
    }
}

fn cmd_list() {
    println!(
        "{:<14} {:<34} {:>9} {:>9}",
        "function", "description", "WS A", "WS B"
    );
    for f in faas_workloads::all_functions() {
        let ws = |i: &faas_workloads::Input| {
            sim_core::units::format_bytes(f.trace(i).distinct_pages() * 4096)
        };
        println!(
            "{:<14} {:<34} {:>9} {:>9}",
            f.name(),
            f.params().description,
            ws(&f.input_a()),
            ws(&f.input_b()),
        );
    }
}

fn function_for(args: &Args) -> faas_workloads::Function {
    let name = args
        .positional
        .get(1)
        .unwrap_or_else(|| die("missing function name"));
    faas_workloads::by_name(name).unwrap_or_else(|| die(&format!("unknown function {name}")))
}

fn input_for(args: &Args, f: &faas_workloads::Function) -> faas_workloads::Input {
    if let Some(ratio) = args.flags.get("ratio") {
        let r: f64 = ratio
            .parse()
            .unwrap_or_else(|_| die("--ratio must be a number"));
        if r <= 0.0 || r.is_nan() {
            die("--ratio must be positive");
        }
        return f.input_scaled(r, 0xC11);
    }
    match args.flag("input", "b").as_str() {
        "a" => f.input_a(),
        "b" => f.input_b(),
        other => die(&format!("unknown input {other:?} (a|b)")),
    }
}

fn cmd_invoke(args: &Args) {
    let f = function_for(args);
    let strategy = strategy_for(&args.flag("strategy", "faasnap"));
    let profile = profile_for(&args.flag("device", "nvme"));
    let input = input_for(args, &f);
    // `--fork N` branches N concurrent restores from the one snapshot
    // instead of running a single independent restore.
    let fork_n: usize = args.num("fork", "1");
    if fork_n == 0 {
        die("--fork must be at least 1");
    }
    if fork_n > 1 {
        println!("recording snapshot for {} (input A)...", f.name());
        let run = traced_fork(f.name(), &input, strategy, profile, 0xFA5D, fork_n)
            .unwrap_or_else(|e| die(&e));
        let fork = &run.fork;
        let times: Summary = fork
            .outcomes
            .iter()
            .map(|o| o.report.total_time().as_millis_f64())
            .collect();
        println!(
            "{} x{} fork ({}): mean {:.1} ms, p95 {:.1} ms, max {:.1} ms",
            f.name(),
            fork_n,
            strategy.label(),
            times.mean(),
            times.p95(),
            times.max(),
        );
        println!(
            "sharing: {} disk pages read for {} siblings ({} shared base pages, {} private COW pages)",
            fork.disk_read_pages, fork_n, fork.shared_pages, fork.private_pages
        );
        if let Some(path) = args.flags.get("trace-out") {
            write_artifact(path, "Chrome trace", &chrome_trace_json(&run.tracer));
        }
        if let Some(path) = args.flags.get("metrics-out") {
            write_artifact(path, "metrics", &run.metrics.render_prometheus());
        }
        if let Some(path) = args.flags.get("profile-out") {
            println!("\n{}", render_phase_table(&run.tracer));
            write_artifact(path, "folded stacks", &folded_stacks(&run.tracer));
        }
        if let Some(path) = args.flags.get("self-profile-out") {
            write_artifact(path, "self-profile", &run.selfprof.render_report());
        }
        return;
    }
    println!("recording snapshot for {} (input A)...", f.name());
    let run =
        traced_invoke(f.name(), &input, strategy, profile, 0xFA5D).unwrap_or_else(|e| die(&e));
    let r = &run.outcome.report;
    println!(
        "{} under {}: total {} (setup {} + invoke {})",
        f.name(),
        strategy.label(),
        r.total_time(),
        r.setup_time,
        r.invocation_time
    );
    println!(
        "faults: {} anon, {} minor, {} major, {} host-pte, {} uffd; fetched {} pages in {}",
        r.anon_faults,
        r.minor_faults,
        r.major_faults,
        r.host_pte_faults,
        r.uffd_faults,
        r.fetch_pages,
        r.fetch_time
    );
    if args.flags.contains_key("trace") {
        println!("\n{}", render_text_tree(&run.tracer));
    }
    if let Some(path) = args.flags.get("trace-out") {
        write_artifact(path, "Chrome trace", &chrome_trace_json(&run.tracer));
    }
    if let Some(path) = args.flags.get("metrics-out") {
        write_artifact(path, "metrics", &run.metrics.render_prometheus());
    }
    if let Some(path) = args.flags.get("profile-out") {
        println!("\n{}", render_phase_table(&run.tracer));
        write_artifact(path, "folded stacks", &folded_stacks(&run.tracer));
    }
    if let Some(path) = args.flags.get("self-profile-out") {
        write_artifact(path, "self-profile", &run.selfprof.render_report());
    }
}

fn cmd_burst(args: &Args) {
    let f = function_for(args);
    let strategy = strategy_for(&args.flag("strategy", "faasnap"));
    let parallelism: u32 = args
        .flag("parallelism", "16")
        .parse()
        .unwrap_or_else(|_| die("--parallelism must be an integer"));
    if parallelism == 0 {
        die("--parallelism must be at least 1");
    }
    let kind = match args.flag("kind", "same").as_str() {
        "same" => BurstKind::SameSnapshot,
        "diff" => BurstKind::DifferentSnapshots,
        other => die(&format!("unknown burst kind {other:?} (same|diff)")),
    };
    let mut p = platform_for(&args.flag("device", "nvme"), 0xB557);
    p.record(f.name(), "cli", &f.input_a())
        .unwrap_or_else(|e| die(&e));
    let outs = p
        .burst(f.name(), "cli", &f.input_b(), strategy, parallelism, kind)
        .unwrap_or_else(|e| die(&e));
    let times: Summary = outs
        .iter()
        .map(|o| o.report.total_time().as_millis_f64())
        .collect();
    println!(
        "{} x{} ({kind:?}, {}): mean {:.1} ms, p95 {:.1} ms, min {:.1} ms, max {:.1} ms",
        f.name(),
        parallelism,
        strategy.label(),
        times.mean(),
        times.p95(),
        times.min(),
        times.max(),
    );
}

fn cmd_policy(args: &Args) {
    let f = function_for(args);
    let mut p = platform_for(&args.flag("device", "nvme"), 0x9011);
    let latencies =
        ModeLatencies::measure(&mut p, f.name(), "cli", &f.input_b()).unwrap_or_else(|e| die(&e));
    println!(
        "{}: warm {}, FaaSnap snapshot {}, cold {}",
        f.name(),
        latencies.warm,
        latencies.snapshot,
        latencies.cold
    );
    for (secs, label) in [
        (10u64, "10s"),
        (60, "1min"),
        (600, "10min"),
        (3600, "1h"),
        (86_400, "24h"),
    ] {
        let mode = best_mode_for_period(
            SimDuration::from_secs(secs),
            SimDuration::from_secs(7 * 86_400),
            SimDuration::from_secs(900),
            latencies,
            Costs::default(),
            1000.0,
        );
        println!("  every {label:>6}: serve via {mode:?}");
    }
}

fn cmd_cluster(args: &Args) {
    let hosts: usize = args.num("hosts", "8");
    let seed: u64 = args.num("seed", "42");
    let tenants: usize = args.num("tenants", "36");
    let rate: f64 = args.num("rate", "40");
    let skew: f64 = args.num("skew", "1.2");
    let horizon_s: u64 = args.num("horizon", "300");
    if hosts == 0 || tenants == 0 {
        die("--hosts and --tenants must be at least 1");
    }
    let policies: Vec<RoutePolicy> = match args.flag("policy", "all").as_str() {
        "all" => vec![
            RoutePolicy::Random,
            RoutePolicy::LeastLoaded,
            RoutePolicy::SnapshotLocality,
        ],
        one => vec![RoutePolicy::parse(one).unwrap_or_else(|e| die(&e))],
    };

    let smoke = args.flags.contains_key("smoke");
    // The trace-scale fixed fleet (ClusterConfig::mega): ≥10⁶
    // invocations on 1000 hosts, built-in service times (no
    // calibration), single policy unless --policy all is explicit.
    let mega = args.flags.contains_key("mega");
    if smoke && mega {
        die("--smoke and --mega are mutually exclusive");
    }
    // In-process repetition for microbenchmarks: run the identical
    // fleet K times (asserting byte-identical metrics) so per-run wall
    // time can be measured without the process startup floor.
    let repeat: u32 = args.num("repeat", "1");
    if repeat == 0 {
        die("--repeat must be at least 1");
    }
    // Store-aware registry knobs. The defaults match HostConfig's, so
    // the smoke fleet stays golden-pinned when no flag is passed.
    let dedup = match args.flag("dedup", "on").as_str() {
        "on" => true,
        "off" => false,
        other => die(&format!("unknown --dedup {other:?} (on|off)")),
    };
    let chunk_bytes: u64 = args.num("chunk-bytes", "2097152");
    if chunk_bytes == 0 {
        die("--chunk-bytes must be nonzero");
    }
    let snapshot_budget: u64 = args.num(
        "snapshot-budget",
        &(faasnap_cluster::HostConfig::default().snapshot_budget_bytes).to_string(),
    );
    let store = StoreParams { dedup, chunk_bytes };
    // Snapshot branching: co-located same-family restores share one
    // in-flight read stream instead of each paging from disk.
    let branch = args.flags.contains_key("branch");
    // A fault profile is armed as soon as any --fault-*/--degrade-*
    // flag appears; unspecified knobs fall back to the mild defaults.
    let fault_profile = if ["fault-prob", "fault-retry-ms", "degrade-prob", "degrade-ms"]
        .iter()
        .any(|f| args.flags.contains_key(*f))
    {
        let prob: f64 = args.num("fault-prob", "0.02");
        let degrade_prob: f64 = args.num("degrade-prob", "0.25");
        if !(0.0..=1.0).contains(&prob) || !(0.0..=1.0).contains(&degrade_prob) {
            die("--fault-prob and --degrade-prob must be in [0, 1]");
        }
        Some(FleetFaultProfile {
            storage_fault_prob: prob,
            retry_penalty: SimDuration::from_millis(args.num("fault-retry-ms", "3")),
            degrade_prob,
            degrade_penalty: SimDuration::from_millis(args.num("degrade-ms", "25")),
        })
    } else {
        None
    };
    // Calibrate per-workload service times against the detailed
    // single-host platform, then replay the fleet against them. The
    // smoke fleet uses the built-in defaults so golden files don't
    // depend on the (slow) calibration runs.
    let workloads = ["hello-world", "json", "compression", "image"];
    let services = if smoke || mega {
        Vec::new()
    } else {
        eprintln!(
            "calibrating {} workloads on the single-host platform...",
            workloads.len()
        );
        let services = calibrate::calibrate_workloads(&workloads, seed).unwrap_or_else(|e| die(&e));
        for (name, t) in &services {
            eprintln!(
                "  {name}: warm {}, snap-hot {}, snap-cold {}, cold {}",
                t.warm, t.snap_hot, t.snap_cold, t.cold
            );
        }
        services
    };

    let obs = if args.flags.contains_key("metrics-out") {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    // The profiler folds the same spans the trace records, so either
    // artifact flag turns the tracer on.
    let tracer = if args.flags.contains_key("trace-out") || args.flags.contains_key("profile-out") {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let selfprof = if args.flags.contains_key("self-profile-out") {
        SelfProfile::enabled()
    } else {
        SelfProfile::disabled()
    };
    let slo_latency_ms: u64 = args.num("slo-latency-ms", "1000");
    let slo_burn: f64 = args.num("slo-burn", "2.0");
    if slo_burn <= 0.0 {
        die("--slo-burn must be positive");
    }

    let mut runs = Vec::new();
    let mut p99_by_policy: Vec<(String, f64)> = Vec::new();
    for policy in policies {
        let mut cfg = if smoke {
            if branch {
                // The fixed branching smoke fleet (golden-pinned).
                ClusterConfig::fork_smoke(policy, seed)
            } else {
                ClusterConfig::smoke(policy, seed)
            }
        } else if mega {
            ClusterConfig::mega(policy, seed)
        } else {
            let mut cfg = ClusterConfig::demo(hosts, policy, seed);
            cfg.workload = WorkloadSpec::zipf(tenants, &workloads, rate, skew);
            cfg.horizon = SimDuration::from_secs(horizon_s);
            cfg.services = services.clone();
            cfg
        };
        cfg.obs = obs.clone();
        cfg.tracer = tracer.clone();
        cfg.selfprof = selfprof.clone();
        cfg.slo.latency_threshold = SimDuration::from_millis(slo_latency_ms);
        cfg.slo.burn_threshold = slo_burn;
        cfg.fault_profile = fault_profile;
        cfg.host.store = store;
        cfg.host.snapshot_budget_bytes = snapshot_budget;
        cfg.host.branch = branch;
        eprintln!(
            "simulating {} on {} hosts, {} tenants for {}...",
            policy.label(),
            cfg.hosts,
            cfg.workload.tenants.len(),
            cfg.horizon
        );
        let mut m = run_cluster(&cfg);
        if repeat > 1 {
            // Deterministic by construction; the assert makes a
            // nondeterminism regression fail the benchmark loudly
            // instead of averaging it away.
            let first = m.to_json().to_string_pretty();
            for _ in 1..repeat {
                m = run_cluster(&cfg);
                if m.to_json().to_string_pretty() != first {
                    die("--repeat runs diverged: fleet sim is nondeterministic");
                }
            }
        }
        p99_by_policy.push((policy.label().to_string(), m.p(99.0)));
        let mut run = m.to_json();
        if mega {
            // 4000 tenant rows and 1000 host rows dwarf the fleet
            // aggregates; the mega driver only consumes the latter.
            run = Value::object()
                .with("policy", run.get("policy").cloned().unwrap_or(Value::Null))
                .with("seed", seed)
                .with("hosts", cfg.hosts as u64)
                .with(
                    "horizon_s",
                    run.get("horizon_s").cloned().unwrap_or(Value::Null),
                )
                .with("fleet", run.get("fleet").cloned().unwrap_or(Value::Null));
        }
        runs.push(run);
    }

    if let Some(path) = args.flags.get("metrics-out") {
        write_artifact(path, "metrics", &obs.render_prometheus());
    }
    if let Some(path) = args.flags.get("trace-out") {
        write_artifact(path, "Chrome trace", &chrome_trace_json(&tracer));
    }
    if let Some(path) = args.flags.get("profile-out") {
        eprintln!("{}", render_phase_table(&tracer));
        write_artifact(path, "folded stacks", &folded_stacks(&tracer));
    }
    if let Some(path) = args.flags.get("self-profile-out") {
        write_artifact(path, "self-profile", &selfprof.render_report());
    }

    let mut doc = Value::object().with("runs", Value::Array(runs));
    if p99_by_policy.len() > 1 {
        let mut cmp = Value::object();
        for (label, p99) in &p99_by_policy {
            cmp = cmp.with(
                format!("{label}_p99_ms").as_str(),
                (p99 * 1000.0).round() / 1000.0,
            );
        }
        doc = doc.with("p99_comparison", cmp);
    }
    println!("{}", doc.to_string_pretty());
}
