//! Calibrating fleet [`ServiceTimes`] against the real platform.
//!
//! The fleet model does not re-simulate every page fault of every
//! invocation — that is what the single-host simulator is for. Instead,
//! each base workload is measured **once** on a detailed
//! [`faasnap_daemon::platform::Platform`] (record phase, then warm /
//! FaaSnap-restore / cached-restore invocations and the boot-path cold
//! cost via [`ModeLatencies::measure`]), and the fleet replays millions
//! of arrivals against those calibrated constants plus the hosts'
//! queueing, warm-pool, and snapshot-registry state.

use faasnap::strategy::RestoreStrategy;
use faasnap_daemon::platform::Platform;
use faasnap_daemon::policy::ModeLatencies;
use sim_storage::profiles::DiskProfile;

use crate::hostsim::ServiceTimes;

/// Bytes per simulated page.
const PAGE_BYTES: u64 = 4096;

/// Measures [`ServiceTimes`] for `name` on platform `p`, recording
/// artifacts under `label` if needed. The hot-restore latency is measured
/// directly with the `Cached` strategy (memory file page-cache resident),
/// and the byte footprints come from the recorded artifacts.
pub fn service_times_for(
    p: &mut Platform,
    name: &str,
    label: &str,
) -> Result<ServiceTimes, String> {
    let input = p
        .registry()
        .function(name)
        .ok_or_else(|| format!("unknown function {name}"))?
        .input_b();
    let l = ModeLatencies::measure(p, name, label, &input)?;
    let snap_hot = p
        .invoke(name, label, &input, RestoreStrategy::Cached)?
        .report
        .total_time();
    let art = p
        .registry()
        .artifacts(name, label)
        .ok_or_else(|| format!("{name}: artifacts vanished after measure"))?;
    Ok(ServiceTimes {
        warm: l.warm,
        // A cache-hot restore can in principle measure faster than warm
        // on tiny functions; keep the mode ordering monotone.
        snap_hot: snap_hot.max(l.warm),
        snap_cold: l.snapshot.max(snap_hot),
        cold: l.cold,
        snapshot_bytes: art.snapshot.total_pages() * PAGE_BYTES,
        loading_set_bytes: art.ls.file_pages() * PAGE_BYTES,
    })
}

/// Calibrates every named workload on one fresh platform, returning the
/// `(workload, times)` table [`crate::fleet::ClusterConfig`] consumes.
pub fn calibrate_workloads(
    names: &[&str],
    seed: u64,
) -> Result<Vec<(String, ServiceTimes)>, String> {
    let mut p = Platform::new(DiskProfile::nvme_c5d(), seed);
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let f = faas_workloads::by_name(name).ok_or_else(|| format!("unknown function {name}"))?;
        p.register(f);
        let times = service_times_for(&mut p, name, "fleet")?;
        out.push((name.to_string(), times));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_times_are_ordered_and_sized() {
        let table = calibrate_workloads(&["hello-world"], 7).unwrap();
        assert_eq!(table.len(), 1);
        let t = table[0].1;
        assert!(
            t.warm <= t.snap_hot,
            "warm {:?} <= hot {:?}",
            t.warm,
            t.snap_hot
        );
        assert!(
            t.snap_hot <= t.snap_cold,
            "hot {:?} <= cold-restore {:?}",
            t.snap_hot,
            t.snap_cold
        );
        assert!(
            t.snap_cold < t.cold,
            "restore {:?} < boot {:?}",
            t.snap_cold,
            t.cold
        );
        assert!(t.snapshot_bytes > 0);
        assert!(t.loading_set_bytes > 0);
        assert!(t.loading_set_bytes <= t.snapshot_bytes);
    }

    #[test]
    fn calibration_is_deterministic() {
        let a = calibrate_workloads(&["hello-world", "json"], 7).unwrap();
        let b = calibrate_workloads(&["hello-world", "json"], 7).unwrap();
        assert_eq!(a, b);
    }
}
