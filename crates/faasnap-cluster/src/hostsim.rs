//! The per-host serving model.
//!
//! Each fleet host is an abstraction of the detailed single-host
//! simulator: it serves one invocation per concurrency slot, holds
//! finished VMs in a TTL-governed warm pool (the §7.1 keep-alive), keeps
//! snapshots in a store-aware LRU registry ([`crate::store`]) whose
//! storage budget charges *unique* chunk bytes — eviction frees only
//! chunks no surviving snapshot references — and
//! tracks which loading sets are resident in its page cache (restores on
//! a cache-hot host skip the disk reads FaaSnap's loader would issue —
//! the locality signal the router exploits). Service latencies come from
//! [`ServiceTimes`], calibrated per workload against the real
//! [`faasnap_daemon::platform::Platform`] by [`crate::calibrate`].
//!
//! Determinism: all internal collections are order-preserving (`Vec` /
//! `VecDeque`), never hash maps, so replays are exact.

use std::collections::VecDeque;

use faasnap_daemon::policy::ModeLatencies;
use faasnap_obs::{Metrics, TraceContext};
use sim_core::time::{SimDuration, SimTime};

use crate::arrival::TenantId;
use crate::routeridx::RouterIndex;
use crate::store::{StoreParams, StoreRegistry};

/// How one fleet invocation was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// A live warm VM existed on the chosen host.
    Warm,
    /// Snapshot restore with the loading set already in page cache.
    SnapshotHot,
    /// Snapshot restore paging from disk.
    SnapshotCold,
    /// Full cold boot (no snapshot on the host, or it was evicted).
    Cold,
}

impl ServeMode {
    /// Stable lowercase label used in metrics JSON.
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Warm => "warm",
            ServeMode::SnapshotHot => "snapshot_hot",
            ServeMode::SnapshotCold => "snapshot_cold",
            ServeMode::Cold => "cold",
        }
    }
}

/// Per-workload serving latencies and footprints used by the fleet model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceTimes {
    /// Total invocation latency on a warm-VM hit.
    pub warm: SimDuration,
    /// Total latency restoring a snapshot whose loading set is cached.
    pub snap_hot: SimDuration,
    /// Total latency restoring a snapshot from disk.
    pub snap_cold: SimDuration,
    /// Total latency of a full cold boot.
    pub cold: SimDuration,
    /// On-disk snapshot footprint (counts against the registry budget).
    pub snapshot_bytes: u64,
    /// Loading-set footprint (counts against the page-cache budget).
    pub loading_set_bytes: u64,
}

impl ServiceTimes {
    /// Fleet latencies derived from measured single-host mode latencies;
    /// `snap_hot` interpolates between warm and snapshot restore (a hot
    /// cache removes the disk reads but not the mapping/fault work).
    pub fn from_latencies(l: ModeLatencies, snapshot_bytes: u64, loading_set_bytes: u64) -> Self {
        let warm = l.warm;
        let snap_cold = l.snapshot;
        let snap_hot = warm + (snap_cold.saturating_sub(warm)).mul_f64(0.35);
        ServiceTimes {
            warm,
            snap_hot,
            snap_cold,
            cold: l.cold,
            snapshot_bytes,
            loading_set_bytes,
        }
    }

    /// The latencies as the policy layer's [`ModeLatencies`].
    pub fn mode_latencies(&self) -> ModeLatencies {
        ModeLatencies {
            warm: self.warm,
            snapshot: self.snap_cold,
            cold: self.cold,
        }
    }

    /// Latency for a serving mode.
    pub fn latency(&self, mode: ServeMode) -> SimDuration {
        match mode {
            ServeMode::Warm => self.warm,
            ServeMode::SnapshotHot => self.snap_hot,
            ServeMode::SnapshotCold => self.snap_cold,
            ServeMode::Cold => self.cold,
        }
    }
}

impl Default for ServiceTimes {
    fn default() -> Self {
        // The reproduction's `image` reference numbers plus typical
        // footprints (2 GB VM, ~150 MB loading set).
        ServiceTimes::from_latencies(ModeLatencies::default(), 2 << 30, 150 << 20)
    }
}

/// Static configuration of one host.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostConfig {
    /// Concurrent invocation slots (memory capacity / VM footprint).
    pub slots: u32,
    /// Bounded pending queue; arrivals beyond it are shed.
    pub queue_cap: usize,
    /// Warm-VM keep-alive TTL (the §7.1 policy knob).
    pub warm_ttl: SimDuration,
    /// Maximum idle warm VMs resident at once.
    pub warm_pool_cap: usize,
    /// Storage budget for the snapshot registry (unique bytes).
    pub snapshot_budget_bytes: u64,
    /// Page-cache budget for loading sets.
    pub cache_budget_bytes: u64,
    /// Snapshot-store parameters: chunk-level dedup and granularity.
    pub store: StoreParams,
    /// Snapshot branching: while a same-family snapshot restore is
    /// paging from disk, co-located requests branch from it as COW
    /// siblings instead of re-reading the loading set (default off; an
    /// off host is byte-identical to a branch-free build).
    pub branch: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            slots: 16,
            queue_cap: 32,
            warm_ttl: SimDuration::from_secs(600),
            warm_pool_cap: 8,
            snapshot_budget_bytes: 24 << 30,
            cache_budget_bytes: 2 << 30,
            store: StoreParams::default(),
            branch: false,
        }
    }
}

/// An admitted-but-not-started invocation.
#[derive(Clone, Copy, Debug)]
pub struct QueuedJob {
    /// The tenant function to run.
    pub tenant: TenantId,
    /// The tenant's function family (shared snapshot provenance group —
    /// in the fleet model, tenants running the same base workload).
    pub family: u64,
    /// When the request arrived at the router.
    pub arrived: SimTime,
    /// The request's `fleet/request` span (NONE when tracing is off).
    pub ctx: TraceContext,
}

/// Byte-budgeted LRU over tenant-owned artifacts (snapshots or cached
/// loading sets). Front of the deque is least recently used.
#[derive(Clone, Debug, Default)]
pub struct LruBudget {
    entries: VecDeque<(TenantId, u64)>,
    total: u64,
    budget: u64,
}

impl LruBudget {
    /// Creates an empty LRU with the given byte budget.
    pub fn new(budget: u64) -> Self {
        LruBudget {
            entries: VecDeque::new(),
            total: 0,
            budget,
        }
    }

    /// True if `tenant` has a resident entry.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.entries.iter().any(|(t, _)| *t == tenant)
    }

    /// Bytes currently resident.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks `tenant` most recently used, without inserting.
    pub fn touch(&mut self, tenant: TenantId) {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == tenant) {
            if let Some(e) = self.entries.remove(pos) {
                self.entries.push_back(e);
            }
        }
    }

    /// Inserts (or refreshes) `tenant` at `bytes`, then evicts from the
    /// LRU end until the budget holds. Returns the evicted tenants. An
    /// entry larger than the whole budget is rejected (returned as if
    /// evicted immediately) rather than wedging the registry.
    pub fn insert(&mut self, tenant: TenantId, bytes: u64) -> Vec<TenantId> {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == tenant) {
            if let Some((_, old)) = self.entries.remove(pos) {
                self.total -= old;
            }
        }
        if bytes > self.budget {
            return vec![tenant];
        }
        self.entries.push_back((tenant, bytes));
        self.total += bytes;
        let mut evicted = Vec::new();
        while self.total > self.budget {
            // Over budget implies non-empty; an empty deque just exits.
            let Some((t, b)) = self.entries.pop_front() else {
                break;
            };
            self.total -= b;
            evicted.push(t);
        }
        evicted
    }

    /// Removes `tenant` outright (e.g. deliberate invalidation).
    pub fn remove(&mut self, tenant: TenantId) {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == tenant) {
            if let Some((_, b)) = self.entries.remove(pos) {
                self.total -= b;
            }
        }
    }
}

/// What a host can offer an incoming invocation of a tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LocalityClass {
    /// An unexpired warm VM is idle.
    WarmVm,
    /// Snapshot registered and loading set cache-resident.
    SnapshotHot,
    /// Snapshot registered, cold cache.
    SnapshotCold,
    /// Nothing local; serving means a cold boot.
    Nothing,
}

/// Dynamic serving state of one fleet host.
#[derive(Clone, Debug)]
pub struct HostSim {
    cfg: HostConfig,
    running: u32,
    queue: VecDeque<QueuedJob>,
    /// Idle warm VMs as (tenant, expiry), oldest expiry first.
    warm: Vec<(TenantId, SimTime)>,
    snapshots: StoreRegistry,
    cache: LruBudget,
    /// Branch windows: disk-touching snapshot restores in flight, as
    /// (family, completion time). Only populated when `cfg.branch`.
    restoring: Vec<(u64, SimTime)>,
    /// Invocations served by branching off an in-flight restore.
    branched: u64,
    /// Loading-set bytes those branched serves did not re-read.
    branched_saved_bytes: u64,
    shed: u64,
    busy: SimDuration,
    metrics: Metrics,
    host_label: String,
    /// Shared router index (disabled by default — zero cost); the host
    /// pushes load/warm/snapshot/cache deltas so the router never scans.
    index: RouterIndex,
    host_id: usize,
}

impl HostSim {
    /// Creates an idle host.
    pub fn new(cfg: HostConfig) -> Self {
        HostSim {
            cfg,
            running: 0,
            queue: VecDeque::new(),
            warm: Vec::new(),
            snapshots: StoreRegistry::new(cfg.snapshot_budget_bytes, cfg.store),
            cache: LruBudget::new(cfg.cache_budget_bytes),
            restoring: Vec::new(),
            branched: 0,
            branched_saved_bytes: 0,
            shed: 0,
            busy: SimDuration::ZERO,
            metrics: Metrics::disabled(),
            host_label: String::from("0"),
            index: RouterIndex::disabled(),
            host_id: 0,
        }
    }

    /// Attaches a metrics registry; `index` labels this host's series.
    pub fn set_metrics(&mut self, metrics: Metrics, index: usize) {
        self.metrics = metrics;
        self.host_label = index.to_string();
    }

    /// Attaches a shared [`RouterIndex`]; `host_id` is this host's slot
    /// in it. Attach to a *fresh* host (before it serves traffic): the
    /// index picks up the current load and admission headroom here, and
    /// tracks warm/snapshot/cache state incrementally from then on.
    pub fn attach_index(&mut self, index: RouterIndex, host_id: usize) {
        self.index = index;
        self.host_id = host_id;
        self.sync_index_load();
    }

    /// Pushes the current load signal and admission headroom.
    fn sync_index_load(&mut self) {
        self.index
            .set_host(self.host_id, self.load(), self.can_admit());
    }

    /// Reconciles `tenant`'s snapshot and cache residency after registry
    /// or cache mutations (idempotent, so eviction cascades just re-sync
    /// every affected tenant).
    fn sync_index_tenant(&self, tenant: TenantId) {
        if !self.index.is_enabled() {
            return;
        }
        self.index
            .set_snapshot(self.host_id, tenant, self.snapshots.contains(tenant));
        self.index
            .set_cached(self.host_id, tenant, self.cache.contains(tenant));
    }

    /// The host's configuration.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// Invocations currently executing.
    pub fn running(&self) -> u32 {
        self.running
    }

    /// Requests executing or queued (the router's load signal).
    pub fn load(&self) -> usize {
        self.running as usize + self.queue.len()
    }

    /// True if one more request can be admitted without shedding.
    pub fn can_admit(&self) -> bool {
        (self.running as usize) < self.cfg.slots as usize || self.queue.len() < self.cfg.queue_cap
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Invocations served by branching off an in-flight same-family
    /// restore (always 0 unless [`HostConfig::branch`]).
    pub fn branched_count(&self) -> u64 {
        self.branched
    }

    /// Loading-set bytes branched serves avoided re-reading from disk.
    pub fn branched_saved_bytes(&self) -> u64 {
        self.branched_saved_bytes
    }

    /// Cumulative slot-busy time (for utilization metrics).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// The snapshot registry (inspectable in tests and fleet metrics).
    pub fn snapshots(&self) -> &StoreRegistry {
        &self.snapshots
    }

    /// The loading-set page-cache model (inspectable in tests).
    pub fn cache(&self) -> &LruBudget {
        &self.cache
    }

    /// Idle warm VMs (after expiry purge callers trigger via serving).
    pub fn warm_pool_len(&self) -> usize {
        self.warm.len()
    }

    /// Resident memory, in VM units: running plus idle warm VMs.
    pub fn resident_vms(&self) -> usize {
        self.running as usize + self.warm.len()
    }

    /// What this host can offer `tenant` right now.
    pub fn locality(&self, tenant: TenantId, now: SimTime) -> LocalityClass {
        if self
            .warm
            .iter()
            .any(|&(t, expiry)| t == tenant && expiry >= now)
        {
            LocalityClass::WarmVm
        } else if self.snapshots.contains(tenant) {
            if self.cache.contains(tenant) {
                LocalityClass::SnapshotHot
            } else {
                LocalityClass::SnapshotCold
            }
        } else {
            LocalityClass::Nothing
        }
    }

    /// Admits one request: starts it if a slot is free (returning the
    /// serving mode and service time to schedule completion for), queues
    /// it if the pending queue has room, sheds it otherwise.
    pub fn admit(&mut self, job: QueuedJob, now: SimTime, times: &ServiceTimes) -> Admission {
        if (self.running as usize) < self.cfg.slots as usize {
            let (mode, service) = self.start_service(job.tenant, job.family, now, times);
            Admission::Started { mode, service }
        } else if self.queue.len() < self.cfg.queue_cap {
            self.queue.push_back(job);
            self.sync_index_load();
            self.metrics.gauge_max(
                "fleet_queue_depth_max",
                &[("host", &self.host_label)],
                self.queue.len() as f64,
            );
            Admission::Queued
        } else {
            self.shed += 1;
            self.metrics
                .counter_inc("fleet_shed_total", &[("host", &self.host_label)]);
            Admission::Shed
        }
    }

    /// Records a shed decision made by the router (no admittable host).
    pub fn note_shed(&mut self) {
        self.shed += 1;
        self.metrics
            .counter_inc("fleet_shed_total", &[("host", &self.host_label)]);
    }

    /// Starts serving `tenant` (of snapshot `family`) in a free slot:
    /// picks the serving mode from local state, updates the warm pool /
    /// snapshot registry / cache model, and returns the mode and total
    /// service time.
    pub fn start_service(
        &mut self,
        tenant: TenantId,
        family: u64,
        now: SimTime,
        times: &ServiceTimes,
    ) -> (ServeMode, SimDuration) {
        debug_assert!((self.running as usize) < self.cfg.slots as usize);
        self.purge_expired_warm(now);
        let mode = if let Some(pos) = self.warm.iter().position(|&(t, _)| t == tenant) {
            let (_, expiry) = self.warm.remove(pos);
            self.index.warm_remove(self.host_id, tenant, expiry);
            self.metrics
                .counter_inc("fleet_warm_pool_hits_total", &[("host", &self.host_label)]);
            ServeMode::Warm
        } else if self.snapshots.contains(tenant) {
            self.snapshots.touch(tenant);
            let hot = self.cache.contains(tenant);
            // Restoring (hot or cold) leaves the loading set resident;
            // whoever the insert pushed out loses cache residency.
            let cache_evicted = self.cache.insert(tenant, times.loading_set_bytes);
            for t in cache_evicted {
                self.sync_index_tenant(t);
            }
            self.sync_index_tenant(tenant);
            if hot {
                ServeMode::SnapshotHot
            } else if self.branch_active(family, now) {
                // A same-family restore is already paging this family's
                // shared chunks in; branch a COW sibling off it instead
                // of re-reading the loading set. The sibling pays only
                // the mapping/fault work — the snapshot-hot latency.
                self.branched += 1;
                self.branched_saved_bytes += times.loading_set_bytes;
                self.metrics
                    .counter_inc("fleet_fork_siblings_total", &[("host", &self.host_label)]);
                self.metrics.counter_add(
                    "fleet_fork_saved_bytes_total",
                    &[("host", &self.host_label)],
                    times.loading_set_bytes,
                );
                ServeMode::SnapshotHot
            } else {
                if self.cfg.branch {
                    // Leader: its disk reads are sharable until it
                    // finishes restoring.
                    self.restoring.push((family, now + times.snap_cold));
                }
                ServeMode::SnapshotCold
            }
        } else {
            // Cold boot; the daemon snapshots the booted VM so the next
            // miss on this host restores instead. Evictions cascade: a
            // snapshot pushed out of the registry also loses its cache
            // residency claim.
            let evicted = self.snapshots.insert(tenant, family, times.snapshot_bytes);
            if !evicted.is_empty() {
                self.metrics.counter_add(
                    "fleet_snapshot_evictions_total",
                    &[("host", &self.host_label)],
                    evicted.len() as u64,
                );
            }
            for &t in &evicted {
                self.cache.remove(t);
                self.sync_index_tenant(t);
            }
            let cache_evicted = self.cache.insert(tenant, times.loading_set_bytes);
            for t in cache_evicted {
                self.sync_index_tenant(t);
            }
            self.sync_index_tenant(tenant);
            ServeMode::Cold
        };
        self.metrics
            .counter_inc("fleet_requests_total", &[("mode", mode.label())]);
        let service = times.latency(mode);
        self.running += 1;
        self.busy += service;
        self.sync_index_load();
        (mode, service)
    }

    /// Completes one invocation of `tenant`: frees the slot and parks
    /// the VM in the warm pool under the keep-alive TTL.
    pub fn finish(&mut self, tenant: TenantId, now: SimTime) {
        debug_assert!(self.running > 0);
        self.running -= 1;
        self.purge_expired_warm(now);
        let expiry = now + self.cfg.warm_ttl;
        if self.cfg.warm_pool_cap != 0 {
            if self.warm.len() >= self.cfg.warm_pool_cap {
                // Evict the warm VM closest to expiry.
                let (t, e) = self.warm.remove(0);
                self.index.warm_remove(self.host_id, t, e);
            }
            // Keep the pool sorted by expiry (oldest first).
            let pos = self.warm.partition_point(|&(_, e)| e <= expiry);
            self.warm.insert(pos, (tenant, expiry));
            self.index.warm_add(self.host_id, tenant, expiry);
        }
        self.sync_index_load();
    }

    /// Pops the next queued request, if any (the caller starts it).
    pub fn pop_queued(&mut self) -> Option<QueuedJob> {
        let job = self.queue.pop_front();
        if job.is_some() {
            self.sync_index_load();
        }
        job
    }

    /// True if a disk-touching restore of `family` is still in flight
    /// (branch mode only; expired windows are purged on the way).
    fn branch_active(&mut self, family: u64, now: SimTime) -> bool {
        if !self.cfg.branch {
            return false;
        }
        self.restoring.retain(|&(_, until)| until > now);
        self.restoring.iter().any(|&(f, _)| f == family)
    }

    fn purge_expired_warm(&mut self, now: SimTime) {
        // The pool is sorted by expiry, so the expired VMs are a prefix.
        while self.warm.first().is_some_and(|&(_, e)| e < now) {
            let (t, e) = self.warm.remove(0);
            self.index.warm_remove(self.host_id, t, e);
        }
    }
}

/// Outcome of [`HostSim::admit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free; completion should be scheduled after `service`.
    Started {
        /// How the invocation is being served.
        mode: ServeMode,
        /// Total service (startup + execution) time.
        service: SimDuration,
    },
    /// Parked in the pending queue.
    Queued,
    /// Dropped: queue full.
    Shed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    fn small_host() -> HostSim {
        HostSim::new(HostConfig {
            slots: 2,
            queue_cap: 2,
            warm_ttl: SimDuration::from_secs(60),
            warm_pool_cap: 2,
            snapshot_budget_bytes: 100,
            cache_budget_bytes: 100,
            store: StoreParams::default(),
            branch: false,
        })
    }

    fn times(snapshot_bytes: u64) -> ServiceTimes {
        ServiceTimes {
            snapshot_bytes,
            loading_set_bytes: 10,
            ..ServiceTimes::default()
        }
    }

    #[test]
    fn first_invocation_is_cold_then_snapshot() {
        let mut h = small_host();
        let st = times(40);
        let (mode, _) = h.start_service(0, 0, t(0), &st);
        assert_eq!(mode, ServeMode::Cold);
        h.finish(0, t(100));
        // Warm VM expired (TTL 60s) by t=200; snapshot remains, and the
        // loading set is still cached.
        let (mode, _) = h.start_service(0, 0, t(200), &st);
        assert_eq!(mode, ServeMode::SnapshotHot);
    }

    #[test]
    fn warm_hit_within_ttl() {
        let mut h = small_host();
        let st = times(40);
        h.start_service(0, 0, t(0), &st);
        h.finish(0, t(10));
        assert_eq!(h.locality(0, t(20)), LocalityClass::WarmVm);
        let (mode, d) = h.start_service(0, 0, t(20), &st);
        assert_eq!(mode, ServeMode::Warm);
        assert_eq!(d, st.warm);
    }

    #[test]
    fn admission_queues_then_sheds() {
        let mut h = small_host();
        let st = times(10);
        let job = |tenant: TenantId| QueuedJob {
            tenant,
            family: tenant as u64,
            arrived: t(0),
            ctx: TraceContext::NONE,
        };
        assert!(matches!(
            h.admit(job(0), t(0), &st),
            Admission::Started { .. }
        ));
        assert!(matches!(
            h.admit(job(1), t(0), &st),
            Admission::Started { .. }
        ));
        assert_eq!(h.admit(job(2), t(0), &st), Admission::Queued);
        assert_eq!(h.admit(job(3), t(0), &st), Admission::Queued);
        assert!(!h.can_admit());
        assert_eq!(h.admit(job(4), t(0), &st), Admission::Shed);
        assert_eq!(h.shed_count(), 1);
        assert_eq!(h.load(), 4);
    }

    #[test]
    fn lru_eviction_forces_cold_path() {
        let mut h = small_host(); // snapshot budget 100
        let st = times(40);
        h.start_service(0, 0, t(0), &st); // cold, snapshot 0 resident
        h.finish(0, t(1));
        h.start_service(1, 1, t(100), &st);
        h.finish(1, t(101));
        // Third distinct tenant pushes tenant 0 (LRU) out: 3*40 > 100.
        h.start_service(2, 2, t(200), &st);
        h.finish(2, t(201));
        assert!(!h.snapshots().contains(0), "tenant 0 evicted");
        assert!(h.snapshots().contains(1) && h.snapshots().contains(2));
        // Warm VMs for 1 and 2 are gone after TTL; tenant 0 must cold-boot.
        let (mode, _) = h.start_service(0, 0, t(400), &st);
        assert_eq!(mode, ServeMode::Cold);
    }

    #[test]
    fn oversized_snapshot_rejected_not_wedged() {
        let mut lru = LruBudget::new(100);
        assert_eq!(lru.insert(0, 250), vec![0]);
        assert!(lru.is_empty());
        assert_eq!(lru.total_bytes(), 0);
    }

    #[test]
    fn lru_touch_changes_victim() {
        let mut lru = LruBudget::new(100);
        assert!(lru.insert(0, 40).is_empty());
        assert!(lru.insert(1, 40).is_empty());
        lru.touch(0); // 1 is now LRU
        assert_eq!(lru.insert(2, 40), vec![1]);
        assert!(lru.contains(0) && lru.contains(2) && !lru.contains(1));
    }

    #[test]
    fn warm_pool_cap_and_expiry() {
        // Three slots so all three tenants can run at once; pool cap 2.
        let mut h = HostSim::new(HostConfig {
            slots: 3,
            warm_pool_cap: 2,
            ..small_host().config().to_owned()
        });
        let st = times(10);
        for tenant in 0..3 {
            h.start_service(tenant, tenant as u64, t(0), &st);
        }
        for tenant in 0..3 {
            h.finish(tenant, t(1));
        }
        assert_eq!(h.warm_pool_len(), 2, "pool capped");
        assert_eq!(h.resident_vms(), 2);
        // All warm VMs expire after the 60 s TTL.
        h.start_service(0, 0, t(120), &st);
        assert_eq!(h.warm_pool_len(), 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut h = small_host();
        let st = times(10);
        let (_, d1) = h.start_service(0, 0, t(0), &st);
        let (_, d2) = h.start_service(1, 1, t(0), &st);
        assert_eq!(h.busy_time(), d1 + d2);
    }
}
