//! Store-aware snapshot registry: chunk-level dedup under a byte budget.
//!
//! The whole-file [`crate::hostsim::LruBudget`] registry charges every
//! tenant its full snapshot size, so a 24 GiB budget holds ~12 distinct
//! 2 GiB snapshots and Zipf-tail tenants thrash through cold boots. In
//! reality most of those bytes are identical across snapshots: zero
//! pages, the language runtime, and the function family's shared image.
//! [`StoreRegistry`] keeps the same LRU *policy* surface but accounts
//! residency through a content-addressed [`SnapshotStore`]: each tenant
//! snapshot becomes one accounting layer of chunk references with
//! synthetic provenance ([`snapshot_chunks`]), eviction drops snapshots
//! until the store's *unique* bytes fit the budget, and chunks shared
//! with surviving snapshots stay resident — evicting a tenant only
//! frees what nobody else references.
//!
//! With `dedup: false` every chunk identity is tenant-unique, so unique
//! bytes equal the sum of snapshot sizes and the registry reproduces
//! whole-file LRU accounting byte-for-byte — the ablation baseline.
//!
//! Determinism: chunk identities come from [`ChunkHash::synthetic`]
//! (seeded FNV/splitmix over label words, no OS entropy), and all state
//! lives in order-preserving collections.

use std::collections::VecDeque;

use faasnap_store::{ChunkHash, LayerKind, SnapshotId, SnapshotStore, StoreConfig};
use sim_core::detmap::DetMap;
use sim_core::units::PAGE_SIZE;

use crate::arrival::TenantId;

/// Fleet-level snapshot-store parameters (one per host config).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreParams {
    /// Chunk-level dedup across tenants. `false` makes every chunk
    /// identity tenant-unique, reproducing whole-file LRU accounting.
    pub dedup: bool,
    /// Chunk granularity in bytes (must be nonzero).
    pub chunk_bytes: u64,
}

impl Default for StoreParams {
    fn default() -> Self {
        StoreParams {
            dedup: true,
            // 2 MiB: the huge-page-sized extents the restore path favors.
            chunk_bytes: 2 << 20,
        }
    }
}

/// The synthetic chunk provenance of one tenant snapshot: which of its
/// chunks are zero pages, runtime image shared fleet-wide, function
/// family image shared by same-workload tenants, or tenant-private
/// state. Returns `(slot, identity, bytes)` triples for
/// [`SnapshotStore::put_layer_refs`].
///
/// The partition (of `n = ceil(bytes / chunk_bytes)` chunks) models the
/// dedup structure FaaSnap snapshots exhibit: `n/5` zero chunks (one
/// shared identity), `n/4` runtime chunks (shared by every tenant),
/// `n/2` family chunks (shared by tenants of the same workload), and
/// the remainder tenant-private. Private chunks come last so the
/// partial final chunk — `bytes - (n-1)·chunk_bytes` — is always
/// private; with dedup off the per-chunk bytes therefore sum to exactly
/// `snapshot_bytes`, making the no-dedup registry byte-identical to the
/// whole-file baseline.
pub fn snapshot_chunks(
    params: StoreParams,
    family: u64,
    tenant: TenantId,
    snapshot_bytes: u64,
) -> Vec<(u64, ChunkHash, u64)> {
    assert!(params.chunk_bytes > 0, "chunk_bytes must be nonzero");
    let n = snapshot_bytes.div_ceil(params.chunk_bytes);
    let zero = n / 5;
    let runtime = n / 4;
    let fam = n / 2;
    let mut out = Vec::with_capacity(n as usize);
    for idx in 0..n {
        let bytes = if idx == n - 1 {
            snapshot_bytes - (n - 1) * params.chunk_bytes
        } else {
            params.chunk_bytes
        };
        let hash = if !params.dedup {
            ChunkHash::synthetic(&[4, family, tenant as u64, idx, bytes])
        } else if idx < zero {
            ChunkHash::synthetic(&[0, bytes])
        } else if idx < zero + runtime {
            ChunkHash::synthetic(&[1, idx, bytes])
        } else if idx < zero + runtime + fam {
            ChunkHash::synthetic(&[2, family, idx, bytes])
        } else {
            ChunkHash::synthetic(&[3, family, tenant as u64, idx, bytes])
        };
        out.push((idx, hash, bytes));
    }
    out
}

/// Byte-budgeted LRU registry over store-backed tenant snapshots.
///
/// Mirrors the [`crate::hostsim::LruBudget`] surface (`contains` /
/// `touch` / `insert` → evicted tenants / `remove`) but charges the
/// budget against the store's unique bytes: inserting a snapshot whose
/// chunks are already resident costs almost nothing, and eviction frees
/// only chunks no surviving snapshot references.
#[derive(Clone, Debug)]
pub struct StoreRegistry {
    store: SnapshotStore,
    params: StoreParams,
    budget: u64,
    /// LRU order; front is the next eviction victim.
    lru: VecDeque<TenantId>,
    resident: DetMap<TenantId, SnapshotId>,
}

impl StoreRegistry {
    /// Creates an empty registry with the given unique-byte budget.
    pub fn new(budget: u64, params: StoreParams) -> Self {
        let chunk_pages = (params.chunk_bytes / PAGE_SIZE).max(1);
        StoreRegistry {
            store: SnapshotStore::new(StoreConfig { chunk_pages }),
            params,
            budget,
            lru: VecDeque::new(),
            resident: DetMap::new(),
        }
    }

    /// True if `tenant` has a resident snapshot.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.resident.contains_key(&tenant)
    }

    /// Unique bytes currently resident (what the budget charges).
    pub fn total_bytes(&self) -> u64 {
        self.store.unique_bytes()
    }

    /// Logical (pre-dedup) bytes of all resident snapshots — what the
    /// whole-file registry would have charged.
    pub fn logical_bytes(&self) -> u64 {
        self.store.logical_bytes()
    }

    /// Logical over unique bytes; 0.0 when empty (fresh registries have
    /// no sharing to report, and 0 stays finite in JSON/Prometheus).
    pub fn dedup_ratio(&self) -> f64 {
        self.store.dedup_ratio()
    }

    /// The configured unique-byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// The store parameters this registry was built with.
    pub fn params(&self) -> StoreParams {
        self.params
    }

    /// Number of resident snapshots.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The underlying store (inspectable in tests and metrics).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Marks `tenant` most recently used, without inserting.
    pub fn touch(&mut self, tenant: TenantId) {
        if let Some(pos) = self.lru.iter().position(|t| *t == tenant) {
            self.lru.remove(pos);
            self.lru.push_back(tenant);
        }
    }

    /// Inserts (or refreshes) `tenant`'s snapshot, then evicts from the
    /// LRU end until unique bytes fit the budget. Returns the evicted
    /// tenants. A snapshot whose chunks alone exceed the whole budget is
    /// rejected (returned as if evicted immediately), like the
    /// whole-file registry's oversize rule.
    pub fn insert(&mut self, tenant: TenantId, family: u64, snapshot_bytes: u64) -> Vec<TenantId> {
        self.remove(tenant);
        let chunks = snapshot_chunks(self.params, family, tenant, snapshot_bytes);
        // The snapshot's standalone footprint: distinct identities only.
        let mut solo: DetMap<ChunkHash, u64> = DetMap::new();
        for &(_, hash, bytes) in &chunks {
            solo.or_insert_with(hash, || bytes);
        }
        if solo.values().sum::<u64>() > self.budget {
            return vec![tenant];
        }
        let layer = self.store.put_layer_refs(LayerKind::Base, chunks);
        let id = match self.store.compose_snapshot(&[layer], snapshot_bytes) {
            Ok(id) => id,
            // The layer was allocated one line above; composing over it
            // cannot fail. Refuse residency rather than panic.
            Err(_) => return vec![tenant],
        };
        self.lru.push_back(tenant);
        self.resident.insert(tenant, id);
        let mut evicted = Vec::new();
        // The new snapshot fits alone, so this terminates before
        // reaching it at the back of the queue.
        while self.store.unique_bytes() > self.budget {
            let Some(victim) = self.lru.pop_front() else {
                break;
            };
            if let Some(sid) = self.resident.remove(&victim) {
                let _ = self.store.drop_snapshot(sid);
            }
            evicted.push(victim);
        }
        evicted
    }

    /// Removes `tenant` outright (deliberate invalidation), freeing only
    /// chunks no surviving snapshot references.
    pub fn remove(&mut self, tenant: TenantId) {
        if let Some(id) = self.resident.remove(&tenant) {
            let _ = self.store.drop_snapshot(id);
            if let Some(pos) = self.lru.iter().position(|t| *t == tenant) {
                self.lru.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn params(dedup: bool) -> StoreParams {
        StoreParams {
            dedup,
            chunk_bytes: 2 * MB,
        }
    }

    #[test]
    fn dedup_off_reproduces_whole_file_accounting() {
        let mut reg = StoreRegistry::new(100 * MB, params(false));
        // Odd size: the partial final chunk must be charged exactly.
        assert!(reg.insert(0, 0, 33 * MB + 5).is_empty());
        assert!(reg.insert(1, 0, 40 * MB).is_empty());
        assert_eq!(reg.total_bytes(), 73 * MB + 5);
        assert_eq!(reg.logical_bytes(), 73 * MB + 5);
        assert!((reg.dedup_ratio() - 1.0).abs() < 1e-12);
        // Third snapshot busts the budget; tenant 0 is LRU.
        assert_eq!(reg.insert(2, 0, 40 * MB), vec![0]);
        assert!(!reg.contains(0) && reg.contains(1) && reg.contains(2));
        assert_eq!(reg.total_bytes(), 80 * MB);
    }

    #[test]
    fn dedup_shares_family_and_runtime_chunks() {
        let mut reg = StoreRegistry::new(1 << 40, params(true));
        assert!(reg.insert(0, 7, 40 * MB).is_empty());
        let one = reg.total_bytes();
        assert!(reg.insert(1, 7, 40 * MB).is_empty());
        let two = reg.total_bytes();
        // Same family: only the private ~5% of chunks is new.
        assert!(
            two - one < (40 * MB) / 10,
            "second same-family snapshot added {} bytes",
            two - one
        );
        assert!(reg.dedup_ratio() > 1.5, "ratio {}", reg.dedup_ratio());
        // A different family still shares zero + runtime chunks.
        assert!(reg.insert(2, 8, 40 * MB).is_empty());
        let three = reg.total_bytes();
        assert!(
            three - two < 40 * MB,
            "cross-family snapshot added {} bytes",
            three - two
        );
        reg.store().debug_validate().expect("refcounts conserved");
    }

    #[test]
    fn eviction_frees_only_unreferenced_chunks() {
        let mut reg = StoreRegistry::new(1 << 40, params(true));
        reg.insert(0, 7, 40 * MB);
        reg.insert(1, 7, 40 * MB);
        let both = reg.total_bytes();
        reg.remove(0);
        let after = reg.total_bytes();
        // Shared zero/runtime/family chunks survive with tenant 1; only
        // tenant 0's private chunks are freed.
        assert!(after > both / 2, "eviction dropped shared chunks");
        assert!(after < both, "eviction freed nothing");
        reg.store().debug_validate().expect("refcounts conserved");
    }

    #[test]
    fn oversized_snapshot_rejected_not_wedged() {
        let mut reg = StoreRegistry::new(10 * MB, params(false));
        assert_eq!(reg.insert(0, 0, 25 * MB), vec![0]);
        assert!(reg.is_empty());
        assert_eq!(reg.total_bytes(), 0);
    }

    #[test]
    fn touch_changes_victim() {
        let mut reg = StoreRegistry::new(100 * MB, params(false));
        assert!(reg.insert(0, 0, 40 * MB).is_empty());
        assert!(reg.insert(1, 0, 40 * MB).is_empty());
        reg.touch(0); // 1 is now LRU
        assert_eq!(reg.insert(2, 0, 40 * MB), vec![1]);
        assert!(reg.contains(0) && reg.contains(2) && !reg.contains(1));
    }

    #[test]
    fn dedup_fits_many_more_snapshots_than_whole_file() {
        // Same budget, same Zipf-ish family mix: count resident
        // snapshots when inserts stop evicting.
        let budget = 200 * MB;
        let fit = |dedup: bool| {
            let mut reg = StoreRegistry::new(budget, params(dedup));
            let mut resident = 0usize;
            for tenant in 0..64 {
                let family = (tenant % 4) as u64;
                reg.insert(tenant, family, 40 * MB);
                resident = resident.max(reg.len());
            }
            resident
        };
        let whole = fit(false);
        let chunked = fit(true);
        assert!(
            chunked >= 5 * whole,
            "dedup fits {chunked}, whole-file fits {whole}"
        );
    }

    #[test]
    fn registry_state_is_deterministic() {
        let run = || {
            let mut reg = StoreRegistry::new(150 * MB, params(true));
            let mut log = Vec::new();
            for step in 0..40u64 {
                let tenant = (step * 7 % 11) as TenantId;
                let family = tenant as u64 % 3;
                log.push(reg.insert(tenant, family, (20 + step % 5) * MB));
                if step % 9 == 0 {
                    reg.remove((step % 11) as TenantId);
                }
            }
            (log, reg.total_bytes(), reg.logical_bytes(), reg.len())
        };
        assert_eq!(run(), run());
    }
}
