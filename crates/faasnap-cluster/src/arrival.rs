//! Open-loop arrival generation: who invokes what, when.
//!
//! Serverless fleet traces (e.g. the Azure Functions trace used by
//! "Serverless in the Wild" and the FaaS snapshot literature) share three
//! properties this module reproduces deterministically: per-function
//! arrivals are roughly Poisson at short timescales, some functions are
//! bursty on/off, and popularity across functions is heavily skewed
//! (a Zipf-like head of hot functions and a long cold tail).

use sim_core::rng::Prng;
use sim_core::time::{SimDuration, SimTime};

/// Index of a tenant function in a [`WorkloadSpec`].
pub type TenantId = usize;

/// One invocation request entering the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// When the request reaches the router.
    pub time: SimTime,
    /// Which tenant function it invokes.
    pub tenant: TenantId,
}

/// How one tenant's invocations arrive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// Poisson process with the given mean rate.
    Poisson {
        /// Mean invocations per second.
        rate_per_s: f64,
    },
    /// On/off bursts: exponentially distributed on and off phases;
    /// Poisson arrivals at `rate_per_s` during on phases, silence during
    /// off phases.
    OnOff {
        /// Mean on-phase length in seconds.
        on_s: f64,
        /// Mean off-phase length in seconds.
        off_s: f64,
        /// Mean rate while on, invocations per second.
        rate_per_s: f64,
    },
}

/// One tenant function in the fleet workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Display name, e.g. `"t03-json"`.
    pub name: String,
    /// Which base workload (Table 2 function) this tenant runs.
    pub workload: String,
    /// Arrival process.
    pub pattern: ArrivalPattern,
}

/// The full fleet workload: a list of tenants.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadSpec {
    /// Tenant functions, indexed by [`TenantId`].
    pub tenants: Vec<TenantSpec>,
}

impl WorkloadSpec {
    /// Builds a Zipf-skewed multi-tenant mix: `tenants` tenant functions
    /// whose mean rates follow a Zipf(`skew`) popularity curve scaled so
    /// the whole fleet averages `total_rate_per_s`. Tenants cycle through
    /// `workloads` round-robin; every fourth tenant is made bursty
    /// (on/off) instead of Poisson, mirroring the bursty minority in
    /// production traces.
    pub fn zipf(tenants: usize, workloads: &[&str], total_rate_per_s: f64, skew: f64) -> Self {
        assert!(tenants > 0 && !workloads.is_empty());
        let weights = zipf_weights(tenants, skew);
        let spec = WorkloadSpec {
            tenants: (0..tenants)
                .map(|i| {
                    let workload = workloads[i % workloads.len()].to_string();
                    let rate = total_rate_per_s * weights[i];
                    let pattern = if i % 4 == 3 {
                        // Same mean rate, concentrated into on-phases.
                        ArrivalPattern::OnOff {
                            on_s: 20.0,
                            off_s: 60.0,
                            rate_per_s: rate * 4.0,
                        }
                    } else {
                        ArrivalPattern::Poisson { rate_per_s: rate }
                    };
                    TenantSpec {
                        name: format!("t{i:02}-{workload}"),
                        workload,
                        pattern,
                    }
                })
                .collect(),
        };
        spec
    }

    /// Generates the merged, time-sorted arrival stream over `horizon`.
    /// Each tenant draws from an independent sub-stream forked off
    /// `seed`, so adding a tenant does not perturb the others.
    pub fn generate(&self, seed: u64, horizon: SimDuration) -> Vec<Arrival> {
        let mut base = Prng::new(seed);
        let mut all = Vec::new();
        for (tenant, spec) in self.tenants.iter().enumerate() {
            let mut rng = base.fork(tenant as u64 + 1);
            let times = match spec.pattern {
                ArrivalPattern::Poisson { rate_per_s } => {
                    poisson_arrivals(&mut rng, rate_per_s, horizon)
                }
                ArrivalPattern::OnOff {
                    on_s,
                    off_s,
                    rate_per_s,
                } => on_off_arrivals(&mut rng, on_s, off_s, rate_per_s, horizon),
            };
            all.extend(times.into_iter().map(|time| Arrival { time, tenant }));
        }
        // Stable sort: simultaneous arrivals keep tenant order, so the
        // stream is a pure function of (spec, seed).
        all.sort_by_key(|a| a.time);
        all
    }
}

/// Zipf popularity weights for ranks `1..=n`, normalized to sum to 1.
pub fn zipf_weights(n: usize, skew: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(skew)).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// Exponential inter-arrival draw with the given mean (seconds).
fn exp_s(rng: &mut Prng, mean_s: f64) -> f64 {
    // Inverse-CDF; 1 - f64() is in (0, 1], so ln is finite.
    -mean_s * (1.0 - rng.f64()).ln()
}

/// Poisson arrival instants in `[0, horizon)`.
pub fn poisson_arrivals(rng: &mut Prng, rate_per_s: f64, horizon: SimDuration) -> Vec<SimTime> {
    let mut out = Vec::new();
    if rate_per_s <= 0.0 {
        return out;
    }
    let mut t = 0.0;
    let end = horizon.as_secs_f64();
    loop {
        t += exp_s(rng, 1.0 / rate_per_s);
        if t >= end {
            return out;
        }
        out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
    }
}

/// On/off (interrupted Poisson) arrival instants in `[0, horizon)`.
pub fn on_off_arrivals(
    rng: &mut Prng,
    on_s: f64,
    off_s: f64,
    rate_per_s: f64,
    horizon: SimDuration,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    if rate_per_s <= 0.0 || on_s <= 0.0 {
        return out;
    }
    let end = horizon.as_secs_f64();
    let mut t = 0.0;
    loop {
        // On phase.
        let on_end = t + exp_s(rng, on_s);
        loop {
            t += exp_s(rng, 1.0 / rate_per_s);
            if t >= on_end.min(end) {
                break;
            }
            out.push(SimTime::ZERO + SimDuration::from_secs_f64(t));
        }
        t = on_end;
        if t >= end {
            return out;
        }
        // Off phase.
        t += exp_s(rng, off_s);
        if t >= end {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_normalized_and_skewed() {
        let w = zipf_weights(20, 1.1);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w[0] > w[1] && w[1] > w[10]);
        assert!(w[0] > 5.0 * w[19], "head much hotter than tail");
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let mut rng = Prng::new(7);
        let horizon = SimDuration::from_secs(2000);
        let times = poisson_arrivals(&mut rng, 5.0, horizon);
        let rate = times.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.5, "empirical rate {rate}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn on_off_is_sparser_than_rate_while_on() {
        let mut rng = Prng::new(9);
        let horizon = SimDuration::from_secs(5000);
        let times = on_off_arrivals(&mut rng, 10.0, 30.0, 8.0, horizon);
        let mean_rate = times.len() as f64 / 5000.0;
        // Duty cycle 10/(10+30) = 0.25 → mean rate ≈ 2/s.
        assert!(mean_rate < 4.0 && mean_rate > 0.8, "mean rate {mean_rate}");
    }

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let spec = WorkloadSpec::zipf(12, &["hello-world", "json"], 20.0, 1.1);
        let a = spec.generate(42, SimDuration::from_secs(120));
        let b = spec.generate(42, SimDuration::from_secs(120));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!a.is_empty());
        let c = spec.generate(43, SimDuration::from_secs(120));
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn zipf_spec_mixes_patterns_and_workloads() {
        let spec = WorkloadSpec::zipf(8, &["hello-world", "json"], 10.0, 1.0);
        assert_eq!(spec.tenants.len(), 8);
        assert!(spec
            .tenants
            .iter()
            .any(|t| matches!(t.pattern, ArrivalPattern::OnOff { .. })));
        assert!(spec
            .tenants
            .iter()
            .any(|t| matches!(t.pattern, ArrivalPattern::Poisson { .. })));
        assert_eq!(spec.tenants[0].workload, "hello-world");
        assert_eq!(spec.tenants[1].workload, "json");
    }
}
