//! Property tests for the per-host snapshot LRU: the registry never
//! exceeds its byte budget under any operation sequence, and a tenant
//! whose snapshot was evicted is served cold on its next invocation.

use faasnap_cluster::hostsim::{HostConfig, HostSim, LruBudget, ServeMode, ServiceTimes};
use faasnap_cluster::store::StoreParams;
use proptest::prelude::*;
use sim_core::time::{SimDuration, SimTime};

#[derive(Clone, Debug)]
enum Op {
    Insert(usize, u64),
    Touch(usize),
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 1u64..400).prop_map(|(t, b)| Op::Insert(t, b)),
        (0usize..16).prop_map(Op::Touch),
        (0usize..16).prop_map(Op::Remove),
    ]
}

proptest! {
    #[test]
    fn budget_never_exceeded(
        budget in 50u64..600,
        ops in proptest::collection::vec(op_strategy(), 0..120),
    ) {
        let mut lru = LruBudget::new(budget);
        for op in &ops {
            match *op {
                Op::Insert(t, b) => {
                    for evicted in lru.insert(t, b) {
                        // An evicted tenant is gone immediately.
                        prop_assert!(!lru.contains(evicted), "evicted {evicted} still resident");
                    }
                }
                Op::Touch(t) => lru.touch(t),
                Op::Remove(t) => lru.remove(t),
            }
            prop_assert!(
                lru.total_bytes() <= budget,
                "resident {} bytes over budget {} after {op:?}",
                lru.total_bytes(),
                budget
            );
        }
    }

    #[test]
    fn eviction_forces_next_invocation_cold(
        snapshot_budget in 1u64..6,
        tenant_seq in proptest::collection::vec(0usize..8, 1..80),
    ) {
        // Budget counted in whole snapshots: each snapshot is 1 byte, so
        // at most `snapshot_budget` tenants stay registered.
        let mut h = HostSim::new(HostConfig {
            slots: 1,
            queue_cap: 0,
            // No warm reuse: every serve decides purely on the registry.
            warm_ttl: SimDuration::ZERO,
            warm_pool_cap: 0,
            snapshot_budget_bytes: snapshot_budget,
            cache_budget_bytes: snapshot_budget,
            store: StoreParams::default(),
            branch: false,
        });
        let st = ServiceTimes { snapshot_bytes: 1, loading_set_bytes: 1, ..ServiceTimes::default() };
        let mut now = SimTime::ZERO;
        for &tenant in &tenant_seq {
            let registered = h.snapshots().contains(tenant);
            // Tenant-as-family: every snapshot is one private chunk, so
            // store accounting degenerates to the whole-file model.
            let (mode, service) = h.start_service(tenant, tenant as u64, now, &st);
            if registered {
                prop_assert!(
                    matches!(mode, ServeMode::SnapshotHot | ServeMode::SnapshotCold),
                    "registered tenant {tenant} served {mode:?}"
                );
            } else {
                // Not registered — either never seen or evicted — must be
                // a full cold boot.
                prop_assert_eq!(mode, ServeMode::Cold, "unregistered tenant {} not cold", tenant);
            }
            now += service;
            h.finish(tenant, now);
            now += SimDuration::from_millis(1);
            prop_assert!(h.snapshots().total_bytes() <= snapshot_budget);
            prop_assert!(h.snapshots().contains(tenant), "just-served tenant registered");
        }
    }
}
