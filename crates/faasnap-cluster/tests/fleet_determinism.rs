//! Fleet determinism: the same seed must produce byte-identical
//! serialized cluster metrics, for every routing policy, through the
//! public crate API (the same path `faasnapd cluster` uses).

use faasnap_cluster::{run_cluster, ClusterConfig, RoutePolicy};
use sim_core::time::SimDuration;

fn metrics_json(policy: RoutePolicy, seed: u64) -> String {
    let mut cfg = ClusterConfig::demo(8, policy, seed);
    cfg.horizon = SimDuration::from_secs(60);
    run_cluster(&cfg).to_json().to_string_pretty()
}

#[test]
fn same_seed_byte_identical_for_every_policy() {
    for policy in [
        RoutePolicy::Random,
        RoutePolicy::LeastLoaded,
        RoutePolicy::SnapshotLocality,
    ] {
        let a = metrics_json(policy, 42);
        let b = metrics_json(policy, 42);
        assert_eq!(a, b, "{} diverged across identical runs", policy.label());
        assert!(a.contains("\"p99_ms\""), "metrics JSON carries SLO fields");
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        metrics_json(RoutePolicy::SnapshotLocality, 42),
        metrics_json(RoutePolicy::SnapshotLocality, 43),
    );
}

#[test]
fn json_reparses_and_reports_policy() {
    let doc = metrics_json(RoutePolicy::SnapshotLocality, 42);
    let v = sim_core::json::parse(&doc).expect("valid JSON");
    assert_eq!(v.get("policy").unwrap().as_str(), Some("snapshot-locality"));
    assert_eq!(v.get("hosts").unwrap().as_u64(), Some(8));
    let fleet = v.get("fleet").unwrap();
    let served = fleet.get("served").unwrap().as_u64().unwrap();
    assert!(served > 0, "fleet served invocations");
}
