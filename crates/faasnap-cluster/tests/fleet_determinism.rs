//! Fleet determinism: the same seed must produce byte-identical
//! serialized cluster metrics, for every routing policy, through the
//! public crate API (the same path `faasnapd cluster` uses).

use faasnap_cluster::{run_cluster, ClusterConfig, FleetFaultProfile, RoutePolicy};
use sim_core::time::SimDuration;

fn metrics_json(policy: RoutePolicy, seed: u64) -> String {
    let mut cfg = ClusterConfig::demo(8, policy, seed);
    cfg.horizon = SimDuration::from_secs(60);
    run_cluster(&cfg).to_json().to_string_pretty()
}

fn faulted_metrics_json(policy: RoutePolicy, seed: u64, profile: FleetFaultProfile) -> String {
    let mut cfg = ClusterConfig::demo(8, policy, seed);
    cfg.horizon = SimDuration::from_secs(60);
    cfg.fault_profile = Some(profile);
    run_cluster(&cfg).to_json().to_string_pretty()
}

#[test]
fn same_seed_byte_identical_for_every_policy() {
    for policy in [
        RoutePolicy::Random,
        RoutePolicy::LeastLoaded,
        RoutePolicy::SnapshotLocality,
    ] {
        let a = metrics_json(policy, 42);
        let b = metrics_json(policy, 42);
        assert_eq!(a, b, "{} diverged across identical runs", policy.label());
        assert!(a.contains("\"p99_ms\""), "metrics JSON carries SLO fields");
    }
}

#[test]
fn different_seeds_differ() {
    assert_ne!(
        metrics_json(RoutePolicy::SnapshotLocality, 42),
        metrics_json(RoutePolicy::SnapshotLocality, 43),
    );
}

#[test]
fn same_seed_and_fault_profile_byte_identical() {
    let profile = FleetFaultProfile::mild();
    for policy in [
        RoutePolicy::Random,
        RoutePolicy::LeastLoaded,
        RoutePolicy::SnapshotLocality,
    ] {
        let a = faulted_metrics_json(policy, 42, profile);
        let b = faulted_metrics_json(policy, 42, profile);
        assert_eq!(
            a,
            b,
            "{} diverged across identical faulted runs",
            policy.label()
        );
    }
}

#[test]
fn fault_profile_counts_faults_without_perturbing_the_workload() {
    let heavy = FleetFaultProfile {
        storage_fault_prob: 1.0,
        retry_penalty: SimDuration::from_millis(5),
        degrade_prob: 1.0,
        degrade_penalty: SimDuration::from_millis(50),
    };
    let clean = metrics_json(RoutePolicy::SnapshotLocality, 42);
    let faulted = faulted_metrics_json(RoutePolicy::SnapshotLocality, 42, heavy);
    let cv = sim_core::json::parse(&clean).expect("valid JSON");
    let fv = sim_core::json::parse(&faulted).expect("valid JSON");
    let fleet = |v: &sim_core::json::Value, key: &str| {
        v.get("fleet").unwrap().get(key).unwrap().as_u64().unwrap()
    };
    // The fault stream is independent of arrivals and routing: demand
    // is identical, only service times (and thus latency) shift.
    assert_eq!(
        fleet(&cv, "served") + fleet(&cv, "shed"),
        fleet(&fv, "served") + fleet(&fv, "shed"),
        "fault profile must not change the arrival stream"
    );
    assert_eq!(fleet(&cv, "storage_faults"), 0);
    assert_eq!(fleet(&cv, "degraded_restores"), 0);
    let faults = fleet(&fv, "storage_faults");
    assert!(faults > 0, "prob-1.0 profile must fault every cold restore");
    assert_eq!(
        fleet(&fv, "degraded_restores"),
        faults,
        "degrade_prob 1.0 degrades every faulted restore"
    );
    let p99 = |v: &sim_core::json::Value| {
        v.get("fleet")
            .unwrap()
            .get("p99_ms")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    assert!(
        p99(&fv) >= p99(&cv),
        "fault penalties cannot make the tail faster"
    );
}

#[test]
fn json_reparses_and_reports_policy() {
    let doc = metrics_json(RoutePolicy::SnapshotLocality, 42);
    let v = sim_core::json::parse(&doc).expect("valid JSON");
    assert_eq!(v.get("policy").unwrap().as_str(), Some("snapshot-locality"));
    assert_eq!(v.get("hosts").unwrap().as_u64(), Some(8));
    let fleet = v.get("fleet").unwrap();
    let served = fleet.get("served").unwrap().as_u64().unwrap();
    assert!(served > 0, "fleet served invocations");
}
