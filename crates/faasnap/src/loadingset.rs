//! The loading set and its compact file layout.
//!
//! §4.6: "We define the loading set as the working set pages excluding the
//! zero pages." Adjacent loading-set regions separated by at most 32
//! non-loading-set pages are merged, "a value that reduces the number of
//! regions to small enough while not adding too many unneeded pages."
//!
//! §4.7: "FaaSnap sorts the loading set regions first by their group
//! numbers, then by their addresses" into a compact loading-set file,
//! which the daemon loader then reads strictly sequentially.

use std::collections::BTreeSet;

use sim_mm::addr::{PageNum, PageRange};
use sim_vm::guest_memory::GuestMemory;

use crate::wset::WorkingSet;

/// The default region-merge gap threshold in pages (§4.6).
pub const MERGE_GAP: u64 = 32;

/// One loading-set region: a guest extent backed by a compact file extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsRegion {
    /// Guest pages covered.
    pub guest: PageRange,
    /// First page of the region within the loading-set file.
    pub file_start: u64,
    /// Working-set group (lowest group of any page in the region).
    pub group: u32,
}

/// A built loading set: regions in (group, address) order with assigned
/// file offsets.
#[derive(Clone, Debug, Default)]
pub struct LoadingSet {
    regions: Vec<LsRegion>,
    file_pages: u64,
    /// Loading-set pages before merging (for the §4.6 accounting).
    core_pages: u64,
    /// Regions before merging.
    unmerged_regions: u64,
}

impl LoadingSet {
    /// Builds the loading set from the recorded working set and the
    /// post-invocation guest memory (for the zero/non-zero scan), merging
    /// regions with gaps up to `merge_gap`.
    pub fn build(ws: &WorkingSet, memory: &GuestMemory, merge_gap: u64) -> LoadingSet {
        // 1. Loading set pages = working set ∩ non-zero, with the group
        //    each page received in scan order.
        let mut pages: Vec<(PageNum, u32)> = ws
            .pages_with_groups()
            .filter(|(p, _)| memory.is_nonzero(*p))
            .collect();
        let core_pages = pages.len() as u64;
        // 2. Regions in address order; region group = min page group.
        pages.sort_unstable_by_key(|(p, _)| *p);
        let mut regions: Vec<(PageRange, u32)> = Vec::new();
        for (p, g) in pages {
            match regions.last_mut() {
                Some((r, rg)) if p == r.end => {
                    r.end += 1;
                    *rg = (*rg).min(g);
                }
                // Duplicate page (already covered): just fold its group in.
                Some((r, rg)) if p < r.end => {
                    *rg = (*rg).min(g);
                }
                _ => regions.push((PageRange::with_len(p, 1), g)),
            }
        }
        let unmerged_regions = regions.len() as u64;
        // 3. Merge adjacent regions separated by at most `merge_gap` pages
        //    (the gap pages are included in the region and thus in the
        //    file — the "small amount of additional data", §4.6).
        let mut merged: Vec<(PageRange, u32)> = Vec::new();
        for (r, g) in regions {
            match merged.last_mut() {
                Some((m, mg)) if r.start - m.end <= merge_gap => {
                    m.end = r.end;
                    *mg = (*mg).min(g);
                }
                _ => merged.push((r, g)),
            }
        }
        // 4. Sort by (group, address) and lay out the file.
        merged.sort_by_key(|(r, g)| (*g, r.start));
        let mut file_cursor = 0;
        let regions: Vec<LsRegion> = merged
            .into_iter()
            .map(|(guest, group)| {
                let region = LsRegion {
                    guest,
                    file_start: file_cursor,
                    group,
                };
                file_cursor += guest.len();
                region
            })
            .collect();
        LoadingSet {
            regions,
            file_pages: file_cursor,
            core_pages,
            unmerged_regions,
        }
    }

    /// Regions in (group, address) order — the file layout order.
    pub fn regions(&self) -> &[LsRegion] {
        &self.regions
    }

    /// Number of (merged) regions — the number of `mmap` calls the VMM
    /// must make for the loading set.
    pub fn region_count(&self) -> u64 {
        self.regions.len() as u64
    }

    /// Regions before merging.
    pub fn unmerged_region_count(&self) -> u64 {
        self.unmerged_regions
    }

    /// Total pages in the loading-set file (including merged gap pages).
    pub fn file_pages(&self) -> u64 {
        self.file_pages
    }

    /// Loading-set pages proper (before gap inclusion).
    pub fn core_pages(&self) -> u64 {
        self.core_pages
    }

    /// Fraction of extra data added by merging (0.05 = +5 %).
    pub fn merge_overhead(&self) -> f64 {
        if self.core_pages == 0 {
            0.0
        } else {
            (self.file_pages as f64 - self.core_pages as f64) / self.core_pages as f64
        }
    }

    /// True if `page` is covered by some region.
    pub fn covers(&self, page: PageNum) -> bool {
        self.regions.iter().any(|r| r.guest.contains(page))
    }

    /// The set of all guest pages covered (including merged gaps),
    /// ordered so iteration is deterministic.
    pub fn covered_pages(&self) -> BTreeSet<PageNum> {
        self.regions.iter().flat_map(|r| r.guest.iter()).collect()
    }

    /// The file page backing a guest page, if covered.
    pub fn file_page_of(&self, page: PageNum) -> Option<u64> {
        self.regions
            .iter()
            .find(|r| r.guest.contains(page))
            .map(|r| r.file_start + (page - r.guest.start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a working set + memory where `nonzero` pages hold data.
    fn setup(ws_pages: &[u64], nonzero: &[u64], group_size: u64) -> (WorkingSet, GuestMemory) {
        let mut ws = WorkingSet::with_group_size(group_size);
        ws.extend(ws_pages);
        let mut mem = GuestMemory::new(100_000);
        for &p in nonzero {
            mem.write(p, p + 1);
        }
        (ws, mem)
    }

    #[test]
    fn zero_pages_excluded() {
        let (ws, mem) = setup(&[1, 2, 3, 4], &[1, 3], 1024);
        let ls = LoadingSet::build(&ws, &mem, 0);
        assert_eq!(ls.core_pages(), 2);
        assert!(ls.covers(1) && ls.covers(3));
        assert!(!ls.covers(2) && !ls.covers(4));
    }

    #[test]
    fn contiguous_pages_form_one_region() {
        let (ws, mem) = setup(&[10, 11, 12], &[10, 11, 12], 1024);
        let ls = LoadingSet::build(&ws, &mem, 0);
        assert_eq!(ls.region_count(), 1);
        assert_eq!(ls.regions()[0].guest, PageRange::new(10, 13));
        assert_eq!(ls.file_pages(), 3);
    }

    #[test]
    fn merge_respects_gap_threshold() {
        // Regions [0,2) and [5,7): gap of 3.
        let (ws, mem) = setup(&[0, 1, 5, 6], &[0, 1, 5, 6], 1024);
        let tight = LoadingSet::build(&ws, &mem, 2);
        assert_eq!(tight.region_count(), 2, "gap 3 > threshold 2");
        let loose = LoadingSet::build(&ws, &mem, 3);
        assert_eq!(loose.region_count(), 1, "gap 3 <= threshold 3");
        assert_eq!(loose.regions()[0].guest, PageRange::new(0, 7));
        assert_eq!(loose.file_pages(), 7, "gap pages included in file");
        assert_eq!(loose.core_pages(), 4);
        assert!((loose.merge_overhead() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn regions_sorted_by_group_then_address() {
        // Group size 2: pages [50, 51] are group 0, [10, 11] group 1.
        let (ws, mem) = setup(&[50, 51, 10, 11], &[50, 51, 10, 11], 2);
        let ls = LoadingSet::build(&ws, &mem, 0);
        assert_eq!(ls.region_count(), 2);
        assert_eq!(ls.regions()[0].guest.start, 50, "group 0 first in file");
        assert_eq!(ls.regions()[0].file_start, 0);
        assert_eq!(ls.regions()[1].guest.start, 10);
        assert_eq!(ls.regions()[1].file_start, 2);
    }

    #[test]
    fn region_group_is_min_of_pages() {
        // Group size 2: page 20 in group 0 (idx 1), page 21 in group 1 (idx 2).
        let (ws, mem) = setup(&[5, 20, 21], &[5, 20, 21], 2);
        let ls = LoadingSet::build(&ws, &mem, 0);
        let r20 = ls.regions().iter().find(|r| r.guest.contains(20)).unwrap();
        assert_eq!(r20.group, 0, "region takes the lowest page group");
    }

    #[test]
    fn file_page_translation() {
        let (ws, mem) = setup(&[10, 11, 40], &[10, 11, 40], 1024);
        let ls = LoadingSet::build(&ws, &mem, 0);
        assert_eq!(ls.file_page_of(10), Some(0));
        assert_eq!(ls.file_page_of(11), Some(1));
        assert_eq!(ls.file_page_of(40), Some(2));
        assert_eq!(ls.file_page_of(12), None);
    }

    #[test]
    fn merged_gap_pages_are_covered_and_backed() {
        let (ws, mem) = setup(&[0, 1, 4, 5], &[0, 1, 4, 5], MERGE_GAP);
        let ls = LoadingSet::build(&ws, &mem, MERGE_GAP);
        assert_eq!(ls.region_count(), 1);
        // Gap pages 2,3 are covered and mapped into the file.
        assert_eq!(ls.file_page_of(2), Some(2));
        assert_eq!(ls.file_page_of(3), Some(3));
        assert_eq!(ls.covered_pages().len(), 6);
    }

    #[test]
    fn empty_working_set() {
        let (ws, mem) = setup(&[], &[], 1024);
        let ls = LoadingSet::build(&ws, &mem, MERGE_GAP);
        assert_eq!(ls.region_count(), 0);
        assert_eq!(ls.file_pages(), 0);
        assert_eq!(ls.merge_overhead(), 0.0);
    }

    #[test]
    fn duplicate_ws_pages_tolerated() {
        // mincore scans never report a page twice, but the builder should
        // not break if a caller feeds duplicates.
        let mut ws = WorkingSet::with_group_size(1024);
        ws.extend(&[7, 7, 8]);
        let mut mem = GuestMemory::new(100);
        mem.write(7, 1);
        mem.write(8, 1);
        let ls = LoadingSet::build(&ws, &mem, 0);
        // Duplicate collapses into the run.
        assert_eq!(ls.region_count(), 1);
    }
}
