//! The REAP baseline (§2.5, integrated as in §5).
//!
//! REAP's restore sequence:
//!
//! 1. register the guest memory region with `userfaultfd`;
//! 2. **blocking fetch**: read the compact working-set file in one
//!    sequential pass (bypassing the page cache — "REAP bypasses the page
//!    cache to maximize read bandwidth", §6.6) and install every page via
//!    `UFFDIO_COPY` *before* the function starts — the long gray setup
//!    bars of Figure 1;
//! 3. during execution, faults on installed pages are fast (< 4 µs, host
//!    PTE present); faults **outside** the working set go to the
//!    user-space handler, which reads the page from the memory file and
//!    installs it — serialized, with wake/copy/context-switch overheads
//!    (the 8–64 µs and > 128 µs populations of Figure 2).
//!
//! [`ReapHandler`] is the passive timing model of that single-threaded
//! handler; the DES runtime routes `FaultOutcome::Userfault` events to it.

use sim_core::rng::Prng;
use sim_core::time::{SimDuration, SimTime};
use sim_mm::costs::FaultCosts;

/// Cost of one bulk `UFFDIO_COPY` page install during the working-set
/// fetch (amortized; cheaper than per-miss installs).
pub const BULK_COPY_US_PER_PAGE: f64 = 0.45;

/// The serialized user-level fault handler.
#[derive(Clone, Debug)]
pub struct ReapHandler {
    /// When the handler thread frees up.
    busy_until: SimTime,
    rng: Prng,
    /// Faults served at user level.
    misses: u64,
    /// Total time faulting vCPUs spent waiting on the handler.
    total_wait: SimDuration,
}

/// The handler's verdict for one user-level fault.
#[derive(Clone, Copy, Debug)]
pub struct ReapService {
    /// When the guest resumes.
    pub resume_at: SimTime,
    /// Whether the memory-file page still needs a disk read (the runtime
    /// submits it and calls [`ReapHandler::complete_with_io`] instead).
    pub needs_io: bool,
}

impl ReapHandler {
    /// Creates an idle handler.
    pub fn new(seed: u64) -> Self {
        ReapHandler {
            busy_until: SimTime::ZERO,
            rng: Prng::new(seed),
            misses: 0,
            total_wait: SimDuration::ZERO,
        }
    }

    /// Computes the blocking working-set fetch time: one sequential read
    /// of `ws_pages` pages at `read_bandwidth` plus the bulk installs.
    pub fn fetch_time(ws_pages: u64, read: SimDuration) -> SimDuration {
        read + SimDuration::from_micros_f64(ws_pages as f64 * BULK_COPY_US_PER_PAGE)
    }

    /// Serves a fault that arrived at `now` and whose memory-file page is
    /// already in the page cache: wake + read from cache + copy + resume.
    pub fn serve_cached(&mut self, now: SimTime, costs: &FaultCosts) -> ReapService {
        let start = now.max(self.busy_until);
        let service = costs.uffd_wake(&mut self.rng)
            + costs.minor_fault(&mut self.rng)
            + costs.uffd_copy(&mut self.rng)
            + costs.uffd_resume(&mut self.rng);
        let resume_at = start + service;
        self.busy_until = resume_at;
        self.misses += 1;
        self.total_wait += resume_at - now;
        ReapService {
            resume_at,
            needs_io: false,
        }
    }

    /// Begins serving a fault whose page needs a disk read. The handler is
    /// busy from `now` (wake + read issue); the runtime submits the I/O and
    /// finishes with [`ReapHandler::complete_with_io`].
    pub fn serve_uncached(&mut self, now: SimTime, costs: &FaultCosts) -> SimTime {
        let start = now.max(self.busy_until);
        let issue_at = start + costs.uffd_wake(&mut self.rng);
        // Handler blocks on the read; busy_until is extended by
        // complete_with_io once the completion time is known.
        self.busy_until = issue_at;
        issue_at
    }

    /// Completes an uncached service: the disk read finished at `io_done`;
    /// copy + resume follow. Returns when the guest resumes.
    pub fn complete_with_io(
        &mut self,
        fault_arrival: SimTime,
        io_done: SimTime,
        costs: &FaultCosts,
    ) -> SimTime {
        let resume_at = io_done + costs.uffd_copy(&mut self.rng) + costs.uffd_resume(&mut self.rng);
        self.busy_until = self.busy_until.max(resume_at);
        self.misses += 1;
        self.total_wait += resume_at - fault_arrival;
        resume_at
    }

    /// Faults served at user level so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative vCPU wait attributable to user-level handling.
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// When the handler next frees up (for tests).
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn cached_service_in_expected_band() {
        // Figure 2: REAP out-of-set faults on cached pages take 8-64 us.
        let mut h = ReapHandler::new(1);
        let costs = FaultCosts::default();
        let mut total = 0.0;
        for i in 0..100 {
            let s = h.serve_cached(t(i * 1000), &costs);
            let dt = (s.resume_at - t(i * 1000)).as_micros_f64();
            assert!(!s.needs_io);
            total += dt;
        }
        let mean = total / 100.0;
        assert!((8.0..40.0).contains(&mean), "mean cached service {mean}us");
    }

    #[test]
    fn handler_serializes_bursts() {
        let mut h = ReapHandler::new(2);
        let costs = FaultCosts::default();
        // Ten faults arriving simultaneously queue behind one another.
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let s = h.serve_cached(t(0), &costs);
            assert!(s.resume_at > last, "strictly increasing completion");
            last = s.resume_at;
        }
        assert!(last.as_micros_f64() > 100.0, "10 serialized services");
        assert_eq!(h.misses(), 10);
    }

    #[test]
    fn uncached_service_includes_io() {
        let mut h = ReapHandler::new(3);
        let costs = FaultCosts::default();
        let arrival = t(10);
        let issue = h.serve_uncached(arrival, &costs);
        assert!(issue > arrival);
        let io_done = issue + SimDuration::from_micros(120);
        let resume = h.complete_with_io(arrival, io_done, &costs);
        assert!(resume > io_done);
        let total = (resume - arrival).as_micros_f64();
        assert!(total > 125.0, "uncached service {total}us > 128us band");
    }

    #[test]
    fn fetch_time_scales_with_ws() {
        let read = SimDuration::from_millis(100);
        let small = ReapHandler::fetch_time(1000, read);
        let large = ReapHandler::fetch_time(131_072, read);
        assert!(large > small);
        // 131k pages at 0.45us/page ≈ 59ms of installs on top of the read.
        let installs = (large - read).as_millis_f64();
        assert!((50.0..70.0).contains(&installs), "installs {installs}ms");
    }

    #[test]
    fn wait_accounting() {
        let mut h = ReapHandler::new(4);
        let costs = FaultCosts::default();
        h.serve_cached(t(0), &costs);
        assert!(h.total_wait() > SimDuration::ZERO);
        assert_eq!(h.total_wait(), h.busy_until() - t(0));
    }
}
