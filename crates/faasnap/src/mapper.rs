//! Guest-memory mapping setup per restore strategy.
//!
//! Vanilla Firecracker maps the entire guest space to the memory file.
//! FaaSnap builds the Figure 4 hierarchy with overlapping `MAP_FIXED`
//! mappings (§4.8): anonymous base → non-zero regions onto the memory
//! file → loading-set regions onto the loading-set file. "One way to map
//! these regions is to make non-overlapping mmap calls for each individual
//! region. However, we can reduce the number of mmap calls by mapping
//! smaller regions on top of existing ones in a hierarchy." Both variants
//! are implemented so the benefit is measurable.

use sim_mm::addr::PageRange;
use sim_mm::vma::{AddressSpace, Backing};
use sim_storage::file::FileId;

use crate::loadingset::LoadingSet;

/// Maps the whole guest space to the memory file (vanilla Firecracker
/// snapshot restore, also used by Cached and REAP).
pub fn map_vanilla(aspace: &mut AddressSpace, total_pages: u64, mem_file: FileId) {
    aspace.map_fixed(
        PageRange::new(0, total_pages),
        Backing::File {
            file: mem_file,
            offset_page: 0,
        },
    );
}

/// Maps the whole guest space anonymously (warm VMs are booted from VM
/// images, "the guest memory region is mapped to host anonymous memory",
/// §3.3).
pub fn map_warm(aspace: &mut AddressSpace, total_pages: u64) {
    aspace.map_fixed(PageRange::new(0, total_pages), Backing::Anonymous);
}

/// Builds FaaSnap's hierarchical overlapping mapping (Figure 4):
///
/// 1. one anonymous mapping over the whole guest space (zero regions and
///    released/unused sets resolve here),
/// 2. non-zero regions overlaid at identical offsets in the memory file
///    (the cold set resolves here),
/// 3. loading-set regions overlaid at their recorded offsets in the
///    loading-set file.
///
/// Returns the number of `mmap` calls issued.
pub fn map_faasnap_hierarchical(
    aspace: &mut AddressSpace,
    total_pages: u64,
    nonzero_regions: &[PageRange],
    ls: &LoadingSet,
    mem_file: FileId,
    ls_file: FileId,
) -> u64 {
    let before = aspace.mmap_calls();
    aspace.map_fixed(PageRange::new(0, total_pages), Backing::Anonymous);
    for r in nonzero_regions {
        aspace.map_fixed(
            *r,
            Backing::File {
                file: mem_file,
                offset_page: r.start,
            },
        );
    }
    for r in ls.regions() {
        aspace.map_fixed(
            r.guest,
            Backing::File {
                file: ls_file,
                offset_page: r.file_start,
            },
        );
    }
    aspace.mmap_calls() - before
}

/// The flat (non-hierarchical) alternative: computes the final partition
/// of the guest space and maps every piece exactly once, with no
/// overlapping. Produces the same address space as the hierarchical
/// variant but needs many more `mmap` calls (every anonymous hole between
/// file-backed pieces becomes its own mapping).
///
/// Returns the number of `mmap` calls issued.
pub fn map_faasnap_flat(
    aspace: &mut AddressSpace,
    total_pages: u64,
    nonzero_regions: &[PageRange],
    ls: &LoadingSet,
    mem_file: FileId,
    ls_file: FileId,
) -> u64 {
    let before = aspace.mmap_calls();
    // Build the final per-page backing: 0 = anon, 1 = memfile, 2 = lsfile.
    // (Dense scratch array: setup-time only.)
    let mut owner = vec![0u8; total_pages as usize];
    for r in nonzero_regions {
        for p in r.iter() {
            owner[p as usize] = 1;
        }
    }
    for r in ls.regions() {
        for p in r.guest.iter() {
            owner[p as usize] = 2;
        }
    }
    // Emit maximal runs of equal backing.
    let mut start = 0u64;
    for p in 1..=total_pages {
        if p == total_pages || owner[p as usize] != owner[start as usize] {
            let run = PageRange::new(start, p);
            match owner[start as usize] {
                0 => aspace.map_fixed(run, Backing::Anonymous),
                1 => aspace.map_fixed(
                    run,
                    Backing::File {
                        file: mem_file,
                        offset_page: run.start,
                    },
                ),
                _ => {
                    let file_start = ls
                        .file_page_of(run.start)
                        .expect("ls region pages have file offsets");
                    aspace.map_fixed(
                        run,
                        Backing::File {
                            file: ls_file,
                            offset_page: file_start,
                        },
                    );
                }
            }
            start = p;
        }
    }
    aspace.mmap_calls() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wset::WorkingSet;
    use sim_mm::vma::Resolved;
    use sim_vm::guest_memory::GuestMemory;

    fn build_ls(ws_pages: &[u64], nonzero: &[u64], total: u64) -> (LoadingSet, Vec<PageRange>) {
        let mut ws = WorkingSet::new();
        ws.extend(ws_pages);
        let mut mem = GuestMemory::new(total);
        for &p in nonzero {
            mem.write(p, p + 1);
        }
        (LoadingSet::build(&ws, &mem, 2), mem.nonzero_regions())
    }

    #[test]
    fn vanilla_is_one_call_whole_file() {
        let mut a = AddressSpace::new();
        map_vanilla(&mut a, 1000, FileId(1));
        assert_eq!(a.mmap_calls(), 1);
        assert_eq!(
            a.resolve(999),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 999
            })
        );
        assert!(a.covers(PageRange::new(0, 1000)));
    }

    #[test]
    fn warm_is_anonymous() {
        let mut a = AddressSpace::new();
        map_warm(&mut a, 100);
        assert_eq!(a.resolve(50), Some(Resolved::Anonymous));
    }

    #[test]
    fn hierarchical_mapping_resolves_each_set_correctly() {
        // Non-zero: [10,20) and [40,50). WS (cached during record):
        // 10..14 and 45..47. Loading set = their intersection regions.
        let (ls, nz) = build_ls(
            &[10, 11, 12, 13, 45, 46],
            &(10..20).chain(40..50).collect::<Vec<_>>(),
            100,
        );
        let mut a = AddressSpace::new();
        let calls = map_faasnap_hierarchical(&mut a, 100, &nz, &ls, FileId(1), FileId(2));
        assert_eq!(calls, 1 + 2 + 2);
        // Zero page -> anonymous (unused set).
        assert_eq!(a.resolve(5), Some(Resolved::Anonymous));
        // Cold set (non-zero, not in WS) -> memory file at same offset.
        assert_eq!(
            a.resolve(17),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 17
            })
        );
        assert_eq!(
            a.resolve(42),
            Some(Resolved::File {
                file: FileId(1),
                file_page: 42
            })
        );
        // Loading set -> loading set file at recorded offsets.
        let f10 = ls.file_page_of(10).unwrap();
        assert_eq!(
            a.resolve(10),
            Some(Resolved::File {
                file: FileId(2),
                file_page: f10
            })
        );
        let f46 = ls.file_page_of(46).unwrap();
        assert_eq!(
            a.resolve(46),
            Some(Resolved::File {
                file: FileId(2),
                file_page: f46
            })
        );
        assert!(a.covers(PageRange::new(0, 100)));
    }

    #[test]
    fn flat_and_hierarchical_agree() {
        let nonzero: Vec<u64> = (10..30).chain(50..90).chain(95..97).collect();
        let ws: Vec<u64> = (12..18).chain(55..60).chain(70..75).chain(95..97).collect();
        let (ls, nz) = build_ls(&ws, &nonzero, 200);
        let mut h = AddressSpace::new();
        let hcalls = map_faasnap_hierarchical(&mut h, 200, &nz, &ls, FileId(1), FileId(2));
        let mut f = AddressSpace::new();
        let fcalls = map_faasnap_flat(&mut f, 200, &nz, &ls, FileId(1), FileId(2));
        for p in 0..200 {
            assert_eq!(h.resolve(p), f.resolve(p), "page {p} differs");
        }
        assert!(
            fcalls > hcalls,
            "flat ({fcalls}) should need more mmap calls than hierarchical ({hcalls})"
        );
    }

    #[test]
    fn hierarchical_call_count_formula() {
        let (ls, nz) = build_ls(&[10, 50], &[10, 50], 100);
        let mut a = AddressSpace::new();
        let calls = map_faasnap_hierarchical(&mut a, 100, &nz, &ls, FileId(1), FileId(2));
        assert_eq!(calls, 1 + nz.len() as u64 + ls.region_count());
    }
}
