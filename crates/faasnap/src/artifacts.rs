//! The record phase (Figure 5, left half).
//!
//! "In the first invocation, or record phase, the VM is started from
//! restoring a 'clean' snapshot. FaaSnap obtains the working set groups
//! using repeated mincore syscalls to the memory file. After the
//! invocation, a new snapshot is created to store the warm state. FaaSnap
//! then scans the new memory file to find non-zero pages. The loading set
//! is the intersection between the working set and non-zero pages.
//! Adjacent loading set regions are merged ... The loading set is then
//! stored into a compact loading set file in the order of group numbers
//! and the region offsets are recorded."
//!
//! One record run produces artifacts for *all* strategies: the warm
//! snapshot (everyone), the grouped working set + loading-set file
//! (FaaSnap), and the fault-order working-set file (REAP).

use sim_storage::file::{DeviceId, FileId, FileKind};
use sim_vm::snapshot::Snapshot;
use sim_vm::trace::Trace;

use crate::error::RestoreError;
use crate::loadingset::{LoadingSet, MERGE_GAP};
use crate::report::InvocationReport;
use crate::runtime::{try_run_invocation, Host, InvocationSpec};
use crate::strategy::RestoreStrategy;
use crate::wset::{ReapWorkingSet, WorkingSet, GROUP_SIZE};

/// Tunable knobs of the record phase (the paper's empirical choices).
#[derive(Clone, Copy, Debug)]
pub struct RecordOptions {
    /// Working-set group size (§4.3: N = 1024 "works well").
    pub group_size: u64,
    /// New-resident-page threshold that paces `mincore` scans (§5).
    pub scan_threshold: u64,
    /// Region merge gap in pages (§4.6: 32).
    pub merge_gap: u64,
}

impl Default for RecordOptions {
    fn default() -> Self {
        RecordOptions {
            group_size: GROUP_SIZE,
            scan_threshold: GROUP_SIZE,
            merge_gap: MERGE_GAP,
        }
    }
}

/// Everything the record phase produces.
#[derive(Clone, Debug)]
pub struct SnapshotArtifacts {
    /// The warm snapshot (memory contents after the record invocation,
    /// with freed pages sanitized).
    pub snapshot: Snapshot,
    /// FaaSnap's grouped, mincore-recorded working set.
    pub ws: WorkingSet,
    /// The loading set built from `ws` ∩ non-zero pages.
    pub ls: LoadingSet,
    /// The compact loading-set file.
    pub ls_file: FileId,
    /// REAP's fault-order working set.
    pub reap_ws: ReapWorkingSet,
    /// REAP's compact working-set file.
    pub reap_ws_file: FileId,
    /// Measurements of the record invocation itself.
    pub record_report: InvocationReport,
}

impl SnapshotArtifacts {
    /// Builds an [`InvocationSpec`] for a test-phase invocation of
    /// `trace` under `strategy`, wiring in the right artifacts.
    pub fn spec(&self, strategy: RestoreStrategy, trace: Trace) -> InvocationSpec {
        let mut spec = InvocationSpec::new(
            strategy,
            trace,
            self.snapshot.restored_memory(),
            self.snapshot.mem_file(),
        );
        spec.nonzero_regions = self.snapshot.nonzero_regions();
        spec.ls = Some(self.ls.clone());
        spec.ls_file = Some(self.ls_file);
        spec.ws = Some(self.ws.clone());
        spec.reap_ws = Some(self.reap_ws.clone());
        spec.reap_ws_file = Some(self.reap_ws_file);
        spec
    }
}

/// Runs the record phase: restores the clean snapshot built from
/// `boot_image`, executes `record_trace` with page sanitization and
/// working-set recording enabled, and materializes every artifact on
/// `device`.
pub fn record_phase(
    host: &mut Host,
    name: &str,
    boot_image: sim_vm::guest_memory::GuestMemory,
    record_trace: Trace,
    device: DeviceId,
) -> SnapshotArtifacts {
    record_phase_with(
        host,
        name,
        boot_image,
        record_trace,
        device,
        RecordOptions::default(),
    )
}

/// [`record_phase`] with explicit [`RecordOptions`] (for the group-size
/// and merge-gap sensitivity experiments).
pub fn record_phase_with(
    host: &mut Host,
    name: &str,
    boot_image: sim_vm::guest_memory::GuestMemory,
    record_trace: Trace,
    device: DeviceId,
    options: RecordOptions,
) -> SnapshotArtifacts {
    match try_record_phase_with(host, name, boot_image, record_trace, device, options) {
        Ok(artifacts) => artifacts,
        Err(e) => panic!("record phase failed: {e}"),
    }
}

/// Fallible record phase: a storage fault that exhausts its retry budget
/// mid-record surfaces here as a typed error, and *no* artifacts are
/// produced — a crashed record phase leaves artifacts cleanly absent,
/// never half-written.
pub fn try_record_phase_with(
    host: &mut Host,
    name: &str,
    boot_image: sim_vm::guest_memory::GuestMemory,
    record_trace: Trace,
    device: DeviceId,
    options: RecordOptions,
) -> Result<SnapshotArtifacts, RestoreError> {
    // Clean snapshot of the booted, initialized guest.
    let clean = Snapshot::create(format!("{name}.clean"), boot_image, &mut host.fs, device);

    // Record invocation: vanilla restore, sanitization + recording on.
    host.drop_caches();
    let mut spec = InvocationSpec::new(
        RestoreStrategy::Vanilla,
        record_trace,
        clean.restored_memory(),
        clean.mem_file(),
    );
    spec.sanitize = true;
    spec.record = true;
    spec.record_group_size = options.group_size;
    spec.record_scan_threshold = options.scan_threshold;
    let outcome = try_run_invocation(host, spec)?;
    let ws = outcome.ws.ok_or(RestoreError::RecordIncomplete {
        what: "working set",
    })?;
    let reap_ws = outcome.reap_ws.ok_or(RestoreError::RecordIncomplete {
        what: "REAP working set",
    })?;

    // Warm snapshot of the post-invocation state.
    let snapshot = Snapshot::create(
        format!("{name}.warm"),
        outcome.final_memory,
        &mut host.fs,
        device,
    );

    // Loading set = working set ∩ non-zero pages, merged and laid out.
    let ls = LoadingSet::build(&ws, snapshot.memory(), options.merge_gap);
    let ls_file = host.fs.create(
        format!("{name}.loadingset"),
        FileKind::LoadingSet,
        ls.file_pages(),
        device,
    );
    let reap_ws_file = host.fs.create(
        format!("{name}.reapws"),
        FileKind::WorkingSet,
        reap_ws.len().max(1),
        device,
    );

    Ok(SnapshotArtifacts {
        snapshot,
        ws,
        ls,
        ls_file,
        reap_ws,
        reap_ws_file,
        record_report: outcome.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::time::SimDuration;
    use sim_mm::addr::PageRange;
    use sim_storage::profiles::DiskProfile;
    use sim_vm::guest_memory::GuestMemory;
    use sim_vm::trace::TraceOp;

    /// A tiny synthetic "function": boot image with non-zero pages in
    /// [100, 200); trace touches some of them, allocates and frees heap.
    fn tiny_setup() -> (GuestMemory, Trace) {
        let mut img = GuestMemory::new(4096);
        for p in 100..200 {
            img.write(p, p * 7 + 1);
        }
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::new(100, 150),
            stride: 1,
            write: false,
            per_page_compute: SimDuration::from_micros(1),
            token_seed: 0,
        });
        // Heap: write 40 pages, free 30 of them.
        t.push(TraceOp::Touch {
            range: PageRange::new(1000, 1040),
            stride: 1,
            write: true,
            per_page_compute: SimDuration::from_micros(1),
            token_seed: 9,
        });
        t.push(TraceOp::Free {
            range: PageRange::new(1000, 1030),
        });
        (img, t)
    }

    fn host() -> Host {
        Host::new(DiskProfile::nvme_c5d(), 42)
    }

    #[test]
    fn record_produces_consistent_artifacts() {
        let mut h = host();
        let (img, trace) = tiny_setup();
        let dev = h.primary_device();
        let a = record_phase(&mut h, "tiny", img, trace, dev);

        // Working set covers the touched file pages (plus readahead).
        let ws_set = a.ws.page_set();
        for p in 100..150 {
            assert!(ws_set.contains(&p), "touched page {p} in WS");
        }
        // REAP's set is fault-only: it is a subset of the mincore WS.
        for p in a.reap_ws.pages() {
            assert!(ws_set.contains(p), "REAP page {p} must be in mincore WS");
        }
        // Host page recording strictly relaxes the criteria (readahead).
        assert!(a.ws.len() >= a.reap_ws.len());

        // Sanitization: freed heap pages are zero in the warm snapshot.
        for p in 1000..1030 {
            assert!(
                !a.snapshot.memory().is_nonzero(p),
                "freed page {p} sanitized"
            );
        }
        // Kept heap pages are non-zero.
        for p in 1030..1040 {
            assert!(a.snapshot.memory().is_nonzero(p), "kept page {p} non-zero");
        }

        // Loading set excludes zero pages: no region covers freed pages.
        for p in 1000..1030 {
            assert!(!a.ls.covers(p), "freed page {p} not in loading set");
        }
        // Loading set covers the touched non-zero pages.
        assert!(a.ls.covers(120));
        assert!(a.ls.covers(1035));

        // Files registered with the right sizes.
        assert_eq!(h.fs.meta(a.ls_file).len_pages, a.ls.file_pages());
        assert_eq!(h.fs.meta(a.ls_file).kind, FileKind::LoadingSet);
        assert_eq!(h.fs.meta(a.reap_ws_file).kind, FileKind::WorkingSet);
    }

    #[test]
    fn record_report_counts_faults() {
        let mut h = host();
        let (img, trace) = tiny_setup();
        let dev = h.primary_device();
        let a = record_phase(&mut h, "tiny", img, trace, dev);
        let r = &a.record_report;
        assert!(r.total_faults() > 0);
        assert!(r.major_faults > 0, "record phase reads from disk");
        assert!(r.invocation_time > SimDuration::ZERO);
    }

    #[test]
    fn spec_builder_wires_artifacts() {
        let mut h = host();
        let (img, trace) = tiny_setup();
        let dev = h.primary_device();
        let a = record_phase(&mut h, "tiny", img, trace.clone(), dev);
        let spec = a.spec(RestoreStrategy::faasnap(), trace);
        assert!(spec.ls.is_some());
        assert!(spec.ws.is_some());
        assert!(spec.reap_ws.is_some());
        assert_eq!(spec.mem_file, a.snapshot.mem_file());
        assert!(spec.verify_mappings);
    }

    #[test]
    fn deterministic_record() {
        let run = || {
            let mut h = host();
            let (img, trace) = tiny_setup();
            let dev = h.primary_device();
            let a = record_phase(&mut h, "tiny", img, trace, dev);
            (
                a.ws.pages().to_vec(),
                a.reap_ws.pages().to_vec(),
                a.snapshot.memory().checksum(),
            )
        };
        assert_eq!(run(), run());
    }
}
