//! The concurrent-paging daemon loader (§4.2).
//!
//! "Instead of blocking the VM while waiting for the prefetch to complete,
//! the FaaSnap daemon starts the VM immediately after setup ... it starts
//! a loader thread to prefetch the pages from the working set recorded in
//! earlier invocations." The loader runs in the daemon (not the VMM), so
//! prefetching begins the moment the invocation request arrives.
//!
//! A [`LoaderPlan`] is the ordered list of disk reads the loader will
//! issue, one at a time (a single loader thread):
//!
//! - **Full FaaSnap** ([`LoaderPlan::from_loading_set`]): sequential
//!   chunks of the compact loading-set file — strictly ascending file
//!   offsets, so every read after the first hits the device's sequential
//!   fast path.
//! - **Concurrent paging only** ([`LoaderPlan::address_order`]): the
//!   working set's non-zero pages read from the *memory file* in address
//!   order (Figure 9's first ablation) — disk-friendly order but not
//!   access order, so the guest often gets ahead of the loader.
//! - **Per-region** ([`LoaderPlan::group_order`]): working-set regions
//!   read from the memory file in group order (access-order-approximate,
//!   §4.3) — better race behavior, but scattered reads.

use sim_mm::addr::{runs_from_pages, PageNum};
use sim_storage::device::{IoKind, IoRequest};
use sim_storage::file::FileId;
use sim_vm::guest_memory::GuestMemory;

use crate::loadingset::LoadingSet;
use crate::wset::WorkingSet;

/// Maximum pages per loader read (512 KiB chunks keep the pipeline busy
/// without monopolizing the bus).
pub const LOADER_CHUNK_PAGES: u64 = 128;

/// An ordered prefetch plan.
#[derive(Clone, Debug, Default)]
pub struct LoaderPlan {
    /// Reads in issue order.
    chunks: Vec<IoRequest>,
    /// For each chunk, the guest pages its file pages back (same order as
    /// the file pages), so the runtime knows what became prefetched.
    guest_pages: Vec<Vec<PageNum>>,
}

impl LoaderPlan {
    /// Full-FaaSnap plan: read the loading-set file sequentially.
    pub fn from_loading_set(ls: &LoadingSet, ls_file: FileId) -> LoaderPlan {
        let mut plan = LoaderPlan::default();
        for region in ls.regions() {
            let mut off = 0;
            while off < region.guest.len() {
                let len = (region.guest.len() - off).min(LOADER_CHUNK_PAGES);
                plan.chunks.push(IoRequest {
                    file: ls_file,
                    page: region.file_start + off,
                    pages: len,
                    kind: IoKind::LoaderPrefetch,
                });
                plan.guest_pages
                    .push((region.guest.start + off..region.guest.start + off + len).collect());
                off += len;
            }
        }
        plan.coalesce_sequential();
        plan
    }

    /// Figure 9 "concurrent paging" ablation: the working set's non-zero
    /// pages from the memory file, in ascending address order.
    pub fn address_order(ws: &WorkingSet, memory: &GuestMemory, mem_file: FileId) -> LoaderPlan {
        let mut pages: Vec<PageNum> = ws
            .pages()
            .iter()
            .copied()
            .filter(|&p| memory.is_nonzero(p))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        Self::from_memfile_runs(pages, mem_file)
    }

    /// Figure 9 "per-region" ablation: working-set non-zero pages from the
    /// memory file in group order (address order within each group).
    pub fn group_order(ws: &WorkingSet, memory: &GuestMemory, mem_file: FileId) -> LoaderPlan {
        let mut plan = LoaderPlan::default();
        let group_size = ws.group_size() as usize;
        let pages = ws.pages();
        let mut start = 0;
        while start < pages.len() {
            let end = (start + group_size).min(pages.len());
            let mut group: Vec<PageNum> = pages[start..end]
                .iter()
                .copied()
                .filter(|&p| memory.is_nonzero(p))
                .collect();
            group.sort_unstable();
            group.dedup();
            let sub = Self::from_memfile_runs(group, mem_file);
            plan.chunks.extend(sub.chunks);
            plan.guest_pages.extend(sub.guest_pages);
            start = end;
        }
        plan
    }

    fn from_memfile_runs(sorted_pages: Vec<PageNum>, mem_file: FileId) -> LoaderPlan {
        let mut plan = LoaderPlan::default();
        for run in runs_from_pages(sorted_pages) {
            let mut off = 0;
            while off < run.len() {
                let len = (run.len() - off).min(LOADER_CHUNK_PAGES);
                plan.chunks.push(IoRequest {
                    file: mem_file,
                    page: run.start + off,
                    pages: len,
                    kind: IoKind::LoaderPrefetch,
                });
                plan.guest_pages
                    .push((run.start + off..run.start + off + len).collect());
                off += len;
            }
        }
        plan
    }

    /// Merges chunks that are contiguous in the file up to the chunk size
    /// (regions adjacent in the loading-set file read as one stream).
    fn coalesce_sequential(&mut self) {
        let mut chunks: Vec<IoRequest> = Vec::with_capacity(self.chunks.len());
        let mut guests: Vec<Vec<PageNum>> = Vec::with_capacity(self.guest_pages.len());
        for (c, g) in self.chunks.drain(..).zip(self.guest_pages.drain(..)) {
            match (chunks.last_mut(), guests.last_mut()) {
                (Some(last), Some(lg))
                    if last.file == c.file
                        && last.page + last.pages == c.page
                        && last.pages + c.pages <= LOADER_CHUNK_PAGES =>
                {
                    last.pages += c.pages;
                    lg.extend(g);
                }
                _ => {
                    chunks.push(c);
                    guests.push(g);
                }
            }
        }
        self.chunks = chunks;
        self.guest_pages = guests;
    }

    /// Number of reads in the plan.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True if there is nothing to prefetch.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The `idx`-th read.
    pub fn chunk(&self, idx: usize) -> &IoRequest {
        &self.chunks[idx]
    }

    /// Guest pages backed by the `idx`-th read.
    pub fn guest_pages(&self, idx: usize) -> &[PageNum] {
        &self.guest_pages[idx]
    }

    /// Total pages the plan reads.
    pub fn total_pages(&self) -> u64 {
        self.chunks.iter().map(|c| c.pages).sum()
    }

    /// Total bytes the plan reads.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * sim_core::units::PAGE_SIZE
    }

    /// Fraction of reads that continue the previous read's file extent
    /// (sequentiality of the plan; ~1.0 for loading-set plans).
    pub fn sequential_fraction(&self) -> f64 {
        if self.chunks.len() <= 1 {
            return 1.0;
        }
        let seq = self
            .chunks
            .windows(2)
            .filter(|w| w[0].file == w[1].file && w[0].page + w[0].pages == w[1].page)
            .count();
        seq as f64 / (self.chunks.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(nonzero: std::ops::Range<u64>) -> GuestMemory {
        let mut m = GuestMemory::new(1 << 20);
        for p in nonzero {
            m.write(p, 1);
        }
        m
    }

    fn ws_of(pages: &[u64]) -> WorkingSet {
        let mut ws = WorkingSet::with_group_size(4);
        ws.extend(pages);
        ws
    }

    #[test]
    fn loading_set_plan_is_fully_sequential() {
        let ws = ws_of(&[100, 101, 500, 501, 502, 900]);
        let mem = mem_with(0..1000);
        let ls = LoadingSet::build(&ws, &mem, 0);
        let plan = LoaderPlan::from_loading_set(&ls, FileId(7));
        assert!(plan.sequential_fraction() > 0.99);
        assert_eq!(plan.total_pages(), ls.file_pages());
        // File offsets strictly ascend.
        let mut next = 0;
        for i in 0..plan.len() {
            assert_eq!(plan.chunk(i).page, next);
            next += plan.chunk(i).pages;
        }
    }

    #[test]
    fn loading_set_plan_maps_guest_pages() {
        let ws = ws_of(&[10, 11, 40]);
        let mem = mem_with(0..100);
        let ls = LoadingSet::build(&ws, &mem, 0);
        let plan = LoaderPlan::from_loading_set(&ls, FileId(7));
        let all_guest: Vec<u64> = (0..plan.len())
            .flat_map(|i| plan.guest_pages(i).to_vec())
            .collect();
        let mut sorted = all_guest.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 40]);
    }

    #[test]
    fn address_order_plan_sorted_and_skips_zero() {
        let ws = ws_of(&[500, 10, 11, 200]);
        let mut mem = mem_with(0..300);
        mem.zero(200);
        let plan = LoaderPlan::address_order(&ws, &mem, FileId(1));
        // 500 is zero (outside 0..300)? No: 500 not in nonzero range => skipped.
        let pages: Vec<u64> = (0..plan.len()).map(|i| plan.chunk(i).page).collect();
        assert_eq!(pages, vec![10], "one run starting at 10");
        assert_eq!(plan.total_pages(), 2);
    }

    #[test]
    fn group_order_plan_follows_groups() {
        // Group size 4: group 0 = [100,101,102,103], group 1 = [0,1,2,3].
        let ws = ws_of(&[100, 101, 102, 103, 0, 1, 2, 3]);
        let mem = mem_with(0..200);
        let plan = LoaderPlan::group_order(&ws, &mem, FileId(1));
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.chunk(0).page, 100, "group 0 read first");
        assert_eq!(plan.chunk(1).page, 0);
        // Scattered: reads are not sequential in the file.
        assert!(plan.sequential_fraction() < 0.5);
    }

    #[test]
    fn chunking_large_regions() {
        let pages: Vec<u64> = (0..300).collect();
        let ws = {
            let mut w = WorkingSet::with_group_size(1024);
            w.extend(&pages);
            w
        };
        let mem = mem_with(0..300);
        let ls = LoadingSet::build(&ws, &mem, 0);
        let plan = LoaderPlan::from_loading_set(&ls, FileId(1));
        assert_eq!(plan.len(), 3, "300 pages in 128-page chunks");
        assert_eq!(plan.chunk(0).pages, 128);
        assert_eq!(plan.chunk(2).pages, 44);
    }

    #[test]
    fn empty_plans() {
        let ws = WorkingSet::new();
        let mem = GuestMemory::new(100);
        let ls = LoadingSet::build(&ws, &mem, 0);
        assert!(LoaderPlan::from_loading_set(&ls, FileId(1)).is_empty());
        assert!(LoaderPlan::address_order(&ws, &mem, FileId(1)).is_empty());
        assert!(LoaderPlan::group_order(&ws, &mem, FileId(1)).is_empty());
    }

    #[test]
    fn all_chunks_tagged_loader() {
        let ws = ws_of(&[1, 2, 3]);
        let mem = mem_with(0..10);
        let ls = LoadingSet::build(&ws, &mem, 0);
        let plan = LoaderPlan::from_loading_set(&ls, FileId(1));
        for i in 0..plan.len() {
            assert_eq!(plan.chunk(i).kind, IoKind::LoaderPrefetch);
        }
    }
}
