//! Record-phase working-set recording.
//!
//! FaaSnap's *host page recording* (§4.4, §5): the daemon polls the guest
//! RSS through procfs and, once at least one group's worth (1024) of new
//! pages is resident, runs `mincore` over the mapped memory file to find
//! the pages that became present since the last scan — including pages
//! pulled in by kernel readahead that the guest never faulted on. Pages
//! get group numbers in scan-appearance order.
//!
//! REAP's recording (§2.5) is `userfaultfd`-based: the handler sees each
//! first fault and records the faulting page, in order — readahead pages
//! are invisible to it.

use sim_mm::addr::{PageNum, PageRange};
use sim_mm::mincore::scan_new_pages;
use sim_mm::page_table::PageTable;
use sim_mm::share::SharedPages;
use sim_mm::vma::AddressSpace;

use crate::wset::{ReapWorkingSet, WorkingSet};

/// Incremental `mincore`-based working-set recorder.
#[derive(Clone, Debug)]
pub struct MincoreRecorder {
    range: PageRange,
    seen: Vec<bool>,
    ws: WorkingSet,
    /// RSS (pages) at the last scan, for pacing.
    last_scan_rss: u64,
    /// Minimum new resident pages before another scan (one group).
    scan_threshold: u64,
    scans: u64,
}

impl MincoreRecorder {
    /// Creates a recorder over the guest range `[0, total_pages)`.
    pub fn new(total_pages: u64) -> Self {
        Self::with_params(total_pages, WorkingSet::new(), 1024)
    }

    /// Creates a recorder with a custom working set (group size) and scan
    /// threshold.
    pub fn with_params(total_pages: u64, ws: WorkingSet, scan_threshold: u64) -> Self {
        MincoreRecorder {
            range: PageRange::new(0, total_pages),
            seen: vec![false; total_pages as usize],
            ws,
            last_scan_rss: 0,
            scan_threshold,
            scans: 0,
        }
    }

    /// Called on each daemon poll tick: scans if RSS grew by at least the
    /// threshold since the last scan. Returns true if a scan ran.
    pub fn poll(
        &mut self,
        rss_pages: u64,
        aspace: &AddressSpace,
        pt: &PageTable,
        cache: &SharedPages,
    ) -> bool {
        if rss_pages < self.last_scan_rss + self.scan_threshold {
            return false;
        }
        self.scan(aspace, pt, cache);
        self.last_scan_rss = rss_pages;
        true
    }

    /// Unconditional scan (the final scan after the invocation finishes).
    pub fn scan(&mut self, aspace: &AddressSpace, pt: &PageTable, cache: &SharedPages) {
        let new_pages = scan_new_pages(self.range, aspace, pt, cache, &mut self.seen);
        self.ws.extend(&new_pages);
        self.scans += 1;
    }

    /// Number of scans performed.
    pub fn scans(&self) -> u64 {
        self.scans
    }

    /// Finishes recording and returns the working set.
    pub fn finish(self) -> WorkingSet {
        self.ws
    }

    /// The working set recorded so far.
    pub fn working_set(&self) -> &WorkingSet {
        &self.ws
    }
}

/// REAP-style fault tracker: first faults only, in order.
#[derive(Clone, Debug, Default)]
pub struct UffdTracker {
    ws: ReapWorkingSet,
    seen: Vec<bool>,
}

impl UffdTracker {
    /// Creates a tracker over `total_pages` guest pages.
    pub fn new(total_pages: u64) -> Self {
        UffdTracker {
            ws: ReapWorkingSet::new(),
            seen: vec![false; total_pages as usize],
        }
    }

    /// Records a fault on `page` (deduplicated).
    pub fn on_fault(&mut self, page: PageNum) {
        if !self.seen[page as usize] {
            self.seen[page as usize] = true;
            self.ws.record(page);
        }
    }

    /// Finishes and returns REAP's working set.
    pub fn finish(self) -> ReapWorkingSet {
        self.ws
    }

    /// The working set recorded so far.
    pub fn working_set(&self) -> &ReapWorkingSet {
        &self.ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mm::vma::Backing;
    use sim_storage::file::FileId;

    fn world(total: u64) -> (AddressSpace, PageTable, SharedPages) {
        let mut a = AddressSpace::new();
        a.map_fixed(
            PageRange::new(0, total),
            Backing::File {
                file: FileId(1),
                offset_page: 0,
            },
        );
        (a, PageTable::new(total), SharedPages::new(1 << 20))
    }

    #[test]
    fn paced_scanning() {
        let (a, pt, mut cache) = world(10_000);
        let mut rec = MincoreRecorder::with_params(10_000, WorkingSet::with_group_size(64), 64);
        // Fewer than threshold new pages: no scan.
        cache.insert_range(FileId(1), 0, 10);
        assert!(!rec.poll(10, &a, &pt, &cache));
        assert_eq!(rec.scans(), 0);
        // Crossing the threshold triggers a scan.
        cache.insert_range(FileId(1), 100, 60);
        assert!(rec.poll(70, &a, &pt, &cache));
        assert_eq!(rec.scans(), 1);
        assert_eq!(rec.working_set().len(), 70);
        // No growth: no scan.
        assert!(!rec.poll(70, &a, &pt, &cache));
    }

    #[test]
    fn readahead_pages_recorded() {
        // Host page recording's defining property: pages cached without
        // any guest fault are in the working set.
        let (a, pt, mut cache) = world(1000);
        let mut rec = MincoreRecorder::new(1000);
        cache.insert_range(FileId(1), 500, 32); // pure readahead
        rec.scan(&a, &pt, &cache);
        let ws = rec.finish();
        assert_eq!(ws.len(), 32);
        assert!(ws.page_set().contains(&531));
    }

    #[test]
    fn scan_order_defines_groups() {
        let (a, pt, mut cache) = world(1000);
        let mut rec = MincoreRecorder::with_params(1000, WorkingSet::with_group_size(4), 1);
        cache.insert_range(FileId(1), 100, 4);
        rec.scan(&a, &pt, &cache);
        cache.insert_range(FileId(1), 0, 4); // lower address, later scan
        rec.scan(&a, &pt, &cache);
        let ws = rec.finish();
        assert_eq!(ws.pages(), &[100, 101, 102, 103, 0, 1, 2, 3]);
        let g: Vec<u32> = ws.pages_with_groups().map(|(_, g)| g).collect();
        assert_eq!(g, vec![0, 0, 0, 0, 1, 1, 1, 1], "later scan, later group");
    }

    #[test]
    fn final_scan_catches_stragglers() {
        let (a, pt, mut cache) = world(1000);
        let mut rec = MincoreRecorder::new(1000);
        cache.insert_range(FileId(1), 0, 10);
        rec.scan(&a, &pt, &cache);
        cache.insert_range(FileId(1), 50, 5);
        rec.scan(&a, &pt, &cache); // the unconditional final scan
        assert_eq!(rec.working_set().len(), 15);
    }

    #[test]
    fn uffd_tracker_dedupes_and_orders() {
        let mut t = UffdTracker::new(100);
        t.on_fault(30);
        t.on_fault(10);
        t.on_fault(30);
        t.on_fault(99);
        assert_eq!(t.working_set().pages(), &[30, 10, 99]);
        assert_eq!(t.finish().len(), 3);
    }
}
