//! Per-invocation measurement report.
//!
//! Mirrors the paper's instrumentation: end-to-end time split into setup
//! and invocation (Figure 1), page-fault counts and handling-time
//! distribution (`kvm_mmu_page_fault` via bpftrace — Figure 2, Figure 9),
//! loader fetch time and size, guest-fault read volume and fault waiting
//! time (Table 3), and disk request counts (Figure 9).

use sim_core::stats::Log2Histogram;
use sim_core::time::SimDuration;
use sim_core::units::PAGE_SIZE;
use sim_mm::fault::FaultKind;

/// Everything measured about one invocation.
#[derive(Clone, Debug, Default)]
pub struct InvocationReport {
    /// VM setup: VMM start, state restore, mapping setup, and (REAP) the
    /// blocking working-set fetch. Figure 1's gray bars.
    pub setup_time: SimDuration,
    /// Function invocation: request sent → reply received.
    pub invocation_time: SimDuration,
    /// Fault counts by class.
    pub anon_faults: u64,
    /// Minor faults (page cache hits).
    pub minor_faults: u64,
    /// Major faults (disk reads, including page-lock waits on in-flight
    /// reads).
    pub major_faults: u64,
    /// Fast faults on REAP-prefetched (host-PTE) pages.
    pub host_pte_faults: u64,
    /// Faults delivered to the user-level handler.
    pub uffd_faults: u64,
    /// Distribution of fault handling times (Figure 2).
    pub fault_hist: Log2Histogram,
    /// Total time the vCPU spent blocked on faults (Table 3's "page fault
    /// waiting time").
    pub fault_wait: SimDuration,
    /// Loader: time from invocation start to the last prefetch completion.
    pub fetch_time: SimDuration,
    /// Loader: pages prefetched (Table 3's "fetch size"; for REAP, the
    /// working-set file size).
    pub fetch_pages: u64,
    /// Pages read from disk due to guest faults (Table 3's "guest
    /// pagefault size").
    pub guest_fault_read_pages: u64,
    /// Disk read requests caused by guest faults (Figure 9's "# of block
    /// requests").
    pub fault_block_requests: u64,
    /// `mmap` calls made during setup.
    pub mmap_calls: u64,
    /// Anonymous (non-cache) pages resident at the end (memory footprint,
    /// §7.3).
    pub resident_pages: u64,
    /// Page-cache pages attributable to this invocation's files at the end.
    pub cache_pages: u64,
    /// True if the restore degraded (missing/corrupt artifacts forced a
    /// fallback toward vanilla demand paging).
    pub degraded: bool,
    /// Unique VM generation ID handed to the restored guest (§7.4): VMs
    /// cloned from one snapshot reseed their PRNGs from it.
    pub vm_generation_id: u64,
}

impl InvocationReport {
    /// End-to-end time (setup + invocation), the quantity plotted in
    /// Figures 6–8.
    pub fn total_time(&self) -> SimDuration {
        self.setup_time + self.invocation_time
    }

    /// Total guest page faults of all classes.
    pub fn total_faults(&self) -> u64 {
        self.anon_faults
            + self.minor_faults
            + self.major_faults
            + self.host_pte_faults
            + self.uffd_faults
    }

    /// Fetch size in bytes.
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch_pages * PAGE_SIZE
    }

    /// Guest-fault read volume in bytes.
    pub fn guest_fault_read_bytes(&self) -> u64 {
        self.guest_fault_read_pages * PAGE_SIZE
    }

    /// Records one handled fault.
    pub fn record_fault(&mut self, kind: FaultKind, duration: SimDuration) {
        match kind {
            FaultKind::Anon => self.anon_faults += 1,
            FaultKind::Minor => self.minor_faults += 1,
            FaultKind::Major => self.major_faults += 1,
            FaultKind::HostPte => self.host_pte_faults += 1,
            FaultKind::Uffd => self.uffd_faults += 1,
        }
        self.fault_hist.record(duration);
        self.fault_wait += duration;
    }

    /// Memory footprint in pages (anonymous + attributable page cache,
    /// §7.3).
    pub fn footprint_pages(&self) -> u64 {
        self.resident_pages + self.cache_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let r = InvocationReport {
            setup_time: SimDuration::from_millis(50),
            invocation_time: SimDuration::from_millis(150),
            ..Default::default()
        };
        assert_eq!(r.total_time(), SimDuration::from_millis(200));
    }

    #[test]
    fn fault_recording() {
        let mut r = InvocationReport::default();
        r.record_fault(FaultKind::Anon, SimDuration::from_micros(2));
        r.record_fault(FaultKind::Major, SimDuration::from_micros(100));
        r.record_fault(FaultKind::Minor, SimDuration::from_micros(4));
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.anon_faults, 1);
        assert_eq!(r.major_faults, 1);
        assert_eq!(r.fault_wait, SimDuration::from_micros(106));
        assert_eq!(r.fault_hist.count(), 3);
    }

    #[test]
    fn byte_conversions() {
        let r = InvocationReport {
            fetch_pages: 256,
            guest_fault_read_pages: 2,
            ..Default::default()
        };
        assert_eq!(r.fetch_bytes(), 1 << 20);
        assert_eq!(r.guest_fault_read_bytes(), 8192);
    }
}
