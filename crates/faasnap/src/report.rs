//! Per-invocation measurement report.
//!
//! Mirrors the paper's instrumentation: end-to-end time split into setup
//! and invocation (Figure 1), page-fault counts and handling-time
//! distribution (`kvm_mmu_page_fault` via bpftrace — Figure 2, Figure 9),
//! loader fetch time and size, guest-fault read volume and fault waiting
//! time (Table 3), and disk request counts (Figure 9).

use sim_core::stats::Log2Histogram;
use sim_core::time::SimDuration;
use sim_core::units::PAGE_SIZE;
use sim_mm::fault::FaultKind;
use sim_storage::faults::InjectedFaultKind;
use sim_storage::file::FileId;

use crate::error::RetrySite;

/// One retry of a failed read, as recorded in [`FaultReport::retry_trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryRecord {
    /// Which consumer retried.
    pub site: RetrySite,
    /// The file whose read failed.
    pub file: FileId,
    /// First file page of the failed read.
    pub page: u64,
    /// Attempt number being scheduled (1 = first retry).
    pub attempt: u32,
    /// Simulated instant the retry was scheduled, in nanoseconds.
    pub at_ns: u64,
}

/// Per-invocation fault-injection accounting: what was injected, how the
/// restore stack responded, and the deterministic retry trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Injected hard read errors observed by this invocation.
    pub injected_read_errors: u64,
    /// Injected short reads observed.
    pub injected_short_reads: u64,
    /// Injected latency spikes observed.
    pub injected_latency_spikes: u64,
    /// Injected detectable corruptions observed (handled as read errors).
    pub injected_corruptions: u64,
    /// Loader prefetch retries issued.
    pub loader_retries: u64,
    /// Guest-fault read retries issued.
    pub guest_fault_retries: u64,
    /// REAP read retries issued (working-set fetch + miss handler).
    pub reap_retries: u64,
    /// Injected fault-resolution delays (sim-mm's half of the plan).
    pub injected_mm_delays: u64,
    /// Total deterministic backoff the stack waited across all retries.
    pub backoff_wait: SimDuration,
    /// Every retry, in schedule order (byte-comparable across runs).
    pub retry_trace: Vec<RetryRecord>,
}

impl FaultReport {
    /// Total injections observed.
    pub fn injected_total(&self) -> u64 {
        self.injected_read_errors
            + self.injected_short_reads
            + self.injected_latency_spikes
            + self.injected_corruptions
    }

    /// Total retries issued.
    pub fn retries_total(&self) -> u64 {
        self.loader_retries + self.guest_fault_retries + self.reap_retries
    }

    /// Records one observed injection.
    pub fn record_injection(&mut self, kind: InjectedFaultKind) {
        match kind {
            InjectedFaultKind::ReadError => self.injected_read_errors += 1,
            InjectedFaultKind::ShortRead => self.injected_short_reads += 1,
            InjectedFaultKind::LatencySpike => self.injected_latency_spikes += 1,
            InjectedFaultKind::Corruption => self.injected_corruptions += 1,
        }
    }

    /// Records one retry and its backoff wait.
    pub fn record_retry(&mut self, rec: RetryRecord, wait: SimDuration) {
        match rec.site {
            RetrySite::Loader => self.loader_retries += 1,
            RetrySite::GuestFault => self.guest_fault_retries += 1,
            RetrySite::ReapMiss | RetrySite::ReapFetch => self.reap_retries += 1,
        }
        self.backoff_wait += wait;
        self.retry_trace.push(rec);
    }
}

/// Everything measured about one invocation.
#[derive(Clone, Debug, Default)]
pub struct InvocationReport {
    /// VM setup: VMM start, state restore, mapping setup, and (REAP) the
    /// blocking working-set fetch. Figure 1's gray bars.
    pub setup_time: SimDuration,
    /// Function invocation: request sent → reply received.
    pub invocation_time: SimDuration,
    /// Fault counts by class.
    pub anon_faults: u64,
    /// Minor faults (page cache hits).
    pub minor_faults: u64,
    /// Major faults (disk reads, including page-lock waits on in-flight
    /// reads).
    pub major_faults: u64,
    /// Fast faults on REAP-prefetched (host-PTE) pages.
    pub host_pte_faults: u64,
    /// Faults delivered to the user-level handler.
    pub uffd_faults: u64,
    /// Distribution of fault handling times (Figure 2).
    pub fault_hist: Log2Histogram,
    /// Total time the vCPU spent blocked on faults (Table 3's "page fault
    /// waiting time").
    pub fault_wait: SimDuration,
    /// Loader: time from invocation start to the last prefetch completion.
    pub fetch_time: SimDuration,
    /// Loader: pages prefetched (Table 3's "fetch size"; for REAP, the
    /// working-set file size).
    pub fetch_pages: u64,
    /// Pages read from disk due to guest faults (Table 3's "guest
    /// pagefault size").
    pub guest_fault_read_pages: u64,
    /// Disk read requests caused by guest faults (Figure 9's "# of block
    /// requests").
    pub fault_block_requests: u64,
    /// `mmap` calls made during setup.
    pub mmap_calls: u64,
    /// Anonymous (non-cache) pages resident at the end (memory footprint,
    /// §7.3).
    pub resident_pages: u64,
    /// Page-cache pages attributable to this invocation's files at the end.
    pub cache_pages: u64,
    /// True if the restore degraded (missing/corrupt artifacts forced a
    /// fallback toward vanilla demand paging).
    pub degraded: bool,
    /// Unique VM generation ID handed to the restored guest (§7.4): VMs
    /// cloned from one snapshot reseed their PRNGs from it.
    pub vm_generation_id: u64,
    /// Fault-injection accounting (all zero/empty on healthy runs).
    pub faults: FaultReport,
}

impl InvocationReport {
    /// End-to-end time (setup + invocation), the quantity plotted in
    /// Figures 6–8.
    pub fn total_time(&self) -> SimDuration {
        self.setup_time + self.invocation_time
    }

    /// Total guest page faults of all classes.
    pub fn total_faults(&self) -> u64 {
        self.anon_faults
            + self.minor_faults
            + self.major_faults
            + self.host_pte_faults
            + self.uffd_faults
    }

    /// Fetch size in bytes.
    pub fn fetch_bytes(&self) -> u64 {
        self.fetch_pages * PAGE_SIZE
    }

    /// Guest-fault read volume in bytes.
    pub fn guest_fault_read_bytes(&self) -> u64 {
        self.guest_fault_read_pages * PAGE_SIZE
    }

    /// Records one handled fault.
    pub fn record_fault(&mut self, kind: FaultKind, duration: SimDuration) {
        match kind {
            FaultKind::Anon => self.anon_faults += 1,
            FaultKind::Minor => self.minor_faults += 1,
            FaultKind::Major => self.major_faults += 1,
            FaultKind::HostPte => self.host_pte_faults += 1,
            FaultKind::Uffd => self.uffd_faults += 1,
        }
        self.fault_hist.record(duration);
        self.fault_wait += duration;
    }

    /// Memory footprint in pages (anonymous + attributable page cache,
    /// §7.3).
    pub fn footprint_pages(&self) -> u64 {
        self.resident_pages + self.cache_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let r = InvocationReport {
            setup_time: SimDuration::from_millis(50),
            invocation_time: SimDuration::from_millis(150),
            ..Default::default()
        };
        assert_eq!(r.total_time(), SimDuration::from_millis(200));
    }

    #[test]
    fn fault_recording() {
        let mut r = InvocationReport::default();
        r.record_fault(FaultKind::Anon, SimDuration::from_micros(2));
        r.record_fault(FaultKind::Major, SimDuration::from_micros(100));
        r.record_fault(FaultKind::Minor, SimDuration::from_micros(4));
        assert_eq!(r.total_faults(), 3);
        assert_eq!(r.anon_faults, 1);
        assert_eq!(r.major_faults, 1);
        assert_eq!(r.fault_wait, SimDuration::from_micros(106));
        assert_eq!(r.fault_hist.count(), 3);
    }

    #[test]
    fn fault_report_accounting() {
        let mut f = FaultReport::default();
        f.record_injection(InjectedFaultKind::ReadError);
        f.record_injection(InjectedFaultKind::ShortRead);
        f.record_injection(InjectedFaultKind::LatencySpike);
        f.record_injection(InjectedFaultKind::Corruption);
        assert_eq!(f.injected_total(), 4);
        f.record_retry(
            RetryRecord {
                site: RetrySite::Loader,
                file: FileId(1),
                page: 0,
                attempt: 1,
                at_ns: 10,
            },
            SimDuration::from_micros(200),
        );
        f.record_retry(
            RetryRecord {
                site: RetrySite::GuestFault,
                file: FileId(2),
                page: 8,
                attempt: 1,
                at_ns: 20,
            },
            SimDuration::from_micros(400),
        );
        f.record_retry(
            RetryRecord {
                site: RetrySite::ReapFetch,
                file: FileId(3),
                page: 0,
                attempt: 2,
                at_ns: 30,
            },
            SimDuration::from_micros(800),
        );
        assert_eq!(f.retries_total(), 3);
        assert_eq!(f.loader_retries, 1);
        assert_eq!(f.guest_fault_retries, 1);
        assert_eq!(f.reap_retries, 1);
        assert_eq!(f.backoff_wait, SimDuration::from_micros(1400));
        assert_eq!(f.retry_trace.len(), 3);
        // The whole report is comparable for same-seed determinism checks.
        assert_eq!(f, f.clone());
    }

    #[test]
    fn byte_conversions() {
        let r = InvocationReport {
            fetch_pages: 256,
            guest_fault_read_pages: 2,
            ..Default::default()
        };
        assert_eq!(r.fetch_bytes(), 1 << 20);
        assert_eq!(r.guest_fault_read_bytes(), 8192);
    }
}
