//! Working sets and working-set groups.
//!
//! §4.3: "FaaSnap ... divides the working set pages into several working
//! set groups by their access order: e.g., the first N accessed pages are
//! assigned group 1, the next N accessed pages are assigned group 2, etc.
//! ... we find N = 1024 works well across the function benchmarks."
//!
//! Two working-set representations coexist:
//!
//! - [`WorkingSet`] — FaaSnap's: pages in the order they *appeared in
//!   `mincore` scans* (so readahead-fetched pages are included), carrying
//!   group numbers.
//! - [`ReapWorkingSet`] — REAP's: pages in first-*fault* order, recorded
//!   via `userfaultfd`; no groups (REAP fetches the whole set up front).

use std::collections::BTreeSet;

use sim_mm::addr::PageNum;

/// Pages per working-set group (§4.3).
pub const GROUP_SIZE: u64 = 1024;

/// FaaSnap's grouped working set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkingSet {
    /// Pages in scan-appearance order.
    pages: Vec<PageNum>,
    /// Pages per group.
    group_size: u64,
}

impl WorkingSet {
    /// Creates an empty working set with the standard group size.
    pub fn new() -> Self {
        WorkingSet {
            pages: Vec::new(),
            group_size: GROUP_SIZE,
        }
    }

    /// Creates an empty working set with a custom group size (for the
    /// sensitivity experiments).
    pub fn with_group_size(group_size: u64) -> Self {
        assert!(group_size > 0);
        WorkingSet {
            pages: Vec::new(),
            group_size,
        }
    }

    /// Appends newly observed pages (one `mincore` scan's delta).
    pub fn extend(&mut self, new_pages: &[PageNum]) {
        self.pages.extend_from_slice(new_pages);
    }

    /// Pages in scan order.
    pub fn pages(&self) -> &[PageNum] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Group size in use.
    pub fn group_size(&self) -> u64 {
        self.group_size
    }

    /// Number of groups.
    pub fn group_count(&self) -> u64 {
        self.len().div_ceil(self.group_size)
    }

    /// Group number of the page at scan position `idx` (0-based groups).
    pub fn group_of_index(&self, idx: u64) -> u32 {
        (idx / self.group_size) as u32
    }

    /// `(page, group)` pairs in scan order.
    pub fn pages_with_groups(&self) -> impl Iterator<Item = (PageNum, u32)> + '_ {
        self.pages
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, (i as u64 / self.group_size) as u32))
    }

    /// The set of pages, for membership tests (ordered, so iterating it
    /// is deterministic).
    pub fn page_set(&self) -> BTreeSet<PageNum> {
        self.pages.iter().copied().collect()
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len() * sim_core::units::PAGE_SIZE
    }
}

/// REAP's fault-order working set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReapWorkingSet {
    pages: Vec<PageNum>,
}

impl ReapWorkingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a first fault on `page` (caller ensures first-ness).
    pub fn record(&mut self, page: PageNum) {
        self.pages.push(page);
    }

    /// Pages in fault order.
    pub fn pages(&self) -> &[PageNum] {
        &self.pages
    }

    /// Number of pages.
    pub fn len(&self) -> u64 {
        self.pages.len() as u64
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.len() * sim_core::units::PAGE_SIZE
    }

    /// The set of pages, for membership tests (ordered, so iterating it
    /// is deterministic).
    pub fn page_set(&self) -> BTreeSet<PageNum> {
        self.pages.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_assigned_by_scan_order() {
        let mut ws = WorkingSet::with_group_size(4);
        ws.extend(&[10, 11, 12]);
        ws.extend(&[50, 51, 52, 53, 54]);
        assert_eq!(ws.len(), 8);
        assert_eq!(ws.group_count(), 2);
        let groups: Vec<u32> = ws.pages_with_groups().map(|(_, g)| g).collect();
        assert_eq!(groups, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(ws.group_of_index(0), 0);
        assert_eq!(ws.group_of_index(7), 1);
    }

    #[test]
    fn default_group_size_is_1024() {
        let ws = WorkingSet::new();
        assert_eq!(ws.group_size(), 1024);
    }

    #[test]
    fn empty_and_bytes() {
        let mut ws = WorkingSet::new();
        assert!(ws.is_empty());
        assert_eq!(ws.group_count(), 0);
        ws.extend(&[1, 2]);
        assert_eq!(ws.bytes(), 8192);
    }

    #[test]
    fn reap_set_preserves_fault_order() {
        let mut r = ReapWorkingSet::new();
        r.record(100);
        r.record(5);
        r.record(77);
        assert_eq!(r.pages(), &[100, 5, 77]);
        assert_eq!(r.len(), 3);
        assert!(r.page_set().contains(&5));
    }

    #[test]
    fn page_set_membership() {
        let mut ws = WorkingSet::new();
        ws.extend(&[3, 9]);
        let s = ws.page_set();
        assert!(s.contains(&3) && s.contains(&9) && !s.contains(&4));
    }
}
