//! The restore strategy taxonomy.
//!
//! The evaluation compares four systems (§3.1, §6.1) plus FaaSnap's
//! internal ablations (§6.5, Figure 9):
//!
//! - **Warm** — a live VM that served a previous invocation: no setup, the
//!   guest's previously touched pages are resident, memory is anonymous.
//! - **Vanilla** (called *Firecracker* in the paper) — restore from the
//!   memory file with one whole-file mapping; pure demand paging.
//! - **Cached** — Vanilla with the memory file pre-loaded into the page
//!   cache ("not practical in real-world deployments ... a useful
//!   reference point").
//! - **Reap** — blocking working-set prefetch + `userfaultfd` handling.
//! - **FaaSnap** — concurrent paging + working-set groups + host page
//!   recording + per-region mapping + loading-set file, individually
//!   switchable for the Figure 9 ablation.

use std::fmt;

/// Which FaaSnap optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaasnapConfig {
    /// §4.2: loader prefetches concurrently with guest execution. (All
    /// Figure 9 ablation steps include this; turning it off degenerates
    /// to Vanilla.)
    pub concurrent_paging: bool,
    /// §4.3–4.5: per-region mapping (zero→anon, non-zero→memory file) and
    /// group-ordered loading. Without it the loader reads the working set
    /// in address order over a whole-file mapping.
    pub per_region_mapping: bool,
    /// §4.6–4.7: compact loading-set file read sequentially. Requires
    /// `per_region_mapping`.
    pub loading_set_file: bool,
    /// §4.8: hierarchical overlapping mmaps (vs. flat per-piece mapping).
    pub hierarchical_mmap: bool,
}

impl FaasnapConfig {
    /// Full FaaSnap (the paper's headline configuration).
    pub fn full() -> Self {
        FaasnapConfig {
            concurrent_paging: true,
            per_region_mapping: true,
            loading_set_file: true,
            hierarchical_mmap: true,
        }
    }

    /// Figure 9's "concurrent paging" step: loader only, vanilla mapping,
    /// address-order reads from the memory file.
    pub fn concurrent_paging_only() -> Self {
        FaasnapConfig {
            concurrent_paging: true,
            per_region_mapping: false,
            loading_set_file: false,
            hierarchical_mmap: true,
        }
    }

    /// Figure 9's "per-region" step: per-region mapping + group-ordered
    /// loading from the memory file, but no compact loading-set file.
    pub fn per_region() -> Self {
        FaasnapConfig {
            concurrent_paging: true,
            per_region_mapping: true,
            loading_set_file: false,
            hierarchical_mmap: true,
        }
    }

    /// Every valid configuration — the full Figure 9 ablation lattice.
    ///
    /// The validity rules (`loading_set_file ⇒ per_region_mapping`, and
    /// any optimization ⇒ `concurrent_paging`) admit four optimization
    /// rungs, each with `hierarchical_mmap` on or off: 8 configs total,
    /// enumerated in (rung, hierarchical) order.
    pub fn lattice() -> Vec<FaasnapConfig> {
        let rungs = [
            (false, false, false), // no optimizations (Vanilla-equivalent)
            (true, false, false),  // concurrent paging
            (true, true, false),   // + per-region mapping
            (true, true, true),    // + loading-set file (full FaaSnap)
        ];
        let mut out = Vec::with_capacity(8);
        for (concurrent_paging, per_region_mapping, loading_set_file) in rungs {
            for hierarchical_mmap in [false, true] {
                out.push(FaasnapConfig {
                    concurrent_paging,
                    per_region_mapping,
                    loading_set_file,
                    hierarchical_mmap,
                });
            }
        }
        out
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.loading_set_file && !self.per_region_mapping {
            return Err("loading_set_file requires per_region_mapping".into());
        }
        if !self.concurrent_paging && (self.per_region_mapping || self.loading_set_file) {
            return Err("FaaSnap variants all build on concurrent paging".into());
        }
        Ok(())
    }
}

/// How a VM is provided for an invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreStrategy {
    /// Live warm VM (no restore).
    Warm,
    /// Vanilla Firecracker snapshot restore (demand paging).
    Vanilla,
    /// Vanilla with the memory file pre-cached (reference).
    Cached,
    /// REAP: blocking working-set prefetch + userfaultfd.
    Reap,
    /// FaaSnap with the given optimization set.
    FaaSnap(FaasnapConfig),
}

impl RestoreStrategy {
    /// Full-FaaSnap shorthand.
    pub fn faasnap() -> Self {
        RestoreStrategy::FaaSnap(FaasnapConfig::full())
    }

    /// The four headline systems in the paper's plotting order.
    pub fn headline() -> [RestoreStrategy; 4] {
        [
            RestoreStrategy::Vanilla,
            RestoreStrategy::Reap,
            RestoreStrategy::faasnap(),
            RestoreStrategy::Cached,
        ]
    }

    /// Figure 9's ablation ladder.
    pub fn ablation_ladder() -> [RestoreStrategy; 4] {
        [
            RestoreStrategy::Vanilla,
            RestoreStrategy::FaaSnap(FaasnapConfig::concurrent_paging_only()),
            RestoreStrategy::FaaSnap(FaasnapConfig::per_region()),
            RestoreStrategy::faasnap(),
        ]
    }

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            RestoreStrategy::Warm => "Warm",
            RestoreStrategy::Vanilla => "Firecracker",
            RestoreStrategy::Cached => "Cached",
            RestoreStrategy::Reap => "REAP",
            RestoreStrategy::FaaSnap(c) => {
                if c.loading_set_file {
                    "FaaSnap"
                } else if c.per_region_mapping {
                    "per-region"
                } else {
                    "con-paging"
                }
            }
        }
    }
}

impl fmt::Display for RestoreStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(FaasnapConfig::full().validate().is_ok());
        assert!(FaasnapConfig::concurrent_paging_only().validate().is_ok());
        assert!(FaasnapConfig::per_region().validate().is_ok());
    }

    #[test]
    fn inconsistent_configs_rejected() {
        let mut c = FaasnapConfig::full();
        c.per_region_mapping = false;
        assert!(c.validate().is_err());
        let mut c = FaasnapConfig::full();
        c.concurrent_paging = false;
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(RestoreStrategy::Vanilla.label(), "Firecracker");
        assert_eq!(RestoreStrategy::faasnap().label(), "FaaSnap");
        assert_eq!(
            RestoreStrategy::FaaSnap(FaasnapConfig::concurrent_paging_only()).label(),
            "con-paging"
        );
        assert_eq!(
            RestoreStrategy::FaaSnap(FaasnapConfig::per_region()).label(),
            "per-region"
        );
        assert_eq!(format!("{}", RestoreStrategy::Warm), "Warm");
    }

    #[test]
    fn lattice_is_exactly_the_valid_configs() {
        let lattice = FaasnapConfig::lattice();
        assert_eq!(lattice.len(), 8);
        // Every member validates; no duplicates.
        for (i, c) in lattice.iter().enumerate() {
            assert!(c.validate().is_ok(), "lattice member {i} invalid: {c:?}");
            for other in &lattice[i + 1..] {
                assert_ne!(c, other);
            }
        }
        // Exhaustive: every valid combination of the four flags is in the
        // lattice, every invalid one is not.
        for bits in 0u8..16 {
            let c = FaasnapConfig {
                concurrent_paging: bits & 1 != 0,
                per_region_mapping: bits & 2 != 0,
                loading_set_file: bits & 4 != 0,
                hierarchical_mmap: bits & 8 != 0,
            };
            assert_eq!(c.validate().is_ok(), lattice.contains(&c), "{c:?}");
        }
        // The presets are all members.
        assert!(lattice.contains(&FaasnapConfig::full()));
        assert!(lattice.contains(&FaasnapConfig::concurrent_paging_only()));
        assert!(lattice.contains(&FaasnapConfig::per_region()));
    }

    #[test]
    fn ladder_progresses() {
        let l = RestoreStrategy::ablation_ladder();
        assert_eq!(l[0].label(), "Firecracker");
        assert_eq!(l[3].label(), "FaaSnap");
    }
}
