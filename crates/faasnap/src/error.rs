//! Typed restore-stack errors.
//!
//! The restore stack's failure policy is *fail closed*: an injected (or,
//! in a real deployment, physical) storage fault either heals within the
//! bounded retry budget, degrades to a strictly-safer strategy that still
//! hands the guest byte-identical snapshot contents, or surfaces as a
//! [`RestoreError`] — never as silently corrupt guest memory.

use std::fmt;

use sim_storage::file::FileId;

/// Where in the restore stack a retried read lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RetrySite {
    /// Kernel demand read on a guest fault (plus readahead).
    GuestFault,
    /// FaaSnap daemon loader prefetch.
    Loader,
    /// REAP user-level handler read for an out-of-set fault.
    ReapMiss,
    /// REAP's blocking working-set fetch at setup.
    ReapFetch,
}

impl RetrySite {
    /// Stable label for metrics and retry traces.
    pub fn label(self) -> &'static str {
        match self {
            RetrySite::GuestFault => "guest_fault",
            RetrySite::Loader => "loader",
            RetrySite::ReapMiss => "reap_miss",
            RetrySite::ReapFetch => "reap_fetch",
        }
    }
}

impl fmt::Display for RetrySite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A restore that could not complete safely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// A read kept failing past its retry budget. The invocation is
    /// abandoned with the guest untouched past the last installed page.
    ReadRetriesExhausted {
        /// Which consumer was retrying.
        site: RetrySite,
        /// The file whose read failed.
        file: FileId,
        /// First file page of the failing read.
        page: u64,
        /// Attempts made (initial read + retries).
        attempts: u32,
    },
    /// The record phase finished without producing a required artifact
    /// (e.g. the recording run was itself aborted by a storage fault).
    RecordIncomplete {
        /// Which artifact is missing.
        what: &'static str,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::ReadRetriesExhausted {
                site,
                file,
                page,
                attempts,
            } => write!(
                f,
                "read retries exhausted at {site}: file {} page {page} failed {attempts} attempts",
                file.0
            ),
            RestoreError::RecordIncomplete { what } => {
                write!(f, "record phase incomplete: missing {what}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = RestoreError::ReadRetriesExhausted {
            site: RetrySite::Loader,
            file: FileId(3),
            page: 128,
            attempts: 4,
        };
        let s = e.to_string();
        assert!(s.contains("loader"));
        assert!(s.contains("file 3"));
        assert!(s.contains("page 128"));
        assert!(s.contains("4 attempts"));
        assert!(RestoreError::RecordIncomplete {
            what: "working set"
        }
        .to_string()
        .contains("working set"));
    }

    #[test]
    fn site_labels_are_stable() {
        assert_eq!(RetrySite::GuestFault.label(), "guest_fault");
        assert_eq!(RetrySite::ReapFetch.to_string(), "reap_fetch");
    }
}
