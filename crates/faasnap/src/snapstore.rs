//! Family-aware snapshot recording over the content-addressed store.
//!
//! The record phase produces one full memory image per (function, label)
//! pair. Instances of the same function *family* differ only in the pages
//! the record invocation dirtied — runtime, guest kernel, and heap layout
//! pages are identical. [`FamilyStore`] exploits that: the first record of
//! a family emits a **base layer** (its non-zero chunks, content-hashed
//! into the store); every later record emits a **delta layer** holding
//! only the chunks that differ from the base, and the snapshot resolves
//! through the `[base, delta]` chain. Identical chunks — zero pages,
//! shared runtime pages, even cross-family coincidences — are stored
//! once, host-wide.
//!
//! The store also owns the *physical* layout: each distinct chunk gets a
//! stable slot in a single chunk-store file, and [`FamilyStore::layout`]
//! renders any snapshot as a [`ChunkedFile`] extent map. Handing that map
//! to [`crate::runtime::Host::map_chunked_file`] turns restore reads of
//! the logical memory file into per-chunk reads of the store file, with
//! device timing and fault injection operating on the deduplicated
//! layout.

use std::collections::BTreeMap;

use faasnap_store::{ChunkHash, LayerId, SnapshotId, SnapshotStore, StoreConfig, StoreError};
use sim_core::detmap::DetMap;
use sim_core::units::PAGE_SIZE;
use sim_storage::chunked::{ChunkExtent, ChunkedFile};
use sim_storage::file::{DeviceId, FileId, FileKind, SimFs};
use sim_vm::guest_memory::GuestMemory;

/// Per-family base bookkeeping.
#[derive(Clone, Debug)]
struct FamilyBase {
    /// The shared base layer.
    layer: LayerId,
    /// A base-only snapshot deltas are computed against. Carries zero
    /// logical bytes; exists so the base stays resolvable (and resident)
    /// while the family has members.
    anchor: SnapshotId,
    /// Named snapshots currently composed over this base.
    members: u64,
}

/// One recorded snapshot as the store tracks it.
#[derive(Clone, Debug)]
pub struct NamedSnapshot {
    /// Owning family (function name).
    pub family: String,
    /// Store identity.
    pub id: SnapshotId,
    /// Guest memory size in pages.
    pub total_pages: u64,
    /// True if this snapshot rides a delta layer (not the family's first).
    pub is_delta: bool,
}

/// Base+delta snapshot recording with host-wide chunk dedup.
#[derive(Clone, Debug)]
pub struct FamilyStore {
    store: SnapshotStore,
    /// The single physical extent file all chunks live in.
    store_file: FileId,
    bases: BTreeMap<String, FamilyBase>,
    named: BTreeMap<String, NamedSnapshot>,
    /// Chunk → physical slot. Append-only: a slot, once assigned, is
    /// never reused, so every layout ever handed out stays valid and the
    /// placement is a pure function of insertion order (deterministic).
    placements: DetMap<ChunkHash, u64>,
    next_slot: u64,
}

impl FamilyStore {
    /// Creates an empty store, registering its chunk extent file on
    /// `device`.
    pub fn new(cfg: StoreConfig, fs: &mut SimFs, device: DeviceId) -> FamilyStore {
        let store_file = fs.create("chunkstore", FileKind::ChunkStore, 0, device);
        FamilyStore {
            store: SnapshotStore::new(cfg),
            store_file,
            bases: BTreeMap::new(),
            named: BTreeMap::new(),
            placements: DetMap::new(),
            next_slot: 0,
        }
    }

    /// The physical chunk extent file.
    pub fn store_file(&self) -> FileId {
        self.store_file
    }

    /// Records `memory` as snapshot `name` in `family`: a base layer if
    /// the family is new, a dirty-chunk delta over the family base
    /// otherwise. Chunk placements are assigned and the store file grown
    /// via `fs`.
    pub fn record(
        &mut self,
        fs: &mut SimFs,
        family: &str,
        name: &str,
        memory: &GuestMemory,
    ) -> Result<SnapshotId, StoreError> {
        let logical_bytes = memory.total_pages() * PAGE_SIZE;
        let (id, is_delta) = match self.bases.get_mut(family) {
            Some(base) => {
                let delta = self.store.put_delta_layer(base.anchor, memory.tokens())?;
                let id = self
                    .store
                    .compose_snapshot(&[base.layer, delta], logical_bytes)?;
                base.members += 1;
                (id, true)
            }
            None => {
                let layer = self.store.put_base_layer(memory.tokens());
                let anchor = self.store.compose_snapshot(&[layer], 0)?;
                let id = self.store.compose_snapshot(&[layer], logical_bytes)?;
                self.bases.insert(
                    family.to_string(),
                    FamilyBase {
                        layer,
                        anchor,
                        members: 1,
                    },
                );
                (id, false)
            }
        };
        // Give every chunk the snapshot resolves to a physical slot.
        let chunk_pages = self.store.config().chunk_pages;
        for hash in self.store.resolve(id)?.into_values() {
            let next = &mut self.next_slot;
            self.placements.or_insert_with(hash, || {
                let slot = *next;
                *next += 1;
                slot
            });
        }
        fs.set_len_pages(self.store_file, self.next_slot * chunk_pages);
        self.named.insert(
            name.to_string(),
            NamedSnapshot {
                family: family.to_string(),
                id,
                total_pages: memory.total_pages(),
                is_delta,
            },
        );
        Ok(id)
    }

    /// Drops snapshot `name`, releasing its layers and chunks. When the
    /// family's last member goes, the base anchor goes with it and the
    /// base chunks are reclaimed too.
    pub fn drop_named(&mut self, name: &str) -> Result<(), StoreError> {
        let entry = self
            .named
            .remove(name)
            .ok_or_else(|| StoreError::Invariant(format!("unknown snapshot name {name}")))?;
        self.store.drop_snapshot(entry.id)?;
        let emptied = match self.bases.get_mut(&entry.family) {
            Some(base) => {
                base.members -= 1;
                base.members == 0
            }
            None => false,
        };
        if emptied {
            if let Some(base) = self.bases.remove(&entry.family) {
                self.store.drop_snapshot(base.anchor)?;
            }
        }
        Ok(())
    }

    /// The store's record of snapshot `name`, if present.
    pub fn named(&self, name: &str) -> Option<&NamedSnapshot> {
        self.named.get(name)
    }

    /// Rebuilds snapshot `name`'s full guest memory through its layer
    /// chain. Byte-equivalent to the memory the record phase captured.
    pub fn materialize(&self, name: &str) -> Result<GuestMemory, StoreError> {
        let entry = self
            .named
            .get(name)
            .ok_or_else(|| StoreError::Invariant(format!("unknown snapshot name {name}")))?;
        let mut memory = GuestMemory::new(entry.total_pages);
        for (page, token) in self.store.materialize(entry.id)? {
            memory.write(page, token);
        }
        Ok(memory)
    }

    /// Renders snapshot `name` as a logical→physical extent map over the
    /// chunk-store file, for store-backed reads through
    /// [`crate::runtime::Host::map_chunked_file`].
    pub fn layout(&self, name: &str) -> Result<ChunkedFile, StoreError> {
        let entry = self
            .named
            .get(name)
            .ok_or_else(|| StoreError::Invariant(format!("unknown snapshot name {name}")))?;
        let chunk_pages = self.store.config().chunk_pages;
        let mut cf = ChunkedFile::new(chunk_pages);
        for (idx, hash) in self.store.resolve(entry.id)? {
            let slot = self
                .placements
                .get(&hash)
                .copied()
                .ok_or(StoreError::UnknownChunk(hash))?;
            cf.map_chunk(
                idx,
                ChunkExtent {
                    file: self.store_file,
                    page: slot * chunk_pages,
                },
            );
        }
        Ok(cf)
    }

    /// Physical bytes resident (each chunk once).
    pub fn unique_bytes(&self) -> u64 {
        self.store.unique_bytes()
    }

    /// Logical bytes across resident named snapshots (what whole-file
    /// registries would charge).
    pub fn logical_bytes(&self) -> u64 {
        self.store.logical_bytes()
    }

    /// Logical / unique.
    pub fn dedup_ratio(&self) -> f64 {
        self.store.dedup_ratio()
    }

    /// Resident named snapshots.
    pub fn resident(&self) -> usize {
        self.named.len()
    }

    /// The underlying store (read-only, for accounting and validation).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Host;
    use sim_storage::device::{IoKind, IoRequest};
    use sim_storage::faults::{FaultPlan, FaultRule, InjectedFaultKind};
    use sim_storage::profiles::DiskProfile;

    fn cfg() -> StoreConfig {
        StoreConfig { chunk_pages: 8 }
    }

    #[test]
    fn base_then_delta_shares_chunks() {
        let mut fs = SimFs::new();
        let mut st = FamilyStore::new(cfg(), &mut fs, DeviceId(0));
        let mut a = GuestMemory::new(256);
        for p in 0..64 {
            a.write(p, 1000 + p);
        }
        st.record(&mut fs, "f", "f.a", &a).expect("record a");
        let base_bytes = st.unique_bytes();

        // Second instance: same base pages, 8 extra dirty pages (1 chunk).
        let mut b = a.clone();
        for p in 128..136 {
            b.write(p, 2000 + p);
        }
        st.record(&mut fs, "f", "f.b", &b).expect("record b");
        assert_eq!(
            st.unique_bytes() - base_bytes,
            8 * PAGE_SIZE,
            "delta adds exactly one dirty chunk"
        );
        assert!(st.named("f.b").expect("named").is_delta);
        assert!(!st.named("f.a").expect("named").is_delta);
        assert!(st.dedup_ratio() > 1.5, "ratio {}", st.dedup_ratio());
        st.store().debug_validate().expect("valid");
    }

    #[test]
    fn materialize_round_trips_exactly() {
        let mut fs = SimFs::new();
        let mut st = FamilyStore::new(cfg(), &mut fs, DeviceId(0));
        let mut a = GuestMemory::new(256);
        for p in (0..256).step_by(3) {
            a.write(p, p * 7 + 1);
        }
        st.record(&mut fs, "f", "f.a", &a).expect("record");
        let mut b = a.clone();
        b.write(5, 0xBEEF);
        b.zero(9); // dirtied back to zero — needs a tombstone
        st.record(&mut fs, "f", "f.b", &b).expect("record");
        assert_eq!(
            st.materialize("f.a").expect("mat a").checksum(),
            a.checksum()
        );
        assert_eq!(
            st.materialize("f.b").expect("mat b").checksum(),
            b.checksum()
        );
    }

    #[test]
    fn dropping_last_member_reclaims_base() {
        let mut fs = SimFs::new();
        let mut st = FamilyStore::new(cfg(), &mut fs, DeviceId(0));
        let mut a = GuestMemory::new(256);
        a.write(0, 1);
        st.record(&mut fs, "f", "f.a", &a).expect("record");
        let mut b = a.clone();
        b.write(200, 2);
        st.record(&mut fs, "f", "f.b", &b).expect("record");
        st.drop_named("f.b").expect("drop b");
        assert!(st.unique_bytes() > 0, "base still held by f.a");
        st.drop_named("f.a").expect("drop a");
        assert_eq!(st.unique_bytes(), 0, "last member reclaims base");
        assert_eq!(st.resident(), 0);
        st.store().debug_validate().expect("valid");
    }

    #[test]
    fn store_backed_reads_resolve_through_host_choke_point() {
        let mut host = Host::new(DiskProfile::nvme_c5d(), 3);
        let dev = host.primary_device();
        let mut st = FamilyStore::new(cfg(), &mut host.fs, dev);
        let mut mem = GuestMemory::new(64);
        for p in 0..16 {
            mem.write(p, 42 + p);
        }
        st.record(&mut host.fs, "f", "f.a", &mem).expect("record");
        // A stand-in logical memory file, backed by the store layout.
        let mem_file = host.fs.create(
            "f.a.mem",
            sim_storage::file::FileKind::SnapshotMemory,
            64,
            dev,
        );
        let layout = st.layout("f.a").expect("layout");
        host.map_chunked_file(mem_file, layout);

        // Fault injection keyed on the *store file* fires for logical
        // reads of the mapped file.
        let mut plan = FaultPlan::new(1);
        plan.push_rule(FaultRule::on_file(
            st.store_file(),
            InjectedFaultKind::ReadError,
            1,
        ));
        host.disks[0].set_fault_plan(plan);
        let c = host.submit_checked(
            sim_core::time::SimTime::ZERO,
            IoRequest {
                file: mem_file,
                page: 0,
                pages: 16,
                kind: IoKind::FaultRead,
            },
        );
        assert_eq!(c.fault.map(|f| f.kind), Some(InjectedFaultKind::ReadError));
        // Device stats show traffic against the store file's layout, and a
        // hole region costs nothing.
        let before = host.disks[0].stats().requests;
        let c2 = host.submit_checked(
            sim_core::time::SimTime::ZERO,
            IoRequest {
                file: mem_file,
                page: 32,
                pages: 8,
                kind: IoKind::FaultRead,
            },
        );
        assert!(c2.fault.is_none());
        assert_eq!(
            host.disks[0].stats().requests,
            before,
            "unmapped (all-zero) chunks cost no I/O"
        );
    }
}
