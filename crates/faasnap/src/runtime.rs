//! The discrete-event invocation runtime.
//!
//! One [`Host`] (disks, page cache, in-flight I/O registry, CPU pool) can
//! run any number of VMs concurrently (bursty workloads share the cache
//! and the disk queue, §6.6). Each VM executes its function trace under a
//! [`RestoreStrategy`]; the runtime translates vCPU steps into fault
//! plans, disk I/O, loader prefetches, REAP handler services, and — in
//! the record phase — `mincore` working-set scans.
//!
//! Time lines up with the paper's measurement boundaries:
//!
//! - `t = 0`: the invocation request reaches the daemon. The FaaSnap
//!   loader starts prefetching *immediately* (§4.2: the loader lives in
//!   the daemon "so that it can start prefetching immediately when the
//!   daemon receives the invocation request").
//! - `setup_time`: VMM start + state restore + mapping setup (+ REAP's
//!   blocking working-set fetch). The vCPU starts here.
//! - `done`: the function replies; `invocation_time = done − setup_time`.

use std::rc::Rc;

use faasnap_obs::{Metrics, SelfProfile, TraceContext, Tracer};
use sim_core::engine::{Engine, Scheduler, World};
use sim_core::json::Value;
use sim_core::time::{SimDuration, SimTime};
use sim_mm::addr::{PageNum, PageRange};
use sim_mm::costs::FaultCosts;
use sim_mm::fault::{FaultKind, FaultOutcome, FaultResolver};
use sim_mm::page_table::{PageState, PageTable};
use sim_mm::share::SharedPages;
use sim_mm::userfaultfd::UffdRegistry;
use sim_mm::vma::{AddressSpace, Resolved};
use sim_storage::chunked::{merge_completions, ChunkedFile};
use sim_storage::device::{Disk, IoCompletion, IoKind, IoRequest};
use sim_storage::faults::{InjectedFault, InjectedFaultKind};
use sim_storage::file::{DeviceId, FileId, SimFs};
use sim_storage::profiles::DiskProfile;
use sim_vm::boot::BootModel;
use sim_vm::guest_kernel::GuestKernel;
use sim_vm::guest_memory::GuestMemory;
use sim_vm::overlay::{CowMemory, GuestMem, VmMemory};
use sim_vm::trace::Trace;
use sim_vm::vcpu::{Step, Vcpu};

use crate::error::{RestoreError, RetrySite};
use crate::loader::LoaderPlan;
use crate::loadingset::LoadingSet;
use crate::mapper;
use crate::reap::ReapHandler;
use crate::record::{MincoreRecorder, UffdTracker};
use crate::report::{InvocationReport, RetryRecord};
use crate::strategy::{FaasnapConfig, RestoreStrategy};
use crate::wset::{ReapWorkingSet, WorkingSet};

/// Interval of the daemon's RSS poll during the record phase (§5 polls
/// procfs; 2 ms keeps scan pacing responsive at negligible cost).
const MINCORE_POLL_INTERVAL: SimDuration = SimDuration::from_millis(2);

/// Base of the deterministic exponential backoff between read retries.
const RETRY_BACKOFF_BASE_US: u64 = 200;
/// Retry budget for loader prefetch reads. Exhaustion degrades (the
/// loader is an optimization; prefetch failure is never fatal).
const MAX_LOADER_RETRIES: u32 = 3;
/// Retry budget for kernel demand reads on guest faults. Exhaustion
/// fails the invocation closed: the guest never sees a partial page.
const MAX_FAULT_RETRIES: u32 = 4;
/// Retry budget for REAP reads (blocking working-set fetch and the
/// user-level miss handler).
const MAX_REAP_RETRIES: u32 = 3;

/// Deterministic (sim-time) backoff before retry number `attempt + 1`.
fn backoff(attempt: u32) -> SimDuration {
    SimDuration::from_micros(RETRY_BACKOFF_BASE_US << attempt.min(10))
}

/// How a checked disk read ended, from its consumer's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum IoFate {
    /// Every requested page transferred (latency spikes land here: slow
    /// but complete).
    Ok,
    /// No usable data: hard read error, or a corruption that the
    /// consumer's checksum detected and discarded.
    Failed,
    /// Only the first `served` pages transferred.
    Short { served: u64 },
}

fn fate_of(fault: Option<InjectedFault>) -> IoFate {
    match fault {
        None => IoFate::Ok,
        Some(f) => match f.kind {
            InjectedFaultKind::LatencySpike => IoFate::Ok,
            InjectedFaultKind::ReadError | InjectedFaultKind::Corruption => IoFate::Failed,
            InjectedFaultKind::ShortRead => IoFate::Short {
                served: f.served_pages,
            },
        },
    }
}

/// Processor-sharing CPU pool: compute segments stretch when more
/// runnable vCPUs than cores exist (the 64-way burst bottleneck of §6.6).
#[derive(Clone, Debug)]
pub struct CpuPool {
    cores: u32,
    active: u32,
}

impl CpuPool {
    /// Creates a pool with `cores` physical cores (c5d.metal has 96).
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0);
        CpuPool { cores, active: 0 }
    }

    /// Current slowdown factor for a newly started compute segment.
    pub fn stretch(&self) -> f64 {
        if self.active <= self.cores {
            1.0
        } else {
            self.active as f64 / self.cores as f64
        }
    }

    fn begin(&mut self) {
        self.active += 1;
    }

    fn end(&mut self) {
        debug_assert!(self.active > 0);
        self.active -= 1;
    }

    /// Currently runnable tasks.
    pub fn active(&self) -> u32 {
        self.active
    }
}

/// Shared host state.
#[derive(Clone, Debug)]
pub struct Host {
    /// Simulated file registry.
    pub fs: SimFs,
    /// Block devices, indexed by `DeviceId`.
    pub disks: Vec<Disk>,
    /// Snapshot-keyed shared page state: the page cache and in-flight
    /// read registry keyed by canonical chunk identity, shared by all
    /// VMs (fork siblings share hits and deduplicate reads through it).
    pub pages: SharedPages,
    /// Fault cost model.
    pub costs: FaultCosts,
    /// Boot/setup timing model.
    pub boot: BootModel,
    /// CPU pool.
    pub cpu: CpuPool,
    /// Trace handle shared by every layer on this host (disabled by
    /// default: emissions cost one `Option` branch).
    pub tracer: Tracer,
    /// Metrics registry shared by every layer on this host.
    pub metrics: Metrics,
    /// Self-profiling handle (simulator-effort counters) shared by every
    /// layer on this host.
    pub selfprof: SelfProfile,
    seed: u64,
    vmgenid: u64,
}

impl Host {
    /// Creates a host with one disk of the given profile and the paper's
    /// 192 GB / 96-core c5d.metal shape.
    pub fn new(profile: DiskProfile, seed: u64) -> Self {
        Host {
            fs: SimFs::new(),
            disks: vec![Disk::new(profile, seed ^ 0xD15C)],
            pages: SharedPages::new(40 * 1024 * 1024), // 160 GB of page cache
            costs: FaultCosts::default(),
            boot: BootModel::default(),
            cpu: CpuPool::new(96),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            selfprof: SelfProfile::disabled(),
            seed,
            vmgenid: 0,
        }
    }

    /// Adds another device (e.g. remote EBS next to the local NVMe).
    pub fn add_device(&mut self, profile: DiskProfile) -> DeviceId {
        let id = DeviceId(self.disks.len() as u32);
        self.disks
            .push(Disk::new(profile, self.seed ^ 0xD15C ^ id.0 as u64));
        id
    }

    /// The primary device.
    pub fn primary_device(&self) -> DeviceId {
        DeviceId(0)
    }

    /// Drops the entire page cache (between-test hygiene, §6.1).
    pub fn drop_caches(&mut self) {
        self.pages.drop_cache();
    }

    /// Issues a fresh VM generation ID — the §7.4 mitigation for clones
    /// restored from one snapshot ("using a special device to provide
    /// unique VM IDs to the restored VMs"): guests reseed their PRNGs
    /// from it, so identical restored states never share randomness.
    pub fn next_vmgenid(&mut self) -> u64 {
        self.vmgenid += 1;
        self.vmgenid
    }

    /// Derives a fresh deterministic seed.
    pub fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.seed
    }

    fn disk_of_file(&mut self, file: FileId) -> &mut Disk {
        let dev = self.fs.meta(file).device;
        &mut self.disks[dev.0 as usize]
    }

    /// Backs a logical file with a chunk-store extent map: subsequent
    /// reads of it resolve through the store's physical layout.
    pub fn map_chunked_file(&mut self, file: FileId, map: ChunkedFile) {
        self.pages.share_mut().map_file(file, map);
    }

    /// Removes a file's chunk-store backing (reads go direct again).
    pub fn unmap_chunked_file(&mut self, file: FileId) -> Option<ChunkedFile> {
        self.pages.share_mut().unmap_file(file)
    }

    /// The chunk-store backing of a file, if any.
    pub fn chunked_file(&self, file: FileId) -> Option<&ChunkedFile> {
        self.pages.share().chunked(file)
    }

    /// Submits a read, resolving store-backed files through their chunk
    /// maps (per-chunk physical requests, merged completion: latest chunk
    /// wins, first injected fault wins). Files without a map — every file
    /// today unless [`Host::map_chunked_file`] was called — submit
    /// directly, unchanged. Call sites keep passing *logical* requests:
    /// [`SharedPages`] canonicalizes cache and in-flight keys through the
    /// same maps, so siblings whose files share chunks share hits too.
    pub fn submit_checked(&mut self, now: SimTime, io: IoRequest) -> IoCompletion {
        let plan = match self.pages.share().chunked(io.file) {
            Some(map) => map.plan(&io),
            None => return self.disk_of_file(io.file).submit_checked(now, io),
        };
        let mut parts = Vec::with_capacity(plan.len());
        for phys in plan {
            parts.push(self.disk_of_file(phys.file).submit_checked(now, phys));
        }
        merge_completions(now, parts)
    }
}

/// Everything needed to run one invocation.
#[derive(Clone, Debug)]
pub struct InvocationSpec {
    /// Restore strategy.
    pub strategy: RestoreStrategy,
    /// The function's execution trace for this input.
    pub trace: Trace,
    /// Guest memory contents at restore (the snapshot's frozen state).
    pub memory: GuestMemory,
    /// The snapshot memory file.
    pub mem_file: FileId,
    /// Non-zero regions of the memory file (from the post-record scan).
    pub nonzero_regions: Vec<PageRange>,
    /// The loading set (FaaSnap strategies).
    pub ls: Option<LoadingSet>,
    /// The loading-set file (FaaSnap with `loading_set_file`).
    pub ls_file: Option<FileId>,
    /// The grouped working set (FaaSnap ablations, warm residency).
    pub ws: Option<WorkingSet>,
    /// REAP's working set (REAP strategy).
    pub reap_ws: Option<ReapWorkingSet>,
    /// REAP's compact working-set file.
    pub reap_ws_file: Option<FileId>,
    /// Enable freed-page sanitization in the guest kernel (record phase).
    pub sanitize: bool,
    /// Record working sets during this run (record phase).
    pub record: bool,
    /// Working-set group size used when recording (§4.3).
    pub record_group_size: u64,
    /// RSS growth threshold pacing mincore scans when recording (§5).
    pub record_scan_threshold: u64,
    /// Verify mapping correctness at each fault (cheap; off for Warm).
    pub verify_mappings: bool,
    /// Optional seeded fault-resolution delay injection (sim-mm's half
    /// of the fault plan). `None` draws nothing and perturbs nothing.
    pub mm_delay: Option<MmDelaySpec>,
}

/// Parameters for injected fault-resolution delays during one
/// invocation: each resolved fault's handling cost is inflated by
/// `extra` with probability `prob`, at most `budget` times, on a
/// private stream derived from `seed`.
#[derive(Clone, Copy, Debug)]
pub struct MmDelaySpec {
    /// Injector stream seed.
    pub seed: u64,
    /// Per-fault inflation probability.
    pub prob: f64,
    /// Extra handling cost per injected delay.
    pub extra: SimDuration,
    /// Maximum number of injections.
    pub budget: u64,
}

impl InvocationSpec {
    /// A minimal spec for `strategy` over a bare snapshot.
    pub fn new(
        strategy: RestoreStrategy,
        trace: Trace,
        memory: GuestMemory,
        mem_file: FileId,
    ) -> Self {
        let nonzero_regions = memory.nonzero_regions();
        InvocationSpec {
            strategy,
            trace,
            memory,
            mem_file,
            nonzero_regions,
            ls: None,
            ls_file: None,
            ws: None,
            reap_ws: None,
            reap_ws_file: None,
            sanitize: false,
            record: false,
            record_group_size: crate::wset::GROUP_SIZE,
            record_scan_threshold: crate::wset::GROUP_SIZE,
            verify_mappings: !matches!(strategy, RestoreStrategy::Warm),
            mm_delay: None,
        }
    }
}

/// The result of one invocation: measurements plus final state (the
/// record phase snapshots the final memory).
#[derive(Clone, Debug)]
pub struct InvocationOutcome {
    /// Measurements.
    pub report: InvocationReport,
    /// Guest memory at completion.
    pub final_memory: GuestMemory,
    /// Recorded working set (if `record`).
    pub ws: Option<WorkingSet>,
    /// Recorded REAP working set (if `record`).
    pub reap_ws: Option<ReapWorkingSet>,
}

// ---------------------------------------------------------------------
// Events and per-VM state
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Ev {
    /// Setup finished: the vCPU starts executing.
    StartVcpu { vm: usize },
    /// Resume the vCPU (after an I/O-backed fault completed).
    Resume { vm: usize },
    /// The loader begins prefetching (at request arrival).
    StartLoader { vm: usize },
    /// A compute segment finished.
    ComputeDone { vm: usize },
    /// Resume the vCPU after a fixed-cost fault.
    FaultDone {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        kind: FaultKind,
        started: SimTime,
        ctx: TraceContext,
    },
    /// A guest-fault disk read finished (perhaps unsuccessfully).
    FaultIoDone {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        io: IoRequest,
        started: SimTime,
        overhead: SimDuration,
        attempt: u32,
        fate: IoFate,
        ctx: TraceContext,
    },
    /// Re-enter fault handling for a blocked access whose read failed,
    /// after deterministic backoff.
    FaultRetry {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        attempt: u32,
    },
    /// An async readahead read finished (no vCPU is waiting).
    /// `guest_start` is the guest page backing `io.page`.
    AsyncReadDone {
        vm: usize,
        io: IoRequest,
        guest_start: PageNum,
        fate: IoFate,
        ctx: TraceContext,
    },
    /// A page-lock wait on an in-flight read finished. `attempt` is the
    /// waiter's own access attempt: a wake from a *cancelled* (failed)
    /// read re-faults with it bumped, so waiters consume retry budget
    /// too and a fail-forever read fails every waiter closed instead of
    /// livelocking the sibling group.
    InflightDone {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        started: SimTime,
        attempt: u32,
        ctx: TraceContext,
    },
    /// A loader read finished (perhaps unsuccessfully). `io` is the
    /// request actually issued: the whole chunk `idx` on the first
    /// attempt, its uncovered suffix on retries.
    LoaderChunkDone {
        vm: usize,
        idx: usize,
        io: IoRequest,
        attempt: u32,
        fate: IoFate,
        ctx: TraceContext,
    },
    /// Re-issue the uncovered part of loader chunk `idx` after backoff.
    LoaderRetry { vm: usize, idx: usize, attempt: u32 },
    /// A REAP handler disk read finished (perhaps unsuccessfully).
    ReapIoDone {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        io: IoRequest,
        started: SimTime,
        attempt: u32,
        fate: IoFate,
        ctx: TraceContext,
    },
    /// The guest resumes after user-level fault handling.
    ReapResume {
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        started: SimTime,
        ctx: TraceContext,
    },
    /// Record-phase RSS poll tick.
    MincorePoll { vm: usize },
}

struct VmRun {
    vcpu: Vcpu,
    mem: VmMemory,
    kernel: GuestKernel,
    aspace: AddressSpace,
    pt: PageTable,
    uffd: UffdRegistry,
    resolver: FaultResolver,
    mem_file: FileId,
    ls: Option<LoadingSet>,
    ls_file: Option<FileId>,
    loader_plan: LoaderPlan,
    loader_next: usize,
    loader_started: Option<SimTime>,
    reap: Option<ReapHandler>,
    invoke_start: SimTime,
    done_at: Option<SimTime>,
    /// Set when the restore failed closed (retries exhausted): the vCPU
    /// stalls and the invocation surfaces a typed error instead of a
    /// result built on missing bytes.
    error: Option<RestoreError>,
    report: InvocationReport,
    mincore_rec: Option<MincoreRecorder>,
    uffd_track: Option<UffdTracker>,
    verify_mappings: bool,
    /// Root span covering request arrival to reply.
    ctx_invocation: TraceContext,
    /// Span covering vCPU execution (opened at `StartVcpu`).
    ctx_function: TraceContext,
    /// Span covering the loader's concurrent prefetch, open while
    /// chunks remain.
    ctx_loader: Option<TraceContext>,
}

struct SimWorld<'h> {
    host: &'h mut Host,
    vms: Vec<VmRun>,
}

/// Runs a batch of invocations that all arrive at `t = 0` on one host,
/// surfacing restore failures (retry exhaustion under storage faults) as
/// typed errors. The first failed VM's error is returned; a failed batch
/// produces no outcomes (fail closed — no partially-restored results).
pub fn try_run_invocations(
    host: &mut Host,
    specs: Vec<InvocationSpec>,
) -> Result<Vec<InvocationOutcome>, RestoreError> {
    Ok(run_specs(host, specs, None)?.0)
}

/// The result of an N-way fork: per-sibling outcomes plus sharing
/// accounting for the whole batch.
#[derive(Clone, Debug)]
pub struct ForkOutcome {
    /// Per-sibling invocation outcomes, in sibling order.
    pub outcomes: Vec<InvocationOutcome>,
    /// Disk pages transferred by the whole fork (all siblings, all I/O).
    pub disk_read_pages: u64,
    /// Non-zero pages of the shared base image (stored once for all
    /// siblings).
    pub shared_pages: u64,
    /// Private copied-on-write pages, summed over all siblings.
    pub private_pages: u64,
}

/// Branches `n` concurrent restores from one snapshot. Every sibling
/// shares the frozen base image read-only (dirty pages copy on write
/// into a private anonymous overlay) and the snapshot-keyed page state,
/// so the working set is read from disk once for the whole batch instead
/// of once per sibling. `n = 1` is byte-identical to
/// [`try_run_invocation`]: same seed draws, same event order, same
/// trace, same metrics.
pub fn try_run_fork(
    host: &mut Host,
    spec: InvocationSpec,
    n: usize,
) -> Result<ForkOutcome, RestoreError> {
    assert!(n >= 1, "a fork needs at least one sibling");
    let read_before: u64 = host.disks.iter().map(|d| d.stats().pages).sum();
    let base = Rc::new(spec.memory.clone());
    // The fork span (and its metrics below) only exist for real forks:
    // a 1-way fork stays indistinguishable from an independent restore.
    let fork_ctx = if n > 1 {
        let ctx = host
            .tracer
            .begin("fork", "vm", SimTime::ZERO, host.tracer.current_parent());
        host.tracer.tag(ctx, "siblings", n as u64);
        host.tracer.push_parent(ctx);
        Some(ctx)
    } else {
        None
    };
    let specs: Vec<InvocationSpec> = (0..n).map(|_| spec.clone()).collect();
    let result = run_specs(host, specs, Some(&base));
    if let Some(ctx) = fork_ctx {
        host.tracer.pop_parent();
        let end = host.tracer.latest_end().unwrap_or(SimTime::ZERO);
        host.tracer.end(ctx, end);
    }
    let (outcomes, private_pages) = result?;
    let read_after: u64 = host.disks.iter().map(|d| d.stats().pages).sum();
    let disk_read_pages = read_after - read_before;
    let shared_pages = base.nonzero_count();
    if n > 1 {
        host.metrics
            .counter_add("faasnap_fork_siblings_total", &[], n as u64);
        host.metrics
            .counter_add("faasnap_fork_disk_read_pages_total", &[], disk_read_pages);
        host.metrics
            .counter_add("faasnap_fork_shared_pages_total", &[], shared_pages);
        host.metrics
            .counter_add("faasnap_fork_private_pages_total", &[], private_pages);
    }
    Ok(ForkOutcome {
        outcomes,
        disk_read_pages,
        shared_pages,
        private_pages,
    })
}

/// Branches `n` siblings, panicking on restore failure.
pub fn run_fork(host: &mut Host, spec: InvocationSpec, n: usize) -> ForkOutcome {
    match try_run_fork(host, spec, n) {
        Ok(f) => f,
        Err(e) => panic!("fork failed: {e}"),
    }
}

/// Shared engine loop behind both entry points. With `fork_base`, every
/// VM's memory is a copy-on-write overlay over that image; the second
/// return value is the total private (copied) page count.
fn run_specs(
    host: &mut Host,
    specs: Vec<InvocationSpec>,
    fork_base: Option<&Rc<GuestMemory>>,
) -> Result<(Vec<InvocationOutcome>, u64), RestoreError> {
    // Each run has its own clock starting at zero: device queues and the
    // in-flight registry (which hold absolute times) start idle.
    for disk in &mut host.disks {
        disk.reset_queue();
    }
    host.pages.clear_inflight();

    let mut engine: Engine<Ev> = Engine::new();
    let mut vms = Vec::with_capacity(specs.len());

    for (i, spec) in specs.into_iter().enumerate() {
        let seed = host.next_seed();
        let (vm, setup_time) = prepare_vm(host, spec, seed, i, fork_base);
        // The loader starts at request arrival; the vCPU after setup.
        if !vm.loader_plan.is_empty() {
            engine
                .scheduler()
                .schedule(SimTime::ZERO, Ev::StartLoader { vm: i });
        }
        engine
            .scheduler()
            .schedule(SimTime::ZERO + setup_time, Ev::StartVcpu { vm: i });
        if vm.mincore_rec.is_some() {
            engine.scheduler().schedule(
                SimTime::ZERO + MINCORE_POLL_INTERVAL,
                Ev::MincorePoll { vm: i },
            );
        }
        vms.push(vm);
    }

    let mut world = SimWorld { host, vms };
    {
        let _scope = world.host.selfprof.scope("runtime/engine_run");
        engine.run(&mut world);
    }

    let SimWorld { host, vms } = world;
    let estats = engine.stats();
    host.selfprof.harvest([
        ("engine/delivered", estats.delivered),
        ("engine/scheduled", estats.scheduled),
    ]);
    host.selfprof
        .max("engine/peak_pending", estats.peak_pending);
    let mut outcomes = Vec::with_capacity(vms.len());
    let mut private_pages: u64 = 0;
    for mut vm in vms {
        if let Some(err) = vm.error.take() {
            return Err(err);
        }
        assert!(
            vm.done_at.is_some(),
            "vCPU never finished — deadlocked simulation?"
        );
        // Footprint accounting (§7.3): anonymous residency plus the
        // page-cache pages of this VM's backing files.
        vm.report.resident_pages = vm.pt.rss_pages();
        vm.report.cache_pages = host.pages.resident_of(vm.mem_file)
            + vm.ls_file.map(|f| host.pages.resident_of(f)).unwrap_or(0);
        vm.report.faults.injected_mm_delays = vm.resolver.injected_delays();
        if let VmMemory::Cow(c) = &vm.mem {
            private_pages += c.private_pages();
        }
        outcomes.push(InvocationOutcome {
            report: vm.report,
            final_memory: vm.mem.into_guest_memory(),
            ws: vm.mincore_rec.map(|r| r.finish()),
            reap_ws: vm.uffd_track.map(|t| t.finish()),
        });
    }
    Ok((outcomes, private_pages))
}

/// Runs a batch of invocations, panicking on restore failure (healthy
/// paths never fail; only injected/real storage faults can).
pub fn run_invocations(host: &mut Host, specs: Vec<InvocationSpec>) -> Vec<InvocationOutcome> {
    match try_run_invocations(host, specs) {
        Ok(outs) => outs,
        Err(e) => panic!("invocation failed: {e}"),
    }
}

/// Runs a single invocation, surfacing restore failures.
pub fn try_run_invocation(
    host: &mut Host,
    spec: InvocationSpec,
) -> Result<InvocationOutcome, RestoreError> {
    Ok(try_run_invocations(host, vec![spec])?.remove(0))
}

/// Runs a single invocation.
pub fn run_invocation(host: &mut Host, spec: InvocationSpec) -> InvocationOutcome {
    run_invocations(host, vec![spec]).remove(0)
}

/// Convenience wrapper used by experiments: a complete invocation
/// simulator bound to a host.
pub struct InvocationSim;

impl InvocationSim {
    /// Runs `spec` on `host` after dropping caches (the evaluation's
    /// between-test hygiene). `Cached` re-warms the cache afterwards.
    pub fn run_clean(host: &mut Host, spec: InvocationSpec) -> InvocationOutcome {
        host.drop_caches();
        run_invocation(host, spec)
    }
}

// ---------------------------------------------------------------------
// VM preparation (strategy-specific setup)
// ---------------------------------------------------------------------

fn prepare_vm(
    host: &mut Host,
    spec: InvocationSpec,
    seed: u64,
    idx: usize,
    fork_base: Option<&Rc<GuestMemory>>,
) -> (VmRun, SimDuration) {
    let total_pages = spec.memory.total_pages();
    let mut aspace = AddressSpace::new();
    let mut pt = PageTable::new(total_pages);
    let mut uffd = UffdRegistry::new();
    let mut kernel = GuestKernel::new();
    kernel.set_sanitize_freed(spec.sanitize);
    let mut resolver = FaultResolver::new(host.costs.clone(), seed);
    resolver.set_tracer(host.tracer.clone());
    resolver.set_self_profile(host.selfprof.clone());
    if let Some(d) = spec.mm_delay {
        resolver.set_delay_injection(d.seed, d.prob, d.extra, d.budget);
    }
    let strategy_label = spec.strategy.label();
    let mut report = InvocationReport::default();
    let mut reap = None;
    let mut loader_plan = LoaderPlan::default();

    let mut setup = SimDuration::ZERO;
    match spec.strategy {
        RestoreStrategy::Warm => {
            // Live VM: anonymous memory, previously touched pages resident.
            mapper::map_warm(&mut aspace, total_pages);
            for r in &spec.nonzero_regions {
                pt.set_range(*r, PageState::Mapped);
            }
            if let Some(ws) = &spec.ws {
                for &p in ws.pages() {
                    pt.install(p);
                }
            }
        }
        RestoreStrategy::Vanilla => {
            mapper::map_vanilla(&mut aspace, total_pages, spec.mem_file);
            setup = host.boot.snapshot_setup_base() + host.costs.mmap_calls(1);
        }
        RestoreStrategy::Cached => {
            mapper::map_vanilla(&mut aspace, total_pages, spec.mem_file);
            setup = host.boot.snapshot_setup_base() + host.costs.mmap_calls(1);
            // Pre-load the memory file into the page cache (reference
            // setting; the warm-up itself is not measured, §6.1).
            host.pages.insert_range(spec.mem_file, 0, total_pages);
        }
        RestoreStrategy::Reap => {
            mapper::map_vanilla(&mut aspace, total_pages, spec.mem_file);
            uffd.register(PageRange::new(0, total_pages));
            // Blocking fetch: one sequential O_DIRECT read of the compact
            // working-set file (bypasses the page cache), then bulk
            // UFFDIO_COPY installs. Failed reads retry with deterministic
            // backoff; exhaustion (or missing artifacts) degrades to pure
            // userfaultfd demand paging — slower, never incorrect.
            let mut fetch = SimDuration::ZERO;
            match (spec.reap_ws.as_ref(), spec.reap_ws_file) {
                (Some(ws), Some(ws_file)) => {
                    let mut issue = SimTime::ZERO;
                    let mut attempt: u32 = 0;
                    loop {
                        let (done, fate) = if ws.is_empty() {
                            (SimTime::ZERO, IoFate::Ok)
                        } else {
                            let completion = host.submit_checked(
                                issue,
                                IoRequest {
                                    file: ws_file,
                                    page: 0,
                                    pages: ws.len(),
                                    kind: IoKind::ReapFetch,
                                },
                            );
                            if let Some(f) = completion.fault {
                                report.faults.record_injection(f.kind);
                                host.metrics.counter_inc(
                                    "faasnap_fault_injected_total",
                                    &[("kind", f.kind.label())],
                                );
                            }
                            (completion.done, fate_of(completion.fault))
                        };
                        if fate == IoFate::Ok {
                            fetch = ReapHandler::fetch_time(ws.len(), done - SimTime::ZERO);
                            for &p in ws.pages() {
                                pt.set_state(p, PageState::HostPte);
                            }
                            report.fetch_pages = ws.len();
                            break;
                        }
                        // An O_DIRECT whole-file read is all-or-nothing:
                        // short reads re-issue the full request too.
                        attempt += 1;
                        if attempt >= MAX_REAP_RETRIES {
                            report.degraded = true;
                            host.metrics.counter_inc(
                                "faasnap_degraded_total",
                                &[("mode", "reap-no-prefetch")],
                            );
                            fetch = done - SimTime::ZERO;
                            break;
                        }
                        let wait = backoff(attempt - 1);
                        let at = done + wait;
                        host.metrics.counter_inc(
                            "faasnap_retry_total",
                            &[("site", RetrySite::ReapFetch.label())],
                        );
                        report.faults.record_retry(
                            RetryRecord {
                                site: RetrySite::ReapFetch,
                                file: ws_file,
                                page: 0,
                                attempt,
                                at_ns: at.as_nanos(),
                            },
                            wait,
                        );
                        issue = at;
                    }
                }
                _ => {
                    // No recorded working set (e.g. the record phase was
                    // aborted): every fault goes to the handler.
                    report.degraded = true;
                }
            }
            setup = host.boot.snapshot_setup_base() + host.costs.mmap_calls(1) + fetch;
            report.fetch_time = fetch;
            reap = Some(ReapHandler::new(seed ^ 0x5EA9));
        }
        RestoreStrategy::FaaSnap(mut config) => {
            config.validate().expect("invalid FaaSnap config");
            // Robustness: if the loading-set artifacts are missing or
            // corrupt (e.g. the file was evicted from snapshot storage),
            // degrade gracefully — per-region needs the loading set, the
            // ablation loaders need the working set; strip whatever is
            // unavailable and fall back toward vanilla demand paging.
            if config.loading_set_file && (spec.ls.is_none() || spec.ls_file.is_none()) {
                config.loading_set_file = false;
                config.per_region_mapping = false;
                report.degraded = true;
            }
            if config.concurrent_paging && !config.loading_set_file && spec.ws.is_none() {
                config.concurrent_paging = false;
                config.per_region_mapping = false;
                report.degraded = true;
            }
            let mmaps = setup_faasnap_mapping(&mut aspace, &spec, total_pages, config);
            setup = host.boot.snapshot_setup_base() + host.costs.mmap_calls(mmaps);
            loader_plan = build_loader_plan(&spec, config);
            report.fetch_pages = loader_plan.total_pages();
        }
    }
    report.setup_time = setup;
    report.mmap_calls = aspace.mmap_calls();
    report.vm_generation_id = host.next_vmgenid();

    // Root span: request arrival (t = 0) to reply. One display track per
    // VM so bursts render as parallel lanes in Perfetto.
    let ctx_invocation = host.tracer.begin(
        "invocation",
        "vm",
        SimTime::ZERO,
        host.tracer.current_parent(),
    );
    host.tracer.set_track(ctx_invocation, idx as u64 + 1);
    host.tracer.tag(ctx_invocation, "strategy", strategy_label);
    host.tracer
        .tag(ctx_invocation, "vm_generation_id", report.vm_generation_id);
    let ctx_setup = host
        .tracer
        .complete("setup", "vm", SimTime::ZERO, setup, ctx_invocation);
    host.tracer.tag(ctx_setup, "mmap_calls", report.mmap_calls);

    // A fork sibling maps the shared base copy-on-write; an ordinary
    // restore owns its image outright.
    let mem = match fork_base {
        None => VmMemory::Flat(spec.memory),
        Some(base) => VmMemory::Cow(CowMemory::new(base.clone())),
    };
    let vm = VmRun {
        vcpu: Vcpu::new(spec.trace),
        mem,
        kernel,
        aspace,
        pt,
        uffd,
        resolver,
        mem_file: spec.mem_file,
        ls: spec.ls,
        ls_file: spec.ls_file,
        loader_plan,
        loader_next: 0,
        loader_started: None,
        reap,
        invoke_start: SimTime::ZERO + setup,
        done_at: None,
        error: None,
        report,
        mincore_rec: spec.record.then(|| {
            MincoreRecorder::with_params(
                total_pages,
                WorkingSet::with_group_size(spec.record_group_size),
                spec.record_scan_threshold,
            )
        }),
        uffd_track: spec.record.then(|| UffdTracker::new(total_pages)),
        verify_mappings: spec.verify_mappings,
        ctx_invocation,
        ctx_function: TraceContext::NONE,
        ctx_loader: None,
    };
    (vm, setup)
}

fn setup_faasnap_mapping(
    aspace: &mut AddressSpace,
    spec: &InvocationSpec,
    total_pages: u64,
    config: FaasnapConfig,
) -> u64 {
    if !config.per_region_mapping {
        mapper::map_vanilla(aspace, total_pages, spec.mem_file);
        return 1;
    }
    // `prepare_vm` already degraded the config if the loading-set
    // artifacts are absent, so this match only misses on caller bugs —
    // and then the safe fallback is the no-loading-set mapping.
    let empty = LoadingSet::default();
    let (ls, ls_file) = match (spec.ls.as_ref(), spec.ls_file) {
        (Some(ls), Some(ls_file)) if config.loading_set_file => (ls, ls_file),
        _ => (&empty, spec.mem_file),
    };
    if config.hierarchical_mmap {
        mapper::map_faasnap_hierarchical(
            aspace,
            total_pages,
            &spec.nonzero_regions,
            ls,
            spec.mem_file,
            ls_file,
        )
    } else {
        mapper::map_faasnap_flat(
            aspace,
            total_pages,
            &spec.nonzero_regions,
            ls,
            spec.mem_file,
            ls_file,
        )
    }
}

fn build_loader_plan(spec: &InvocationSpec, config: FaasnapConfig) -> LoaderPlan {
    if !config.concurrent_paging {
        return LoaderPlan::default();
    }
    if config.loading_set_file {
        return match (spec.ls.as_ref(), spec.ls_file) {
            (Some(ls), Some(ls_file)) => LoaderPlan::from_loading_set(ls, ls_file),
            _ => LoaderPlan::default(),
        };
    }
    let Some(ws) = spec.ws.as_ref() else {
        return LoaderPlan::default();
    };
    if config.per_region_mapping {
        LoaderPlan::group_order(ws, &spec.memory, spec.mem_file)
    } else {
        LoaderPlan::address_order(ws, &spec.memory, spec.mem_file)
    }
}

// ---------------------------------------------------------------------
// Event handling
// ---------------------------------------------------------------------

impl World for SimWorld<'_> {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::StartVcpu { vm } => {
                let v = &mut self.vms[vm];
                v.ctx_function = self
                    .host
                    .tracer
                    .begin("function", "vm", now, v.ctx_invocation);
                self.drive_vcpu(vm, now, sched)
            }
            Ev::StartLoader { vm } => {
                let v = &mut self.vms[vm];
                v.loader_started = Some(now);
                let ctx =
                    self.host
                        .tracer
                        .begin("loader/prefetch", "loader", now, v.ctx_invocation);
                self.host.tracer.tag(ctx, "chunks", v.loader_plan.len());
                self.host
                    .tracer
                    .tag(ctx, "pages", v.loader_plan.total_pages());
                v.ctx_loader = Some(ctx);
                self.loader_issue_next(vm, now, sched);
            }
            Ev::ComputeDone { vm } => {
                self.host.cpu.end();
                self.drive_vcpu(vm, now, sched);
            }
            Ev::FaultDone {
                vm,
                page,
                write,
                token,
                kind,
                started,
                ctx,
            } => {
                self.finish_access(vm, page, write, token, kind, started, now, ctx);
                self.drive_vcpu(vm, now, sched);
            }
            Ev::FaultIoDone {
                vm,
                page,
                write,
                token,
                io,
                started,
                overhead,
                attempt,
                fate,
                ctx,
            } => {
                if fate == IoFate::Failed {
                    // Nothing was transferred: drop the page locks this
                    // read held (waiters re-fault) and retry or fail.
                    self.host
                        .pages
                        .cancel_window(io.file, io.page, io.pages, now);
                    self.host.tracer.end(ctx, now);
                    let next = attempt + 1;
                    if next >= MAX_FAULT_RETRIES {
                        self.fail_vm(
                            vm,
                            now,
                            RestoreError::ReadRetriesExhausted {
                                site: RetrySite::GuestFault,
                                file: io.file,
                                page: io.page,
                                attempts: next,
                            },
                        );
                    } else {
                        let wait = backoff(attempt);
                        let at = now + overhead + wait;
                        self.record_retry(
                            vm,
                            RetrySite::GuestFault,
                            io.file,
                            io.page,
                            next,
                            wait,
                            at,
                        );
                        sched.schedule(
                            at,
                            Ev::FaultRetry {
                                vm,
                                page,
                                write,
                                token,
                                attempt: next,
                            },
                        );
                    }
                    return;
                }
                let served = match fate {
                    IoFate::Short { served } => served,
                    _ => io.pages,
                };
                self.host.pages.insert_range(io.file, io.page, served);
                self.host
                    .pages
                    .complete_window(io.file, io.page, served, now);
                if served < io.pages {
                    // Short read: the unserved tail's page locks drop;
                    // its waiters re-fault. The faulting page itself is
                    // always within the served prefix (readahead starts
                    // at it), so this access still completes.
                    self.host.pages.cancel_window(
                        io.file,
                        io.page + served,
                        io.pages - served,
                        now,
                    );
                }
                let v = &mut self.vms[vm];
                v.report.guest_fault_read_pages += served;
                v.report.fault_block_requests += 1;
                // Kernel-side handling overhead on top of the disk wait.
                let done = now + overhead;
                self.finish_access(vm, page, write, token, FaultKind::Major, started, done, ctx);
                sched.schedule(done, Ev::Resume { vm });
            }
            Ev::FaultRetry {
                vm,
                page,
                write,
                token,
                attempt,
            } => {
                if self.vms[vm].error.is_some() {
                    return;
                }
                // Re-resolve from scratch: a concurrent read may have
                // populated the cache meanwhile, in which case the access
                // completes without touching the disk again.
                if !self.handle_access(vm, page, write, token, now, sched, attempt) {
                    self.drive_vcpu(vm, now, sched);
                }
            }
            Ev::Resume { vm } => self.drive_vcpu(vm, now, sched),
            Ev::AsyncReadDone {
                vm,
                io,
                guest_start,
                fate,
                ctx,
            } => {
                self.host.tracer.end(ctx, now);
                if fate == IoFate::Failed {
                    // Async readahead failures are dropped silently (as
                    // the kernel does): no vCPU waits on this read, and
                    // any page it covered re-faults on demand.
                    self.host
                        .pages
                        .cancel_window(io.file, io.page, io.pages, now);
                    return;
                }
                let served = match fate {
                    IoFate::Short { served } => served,
                    _ => io.pages,
                };
                self.host.pages.insert_range(io.file, io.page, served);
                self.host
                    .pages
                    .complete_window(io.file, io.page, served, now);
                if served < io.pages {
                    self.host.pages.cancel_window(
                        io.file,
                        io.page + served,
                        io.pages - served,
                        now,
                    );
                }
                let v = &mut self.vms[vm];
                v.report.guest_fault_read_pages += served;
                v.report.fault_block_requests += 1;
                // Readahead marker: if the guest has consumed up to (at
                // least) one window behind this one, it is streaming —
                // chain the next async window to stay ahead (Linux grows
                // and re-arms async readahead the same way). A shortened
                // window breaks the chain (the gap re-faults on demand).
                let marker = guest_start.saturating_sub(io.pages);
                if served == io.pages
                    && v.done_at.is_none()
                    && v.pt.state(marker) == PageState::Mapped
                {
                    self.submit_async_window(
                        vm,
                        io.file,
                        io.page + io.pages,
                        guest_start + io.pages,
                        io.pages,
                        now,
                        sched,
                    );
                }
            }
            Ev::InflightDone {
                vm,
                page,
                write,
                token,
                started,
                attempt,
                ctx,
            } => {
                if self.vms[vm].error.is_some() {
                    return;
                }
                // If the read this waiter was parked on failed, its page
                // locks were cancelled and the cache was never populated:
                // re-fault from scratch instead of installing a page with
                // no backing bytes. Waiting on a failed read consumes one
                // of the waiter's own retry attempts — otherwise siblings
                // alternating between issuing and waiting on each other's
                // failing reads would reset their budgets forever.
                let v = &self.vms[vm];
                let stale = match v.aspace.resolve(page) {
                    Some(Resolved::File { file, file_page }) => {
                        if self.host.pages.contains(file, file_page) {
                            None
                        } else {
                            Some((file, file_page))
                        }
                    }
                    _ => None,
                };
                if let Some((file, file_page)) = stale {
                    self.host.tracer.end(ctx, now);
                    let next = attempt + 1;
                    if next >= MAX_FAULT_RETRIES {
                        self.fail_vm(
                            vm,
                            now,
                            RestoreError::ReadRetriesExhausted {
                                site: RetrySite::GuestFault,
                                file,
                                page: file_page,
                                attempts: next,
                            },
                        );
                        return;
                    }
                    if !self.handle_access(vm, page, write, token, now, sched, next) {
                        self.drive_vcpu(vm, now, sched);
                    }
                    return;
                }
                self.finish_access(vm, page, write, token, FaultKind::Major, started, now, ctx);
                self.drive_vcpu(vm, now, sched);
            }
            Ev::LoaderChunkDone {
                vm,
                idx,
                io,
                attempt,
                fate,
                ctx,
            } => {
                self.host.tracer.end(ctx, now);
                match fate {
                    IoFate::Failed => {
                        self.host
                            .pages
                            .cancel_window(io.file, io.page, io.pages, now);
                        self.loader_retry_or_degrade(vm, idx, io, io.page, attempt, now, sched);
                    }
                    IoFate::Short { served } => {
                        // Keep the served prefix; retry resumes at the
                        // first unserved page.
                        self.host.pages.insert_range(io.file, io.page, served);
                        self.host
                            .pages
                            .complete_window(io.file, io.page, served, now);
                        self.host.pages.cancel_window(
                            io.file,
                            io.page + served,
                            io.pages - served,
                            now,
                        );
                        self.loader_retry_or_degrade(
                            vm,
                            idx,
                            io,
                            io.page + served,
                            attempt,
                            now,
                            sched,
                        );
                    }
                    IoFate::Ok => {
                        self.host.pages.insert_range(io.file, io.page, io.pages);
                        self.host
                            .pages
                            .complete_window(io.file, io.page, io.pages, now);
                        let v = &mut self.vms[vm];
                        if let Some(start) = v.loader_started {
                            v.report.fetch_time = now - start;
                        }
                        self.loader_issue_next(vm, now, sched);
                    }
                }
            }
            Ev::LoaderRetry { vm, idx, attempt } => {
                let v = &self.vms[vm];
                if v.done_at.is_some() || v.error.is_some() || v.loader_next >= v.loader_plan.len()
                {
                    // The invocation ended (or the loader was abandoned)
                    // while this retry was pending: just let the loader
                    // wind down (closes its span).
                    self.loader_issue_next(vm, now, sched);
                    return;
                }
                let chunk = *v.loader_plan.chunk(idx);
                // Resume at the first page of the chunk still uncovered
                // (guest faults or other VMs may have filled some of it).
                let end = chunk.page + chunk.pages;
                let mut p = chunk.page;
                while p < end
                    && (self.host.pages.contains(chunk.file, p)
                        || self.host.pages.completion_of(chunk.file, p).is_some())
                {
                    p += 1;
                }
                if p >= end {
                    self.loader_issue_next(vm, now, sched);
                    return;
                }
                let io = IoRequest {
                    file: chunk.file,
                    page: p,
                    pages: end - p,
                    kind: IoKind::LoaderPrefetch,
                };
                self.loader_submit(vm, idx, io, attempt, now, sched);
            }
            Ev::ReapIoDone {
                vm,
                page,
                write,
                token,
                io,
                started,
                attempt,
                fate,
                ctx,
            } => {
                // Single-page reads cannot come up short: a short read
                // degrades to a hard failure at injection time.
                if fate != IoFate::Ok {
                    self.host
                        .pages
                        .cancel_window(io.file, io.page, io.pages, now);
                    self.host.tracer.end(ctx, now);
                    let next = attempt + 1;
                    if next >= MAX_REAP_RETRIES {
                        self.fail_vm(
                            vm,
                            now,
                            RestoreError::ReadRetriesExhausted {
                                site: RetrySite::ReapMiss,
                                file: io.file,
                                page: io.page,
                                attempts: next,
                            },
                        );
                    } else {
                        let wait = backoff(attempt);
                        let at = now + wait;
                        self.record_retry(
                            vm,
                            RetrySite::ReapMiss,
                            io.file,
                            io.page,
                            next,
                            wait,
                            at,
                        );
                        sched.schedule(
                            at,
                            Ev::FaultRetry {
                                vm,
                                page,
                                write,
                                token,
                                attempt: next,
                            },
                        );
                    }
                    return;
                }
                self.host.pages.insert_range(io.file, io.page, io.pages);
                self.host
                    .pages
                    .complete_window(io.file, io.page, io.pages, now);
                let v = &mut self.vms[vm];
                let resume_at = match v.reap.as_mut() {
                    Some(handler) => handler.complete_with_io(started, now, &self.host.costs),
                    None => now,
                };
                sched.schedule(
                    resume_at,
                    Ev::ReapResume {
                        vm,
                        page,
                        write,
                        token,
                        started,
                        ctx,
                    },
                );
            }
            Ev::ReapResume {
                vm,
                page,
                write,
                token,
                started,
                ctx,
            } => {
                self.finish_access(vm, page, write, token, FaultKind::Uffd, started, now, ctx);
                self.drive_vcpu(vm, now, sched);
            }
            Ev::MincorePoll { vm } => {
                let v = &mut self.vms[vm];
                if v.done_at.is_some() || v.error.is_some() {
                    return;
                }
                if let Some(rec) = &mut v.mincore_rec {
                    rec.poll(v.pt.rss_pages(), &v.aspace, &v.pt, &self.host.pages);
                }
                sched.schedule(now + MINCORE_POLL_INTERVAL, Ev::MincorePoll { vm });
            }
        }
    }
}

impl SimWorld<'_> {
    /// Applies the completed access and updates stats.
    #[allow(clippy::too_many_arguments)]
    fn finish_access(
        &mut self,
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        kind: FaultKind,
        started: SimTime,
        now: SimTime,
        ctx: TraceContext,
    ) {
        self.host.tracer.end(ctx, now);
        self.host
            .metrics
            .counter_inc("faasnap_faults_total", &[("class", kind.label())]);
        self.host
            .metrics
            .observe("faasnap_fault_wait_us", &[], now - started);
        let v = &mut self.vms[vm];
        v.pt.install(page);
        v.report.record_fault(kind, now - started);
        if write {
            v.mem.write(page, token);
        }
    }

    /// Runs the vCPU until it blocks (fault/compute) or finishes.
    fn drive_vcpu(&mut self, vm: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        if self.vms[vm].error.is_some() {
            return;
        }
        loop {
            let step = self.vms[vm].vcpu.next_step();
            match step {
                Step::Done => {
                    let v = &mut self.vms[vm];
                    v.done_at = Some(now);
                    v.report.invocation_time = now - v.invoke_start;
                    self.host
                        .tracer
                        .tag(v.ctx_function, "faults", v.report.total_faults());
                    self.host.tracer.end(v.ctx_function, now);
                    self.host.tracer.end(v.ctx_invocation, now);
                    // Stop the loader: prefetching past the reply only
                    // wastes disk bandwidth other VMs need.
                    v.loader_next = v.loader_plan.len();
                    // Final mincore scan (the daemon scans once more after
                    // the invocation completes).
                    if let Some(rec) = &mut v.mincore_rec {
                        rec.scan(&v.aspace, &v.pt, &self.host.pages);
                    }
                    return;
                }
                Step::Compute(d) => {
                    let stretch = self.host.cpu.stretch();
                    self.host.cpu.begin();
                    sched.schedule(now + d.mul_f64(stretch), Ev::ComputeDone { vm });
                    return;
                }
                Step::Free { range } => {
                    let v = &mut self.vms[vm];
                    let cost = v.kernel.free_pages(&mut v.mem, range);
                    if !cost.is_zero() {
                        let stretch = self.host.cpu.stretch();
                        self.host.cpu.begin();
                        sched.schedule(now + cost.mul_f64(stretch), Ev::ComputeDone { vm });
                        return;
                    }
                }
                Step::Access { page, write, token } => {
                    if self.handle_access(vm, page, write, token, now, sched, 0) {
                        return; // blocked on a fault
                    }
                }
            }
        }
    }

    /// Handles one access; returns true if the vCPU blocked. `attempt`
    /// is nonzero when re-entering after a failed read's backoff.
    #[allow(clippy::too_many_arguments)]
    fn handle_access(
        &mut self,
        vm: usize,
        page: PageNum,
        write: bool,
        token: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
        attempt: u32,
    ) -> bool {
        let v = &mut self.vms[vm];
        let (outcome, ctx) = v.resolver.resolve_traced(
            page,
            &v.aspace,
            &mut v.pt,
            &mut self.host.pages,
            &v.uffd,
            now,
            v.ctx_function,
        );
        // Record-phase fault tracking: every first host-visible fault.
        if !matches!(outcome, FaultOutcome::NoFault) {
            if let Some(t) = &mut v.uffd_track {
                t.on_fault(page);
            }
            if v.verify_mappings {
                verify_mapping(v, page);
            }
        }
        match outcome {
            FaultOutcome::NoFault => {
                if write {
                    v.mem.write(page, token);
                }
                false
            }
            FaultOutcome::Resolved { cost, kind } => {
                sched.schedule(
                    now + cost,
                    Ev::FaultDone {
                        vm,
                        page,
                        write,
                        token,
                        kind,
                        started: now,
                        ctx,
                    },
                );
                true
            }
            FaultOutcome::WaitInflight { ready_at, cost } => {
                sched.schedule(
                    ready_at + cost,
                    Ev::InflightDone {
                        vm,
                        page,
                        write,
                        token,
                        started: now,
                        attempt,
                        ctx,
                    },
                );
                true
            }
            FaultOutcome::NeedsIo {
                io,
                overhead,
                async_io,
            } => {
                let completion = self.host.submit_checked(now, io);
                if let Some(f) = completion.fault {
                    self.record_injection(vm, now, f);
                }
                let done = completion.done;
                self.host
                    .pages
                    .insert_window(io.file, io.page, io.pages, done);
                sched.schedule(
                    done,
                    Ev::FaultIoDone {
                        vm,
                        page,
                        write,
                        token,
                        io,
                        started: now,
                        overhead,
                        attempt,
                        fate: fate_of(completion.fault),
                        ctx,
                    },
                );
                // Linux async readahead: the next window of a sequential
                // stream is read without blocking the faulting task.
                if let Some(aio) = async_io {
                    let acomp = self.host.submit_checked(now, aio);
                    if let Some(f) = acomp.fault {
                        self.record_injection(vm, now, f);
                    }
                    let adone = acomp.done;
                    self.host
                        .pages
                        .insert_window(aio.file, aio.page, aio.pages, adone);
                    let guest_start = page + io.pages;
                    let actx = self.host.tracer.begin(
                        "readahead/async",
                        "mm",
                        now,
                        self.vms[vm].ctx_function,
                    );
                    self.host.tracer.tag(actx, "pages", aio.pages);
                    sched.schedule(
                        adone,
                        Ev::AsyncReadDone {
                            vm,
                            io: aio,
                            guest_start,
                            fate: fate_of(acomp.fault),
                            ctx: actx,
                        },
                    );
                }
                true
            }
            FaultOutcome::Userfault { file, file_page } => {
                let handler = self.vms[vm]
                    .reap
                    .as_mut()
                    .expect("uffd fault without handler");
                if self.host.pages.contains(file, file_page) {
                    let svc = handler.serve_cached(now, &self.host.costs);
                    sched.schedule(
                        svc.resume_at,
                        Ev::ReapResume {
                            vm,
                            page,
                            write,
                            token,
                            started: now,
                            ctx,
                        },
                    );
                } else {
                    let issue_at = handler.serve_uncached(now, &self.host.costs);
                    // The handler preads exactly the faulting page from the
                    // memory file (Figure 2's > 128 µs population: most
                    // out-of-set misses pay a full random disk read).
                    let pages = 1;
                    let io = IoRequest {
                        file,
                        page: file_page,
                        pages,
                        kind: IoKind::ReapMiss,
                    };
                    let completion = self.host.submit_checked(issue_at, io);
                    if let Some(f) = completion.fault {
                        self.record_injection(vm, now, f);
                    }
                    let done = completion.done;
                    self.host.pages.insert_window(file, file_page, pages, done);
                    self.vms[vm].report.guest_fault_read_pages += pages;
                    self.vms[vm].report.fault_block_requests += 1;
                    sched.schedule(
                        done,
                        Ev::ReapIoDone {
                            vm,
                            page,
                            write,
                            token,
                            io,
                            started: now,
                            attempt,
                            fate: fate_of(completion.fault),
                            ctx,
                        },
                    );
                }
                true
            }
        }
    }

    /// Issues a chained async readahead window for a streaming reader,
    /// clamped to the mapping extent and trimmed at cached/in-flight
    /// pages. No vCPU waits on it.
    #[allow(clippy::too_many_arguments)]
    fn submit_async_window(
        &mut self,
        vm: usize,
        file: FileId,
        file_start: u64,
        guest_start: PageNum,
        len: u64,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let v = &self.vms[vm];
        if guest_start >= v.pt.total_pages() {
            return;
        }
        // The chain only continues while the stream stays within one
        // mapping: the next guest page must still resolve to the expected
        // file offset, or the readahead state is stale (crossed a VMA
        // boundary, e.g. into a different loading-set region).
        match v.aspace.resolve(guest_start) {
            Some(Resolved::File { file: f, file_page }) if f == file && file_page == file_start => {
            }
            _ => return,
        }
        let room = v.aspace.contiguous_extent(guest_start, len);
        let mut pages = 0;
        for fp in file_start..file_start + room {
            if self.host.pages.contains(file, fp)
                || self.host.pages.completion_of(file, fp).is_some()
            {
                break;
            }
            pages += 1;
        }
        if pages == 0 {
            return;
        }
        let io = IoRequest {
            file,
            page: file_start,
            pages,
            kind: IoKind::FaultRead,
        };
        let completion = self.host.submit_checked(now, io);
        if let Some(f) = completion.fault {
            self.record_injection(vm, now, f);
        }
        self.host
            .pages
            .insert_window(file, file_start, pages, completion.done);
        let ctx = self
            .host
            .tracer
            .begin("readahead/async", "mm", now, self.vms[vm].ctx_function);
        self.host.tracer.tag(ctx, "pages", pages);
        sched.schedule(
            completion.done,
            Ev::AsyncReadDone {
                vm,
                io,
                guest_start,
                fate: fate_of(completion.fault),
                ctx,
            },
        );
    }

    /// Advances the loader: skips chunks that are already fully cached
    /// (the read-once lock under same-snapshot bursts, §6.6), then issues
    /// the next read.
    fn loader_issue_next(&mut self, vm: usize, now: SimTime, sched: &mut Scheduler<Ev>) {
        loop {
            let v = &self.vms[vm];
            let idx = v.loader_next;
            if idx >= v.loader_plan.len() {
                // Prefetch complete (or abandoned at reply): close the span.
                if let Some(ctx) = self.vms[vm].ctx_loader.take() {
                    self.host.tracer.end(ctx, now);
                }
                return;
            }
            let chunk = *v.loader_plan.chunk(idx);
            self.vms[vm].loader_next += 1;
            // Read-once: skip fully cached or in-flight chunks.
            let covered = (chunk.page..chunk.page + chunk.pages).all(|p| {
                self.host.pages.contains(chunk.file, p)
                    || self.host.pages.completion_of(chunk.file, p).is_some()
            });
            if covered {
                self.host
                    .metrics
                    .counter_inc("faasnap_prefetch_skipped_chunks_total", &[]);
                continue;
            }
            self.loader_submit(vm, idx, chunk, 0, now, sched);
            return;
        }
    }

    /// Issues one loader read (a whole chunk, or its uncovered suffix on
    /// a retry) through the fault-checked path.
    fn loader_submit(
        &mut self,
        vm: usize,
        idx: usize,
        io: IoRequest,
        attempt: u32,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let completion = self.host.submit_checked(now, io);
        if let Some(f) = completion.fault {
            self.record_injection(vm, now, f);
        }
        self.host
            .pages
            .insert_window(io.file, io.page, io.pages, completion.done);
        let parent = self.vms[vm].ctx_loader.unwrap_or(TraceContext::NONE);
        let ctx = self
            .host
            .tracer
            .begin("loader/chunk", "loader", now, parent);
        self.host.tracer.tag(ctx, "file_page", io.page);
        self.host.tracer.tag(ctx, "pages", io.pages);
        self.host
            .metrics
            .counter_add("faasnap_prefetch_bytes_total", &[], io.pages * 4096);
        self.host
            .metrics
            .counter_inc("faasnap_prefetch_chunks_total", &[]);
        sched.schedule(
            completion.done,
            Ev::LoaderChunkDone {
                vm,
                idx,
                io,
                attempt,
                fate: fate_of(completion.fault),
                ctx,
            },
        );
    }

    /// After a failed loader read: schedule a backoff retry, or — once
    /// the budget is spent — degrade. Prefetch failure is never fatal:
    /// if the loading-set file itself is unreadable, the whole-file
    /// memory mapping is overlaid (MAP_FIXED) so every remaining page
    /// demand-pages from the memory file with byte-identical contents;
    /// otherwise the loader is simply abandoned and the guest's own
    /// faults finish the job.
    #[allow(clippy::too_many_arguments)]
    fn loader_retry_or_degrade(
        &mut self,
        vm: usize,
        idx: usize,
        io: IoRequest,
        retry_page: u64,
        attempt: u32,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let next = attempt + 1;
        if next < MAX_LOADER_RETRIES {
            let wait = backoff(attempt);
            let at = now + wait;
            self.record_retry(vm, RetrySite::Loader, io.file, retry_page, next, wait, at);
            sched.schedule(
                at,
                Ev::LoaderRetry {
                    vm,
                    idx,
                    attempt: next,
                },
            );
            return;
        }
        let total = self.vms[vm].pt.total_pages();
        let v = &mut self.vms[vm];
        v.report.degraded = true;
        let mode = if v.ls_file == Some(io.file) {
            mapper::map_vanilla(&mut v.aspace, total, v.mem_file);
            "vanilla-fallback"
        } else {
            "prefetch-abandoned"
        };
        v.loader_next = v.loader_plan.len();
        self.host
            .metrics
            .counter_inc("faasnap_degraded_total", &[("mode", mode)]);
        self.loader_issue_next(vm, now, sched);
    }

    /// Marks an invocation as failed closed: the vCPU never resumes, the
    /// loader stops, and `try_run_invocations` surfaces the error.
    fn fail_vm(&mut self, vm: usize, now: SimTime, err: RestoreError) {
        if self.vms[vm].error.is_some() {
            return;
        }
        let site = match &err {
            RestoreError::ReadRetriesExhausted { site, .. } => site.label(),
            RestoreError::RecordIncomplete { .. } => "record",
        };
        self.host
            .metrics
            .counter_inc("faasnap_restore_failed_total", &[("site", site)]);
        let v = &mut self.vms[vm];
        v.error = Some(err);
        v.loader_next = v.loader_plan.len();
        let (ctx_f, ctx_i) = (v.ctx_function, v.ctx_invocation);
        self.host.tracer.end(ctx_f, now);
        self.host.tracer.end(ctx_i, now);
    }

    /// Accounts one observed fault injection (report + metrics + trace).
    /// Only ever called when an injection actually fired, so healthy runs
    /// emit no new metric series or trace events.
    fn record_injection(&mut self, vm: usize, now: SimTime, f: InjectedFault) {
        self.vms[vm].report.faults.record_injection(f.kind);
        self.host
            .metrics
            .counter_inc("faasnap_fault_injected_total", &[("kind", f.kind.label())]);
        if self.host.tracer.is_enabled() {
            self.host.tracer.instant(
                "fault_injected",
                "fault",
                now,
                self.vms[vm].ctx_invocation,
                vec![("kind", Value::from(f.kind.label()))],
            );
        }
    }

    /// Accounts one scheduled retry (report + metrics).
    #[allow(clippy::too_many_arguments)]
    fn record_retry(
        &mut self,
        vm: usize,
        site: RetrySite,
        file: FileId,
        page: u64,
        attempt: u32,
        wait: SimDuration,
        at: SimTime,
    ) {
        self.host
            .metrics
            .counter_inc("faasnap_retry_total", &[("site", site.label())]);
        self.vms[vm].report.faults.record_retry(
            RetryRecord {
                site,
                file,
                page,
                attempt,
                at_ns: at.as_nanos(),
            },
            wait,
        );
    }
}

/// Verifies the mapping serves the right bytes for a faulting page:
/// memory-file mappings must preserve offsets, loading-set mappings must
/// match the recorded file layout, and anonymous mappings may only cover
/// pages whose snapshot content is zero.
fn verify_mapping(v: &VmRun, page: PageNum) {
    match v.aspace.resolve(page) {
        Some(Resolved::File { file, file_page }) if file == v.mem_file => {
            assert_eq!(
                file_page, page,
                "memory-file mapping must be offset-preserving (page {page})"
            );
        }
        Some(Resolved::File { file, file_page }) => {
            let ls =
                v.ls.as_ref()
                    .expect("non-memfile mapping implies a loading set");
            assert_eq!(Some(file), v.ls_file, "unexpected backing file");
            assert_eq!(
                ls.file_page_of(page),
                Some(file_page),
                "loading-set mapping must match the recorded layout (page {page})"
            );
        }
        Some(Resolved::Anonymous) => {
            assert_eq!(
                v.mem.read(page),
                0,
                "page {page} mapped anonymously but snapshot content is non-zero"
            );
        }
        None => panic!("fault on unmapped page {page}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadingset::MERGE_GAP;
    use sim_storage::file::FileKind;
    use sim_vm::trace::TraceOp;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    /// A tiny snapshot: non-zero pages in [100, 300), zero elsewhere.
    fn tiny_world() -> (Host, GuestMemory, FileId) {
        let mut host = Host::new(DiskProfile::nvme_c5d(), 11);
        let mut mem = GuestMemory::new(2048);
        for p in 100..300 {
            mem.write(p, p * 13 + 1);
        }
        let dev = host.primary_device();
        let f = host
            .fs
            .create("tiny.mem", FileKind::SnapshotMemory, 2048, dev);
        (host, mem, f)
    }

    fn touch_trace(start: u64, len: u64, write: bool) -> Trace {
        let mut t = Trace::new();
        t.push(TraceOp::Touch {
            range: PageRange::with_len(start, len),
            stride: 1,
            write,
            per_page_compute: us(1),
            token_seed: if write { 5 } else { 0 },
        });
        t
    }

    #[test]
    fn warm_run_no_setup_no_faults_on_resident_pages() {
        let (mut host, mem, f) = tiny_world();
        let mut spec =
            InvocationSpec::new(RestoreStrategy::Warm, touch_trace(100, 50, false), mem, f);
        spec.verify_mappings = false;
        let out = run_invocation(&mut host, spec);
        assert_eq!(out.report.setup_time, SimDuration::ZERO);
        assert_eq!(out.report.total_faults(), 0, "resident pages do not fault");
        // 50 pages x 1us compute.
        let ms = out.report.invocation_time.as_millis_f64();
        assert!((0.04..0.07).contains(&ms), "invoke {ms}ms");
    }

    #[test]
    fn warm_faults_anon_on_new_pages() {
        let (mut host, mem, f) = tiny_world();
        let mut spec =
            InvocationSpec::new(RestoreStrategy::Warm, touch_trace(1000, 20, true), mem, f);
        spec.verify_mappings = false;
        let out = run_invocation(&mut host, spec);
        assert_eq!(out.report.anon_faults, 20);
        assert_eq!(out.report.major_faults, 0);
    }

    #[test]
    fn vanilla_majors_then_cached_minors() {
        let (mut host, mem, f) = tiny_world();
        let spec = InvocationSpec::new(
            RestoreStrategy::Vanilla,
            touch_trace(100, 100, false),
            mem.clone(),
            f,
        );
        let out = run_invocation(&mut host, spec);
        assert!(out.report.major_faults > 0);
        assert!(out.report.guest_fault_read_pages >= 100);
        // Second run without dropping caches: everything is cached.
        let spec2 = InvocationSpec::new(
            RestoreStrategy::Vanilla,
            touch_trace(100, 100, false),
            mem,
            f,
        );
        let out2 = run_invocation(&mut host, spec2);
        assert_eq!(out2.report.major_faults, 0);
        assert_eq!(out2.report.minor_faults, 100);
        assert!(out2.report.total_time() < out.report.total_time());
    }

    #[test]
    fn cached_strategy_pre_warms() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let spec = InvocationSpec::new(
            RestoreStrategy::Cached,
            touch_trace(100, 200, false),
            mem,
            f,
        );
        let out = run_invocation(&mut host, spec);
        assert_eq!(out.report.major_faults, 0);
        assert_eq!(out.report.minor_faults, 200);
    }

    #[test]
    fn vanilla_write_to_zero_page_reads_disk() {
        // The semantic gap (§3.2): guest anonymous allocation becomes a
        // file-backed read under whole-file mapping.
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let spec = InvocationSpec::new(
            RestoreStrategy::Vanilla,
            touch_trace(1000, 10, true),
            mem,
            f,
        );
        let out = run_invocation(&mut host, spec);
        assert!(
            out.report.major_faults > 0,
            "zero-page writes still read the file"
        );
    }

    #[test]
    fn faasnap_write_to_zero_page_is_anonymous() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        // Build artifacts: ws = the nonzero pages; heap pages zero.
        let mut ws = WorkingSet::new();
        ws.extend(&(100..300).collect::<Vec<_>>());
        let ls = LoadingSet::build(&ws, &mem, MERGE_GAP);
        let dev = host.primary_device();
        let ls_file = host
            .fs
            .create("tiny.ls", FileKind::LoadingSet, ls.file_pages(), dev);
        let mut spec = InvocationSpec::new(
            RestoreStrategy::faasnap(),
            touch_trace(1000, 10, true),
            mem,
            f,
        );
        spec.ls = Some(ls);
        spec.ls_file = Some(ls_file);
        spec.ws = Some(ws);
        let out = run_invocation(&mut host, spec);
        assert_eq!(
            out.report.anon_faults, 10,
            "heap writes are anonymous faults"
        );
        assert_eq!(out.report.guest_fault_read_pages, 0);
        assert!(!out.report.degraded);
    }

    #[test]
    fn reap_prefetch_gives_host_pte_faults() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let mut reap_ws = ReapWorkingSet::new();
        for p in 100..200 {
            reap_ws.record(p);
        }
        let dev = host.primary_device();
        let ws_file = host.fs.create("tiny.ws", FileKind::WorkingSet, 100, dev);
        let mut spec =
            InvocationSpec::new(RestoreStrategy::Reap, touch_trace(100, 150, false), mem, f);
        spec.reap_ws = Some(reap_ws);
        spec.reap_ws_file = Some(ws_file);
        let out = run_invocation(&mut host, spec);
        assert_eq!(out.report.host_pte_faults, 100, "prefetched pages");
        assert_eq!(
            out.report.uffd_faults, 50,
            "pages outside the WS go to user space"
        );
        assert_eq!(out.report.fetch_pages, 100);
        assert!(out.report.setup_time > host.boot.snapshot_setup_base());
    }

    #[test]
    fn cpu_pool_stretch() {
        let mut pool = CpuPool::new(2);
        assert_eq!(pool.stretch(), 1.0);
        pool.begin();
        pool.begin();
        assert_eq!(pool.stretch(), 1.0);
        pool.begin();
        assert_eq!(pool.stretch(), 1.5);
        assert_eq!(pool.active(), 3);
        pool.end();
        pool.end();
        pool.end();
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn burst_shares_cache_across_vms() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let mk = |mem: &GuestMemory| {
            InvocationSpec::new(
                RestoreStrategy::Vanilla,
                touch_trace(100, 200, false),
                mem.clone(),
                f,
            )
        };
        let outs = run_invocations(&mut host, vec![mk(&mem), mk(&mem), mk(&mem)]);
        let total_majors: u64 = outs.iter().map(|o| o.report.major_faults).sum();
        let total_minors_waits: u64 = outs
            .iter()
            .map(|o| o.report.minor_faults + o.report.major_faults)
            .sum();
        // All 600 accesses fault, but disk pages are read far fewer than
        // 600 times thanks to sharing (in-flight waits + cache hits).
        assert_eq!(total_minors_waits, 600);
        let read_pages = host.disks[0].stats().pages_of(IoKind::FaultRead);
        assert!(
            read_pages < 450,
            "cache sharing should dedupe reads, got {read_pages}"
        );
        assert!(total_majors > 0);
    }

    #[test]
    fn fork_siblings_share_reads_and_keep_private_writes() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let spec =
            InvocationSpec::new(RestoreStrategy::Vanilla, touch_trace(100, 50, true), mem, f);
        let fork = run_fork(&mut host, spec, 4);
        assert_eq!(fork.outcomes.len(), 4);
        // All siblings fault the same 50 pages, but the disk serves far
        // fewer than 4x: in-flight waits and cache hits dedupe reads.
        let read_pages = host.disks[0].stats().pages_of(IoKind::FaultRead);
        assert!(
            read_pages < 4 * 50,
            "siblings share reads, got {read_pages}"
        );
        assert_eq!(fork.shared_pages, 200, "base image stored once");
        assert!(
            fork.private_pages >= 4 * 50,
            "every sibling copies its dirty pages, got {}",
            fork.private_pages
        );
        for o in &fork.outcomes {
            for p in 100..150 {
                assert_eq!(o.final_memory.read(p), Trace::token_for(5, p));
            }
            assert_eq!(o.final_memory.read(150), 150 * 13 + 1, "clean page intact");
        }
    }

    #[test]
    fn fork_of_one_matches_independent_run() {
        let mk = |mem: &GuestMemory, f: FileId| {
            InvocationSpec::new(
                RestoreStrategy::Vanilla,
                touch_trace(100, 80, false),
                mem.clone(),
                f,
            )
        };
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let solo = run_invocation(&mut host, mk(&mem, f));
        // A fresh identical host, so seed and vmgenid draws line up.
        let (mut host2, mem2, f2) = tiny_world();
        host2.drop_caches();
        let fork = run_fork(&mut host2, mk(&mem2, f2), 1);
        let sib = &fork.outcomes[0];
        assert_eq!(solo.report.total_faults(), sib.report.total_faults());
        assert_eq!(solo.report.invocation_time, sib.report.invocation_time);
        assert_eq!(solo.report.setup_time, sib.report.setup_time);
        assert_eq!(solo.final_memory, sib.final_memory);
        assert_eq!(
            host.disks[0].stats(),
            host2.disks[0].stats(),
            "identical I/O stream"
        );
    }

    #[test]
    fn loader_populates_cache_for_late_vcpu() {
        // With a long setup and a small loading set, the loader finishes
        // before the vCPU starts: all guest faults become minors.
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let mut ws = WorkingSet::new();
        ws.extend(&(100..300).collect::<Vec<_>>());
        let ls = LoadingSet::build(&ws, &mem, MERGE_GAP);
        let dev = host.primary_device();
        let ls_file = host
            .fs
            .create("tiny.ls", FileKind::LoadingSet, ls.file_pages(), dev);
        let mut spec = InvocationSpec::new(
            RestoreStrategy::faasnap(),
            touch_trace(100, 200, false),
            mem,
            f,
        );
        spec.ls = Some(ls);
        spec.ls_file = Some(ls_file);
        spec.ws = Some(ws);
        let out = run_invocation(&mut host, spec);
        assert_eq!(
            out.report.major_faults, 0,
            "loader beat the 50ms setup window"
        );
        assert_eq!(out.report.minor_faults, 200);
        assert!(out.report.fetch_time > SimDuration::ZERO);
    }

    #[test]
    fn record_mode_produces_working_sets() {
        let (mut host, mem, f) = tiny_world();
        host.drop_caches();
        let mut spec = InvocationSpec::new(
            RestoreStrategy::Vanilla,
            touch_trace(100, 50, false),
            mem,
            f,
        );
        spec.record = true;
        let out = run_invocation(&mut host, spec);
        let ws = out.ws.expect("working set recorded");
        let reap = out.reap_ws.expect("REAP set recorded");
        assert_eq!(reap.len(), 50, "every first fault recorded");
        assert!(ws.len() >= 50, "mincore WS includes readahead");
    }

    #[test]
    fn guest_writes_visible_in_final_memory() {
        let (mut host, mem, f) = tiny_world();
        let spec = InvocationSpec::new(RestoreStrategy::Vanilla, touch_trace(100, 5, true), mem, f);
        let out = run_invocation(&mut host, spec);
        for p in 100..105 {
            assert_eq!(out.final_memory.read(p), Trace::token_for(5, p));
        }
        assert_eq!(
            out.final_memory.read(105),
            105 * 13 + 1,
            "untouched page intact"
        );
    }

    #[test]
    fn restored_clones_get_unique_generation_ids() {
        // §7.4: "a special device to provide unique VM IDs to the
        // restored VMs" so clones from one snapshot diverge their PRNGs.
        let (mut host, mem, f) = tiny_world();
        let mk = || {
            InvocationSpec::new(
                RestoreStrategy::Vanilla,
                touch_trace(100, 5, false),
                mem.clone(),
                f,
            )
        };
        let a = run_invocation(&mut host, mk());
        let b = run_invocation(&mut host, mk());
        assert_ne!(a.report.vm_generation_id, b.report.vm_generation_id);
        assert!(a.report.vm_generation_id > 0);
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let (mut host, mem, f) = tiny_world();
            let spec = InvocationSpec::new(
                RestoreStrategy::Vanilla,
                touch_trace(100, 100, false),
                mem,
                f,
            );
            run_invocation(&mut host, spec)
                .report
                .total_time()
                .as_nanos()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "mapped anonymously but snapshot content is non-zero")]
    fn mapping_verification_catches_stale_scans() {
        let (mut host, mem, f) = tiny_world();
        let mut spec =
            InvocationSpec::new(RestoreStrategy::Vanilla, touch_trace(100, 5, false), mem, f);
        // Sabotage: map the file with a shifted offset.
        spec.nonzero_regions.clear();
        let out_aspace_bug = spec.clone();
        let _ = out_aspace_bug;
        // Build a custom broken world by mapping manually through the
        // public API: easiest is to shift the whole-file mapping by
        // replacing mem_file offsets — emulate by running with a spec
        // whose memory was shifted relative to the file.
        let mut shifted = GuestMemory::new(2048);
        for p in 100..300 {
            shifted.write(p + 1, p * 13 + 1);
        }
        spec.memory = shifted;
        // Now page 101 is non-zero in "RAM" but the file offset check
        // can't catch that (offsets still align); instead the anonymous
        // check fires on a page the mapper thinks is zero. Use FaaSnap
        // mapping to trigger it.
        spec.strategy = RestoreStrategy::faasnap();
        spec.nonzero_regions = vec![PageRange::new(100, 300)]; // stale scan
        let mut ws = WorkingSet::new();
        ws.extend(&[100]);
        let ls = LoadingSet::build(&ws, &spec.memory, 0);
        let dev = host.primary_device();
        let ls_file = host
            .fs
            .create("x.ls", FileKind::LoadingSet, 1.max(ls.file_pages()), dev);
        spec.ls = Some(ls);
        spec.ls_file = Some(ls_file);
        spec.ws = Some(ws);
        // Touching page 300 (zero per stale scan, non-zero in RAM).
        spec.trace = touch_trace(300, 1, false);
        run_invocation(&mut host, spec);
    }
}
