//! FaaSnap: snapshot recording and restore strategies.
//!
//! This crate is the paper's contribution plus its baselines:
//!
//! - [`wset`] — working sets with access-order *groups* of N = 1024 pages
//!   (§4.3) and REAP's fault-order working set.
//! - [`record`] — the record phase's *host page recording* via repeated
//!   `mincore` scans paced by guest RSS growth (§4.4, §5), and REAP's
//!   `userfaultfd` fault tracking.
//! - [`loadingset`] — the loading set (working set ∩ non-zero pages,
//!   §4.6), region merging with a 32-page gap threshold, and the compact
//!   loading-set file layout sorted by (group, address) (§4.7).
//! - [`mapper`] — per-region memory mapping via hierarchical overlapping
//!   `MAP_FIXED` mappings (§4.5, §4.8, Figure 4), plus the flat
//!   alternative for comparison.
//! - [`loader`] — the concurrent-paging daemon loader (§4.2): prefetch
//!   plans over the loading-set file (or, for ablations, the memory file).
//! - [`reap`] — the REAP baseline: blocking working-set fetch with
//!   `UFFDIO_COPY` install, and the serialized user-level handler for
//!   out-of-set faults.
//! - [`strategy`] — the restore strategy taxonomy (Warm / Firecracker /
//!   Cached / REAP / FaaSnap and its Figure 9 ablations).
//! - [`runtime`] — the discrete-event world that executes an invocation
//!   under a strategy: vCPU, loader, disk, page cache, fault handling.
//! - [`artifacts`] — the record phase: produces the warm snapshot, the
//!   working set, the loading-set file, and the REAP working-set file.
//! - [`snapstore`] — base+delta snapshot recording over the
//!   content-addressed chunk store (`faasnap-store`): one shared base per
//!   function family, dirty-chunk deltas per instance, and store-backed
//!   read layouts for the restore path.
//! - [`report`] — per-invocation metrics (setup/invocation time, fault
//!   histograms, loader fetch time/size, disk traffic) matching the
//!   paper's measurement methodology.

#![forbid(unsafe_code)]
pub mod artifacts;
pub mod error;
pub mod loader;
pub mod loadingset;
pub mod mapper;
pub mod reap;
pub mod record;
pub mod report;
pub mod runtime;
pub mod snapstore;
pub mod strategy;
pub mod wset;

pub use artifacts::{record_phase, try_record_phase_with, SnapshotArtifacts};
pub use error::{RestoreError, RetrySite};
pub use loadingset::{LoadingSet, LsRegion};
pub use report::{FaultReport, InvocationReport, RetryRecord};
pub use runtime::{Host, InvocationSim, MmDelaySpec};
pub use snapstore::{FamilyStore, NamedSnapshot};
pub use strategy::{FaasnapConfig, RestoreStrategy};
pub use wset::{ReapWorkingSet, WorkingSet, GROUP_SIZE};
