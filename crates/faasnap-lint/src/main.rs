//! `faasnap-lint` CLI: lint the workspace, print diagnostics, exit 1 if
//! any. `--root <dir>` overrides the workspace root (default: walk up
//! from the current directory); `--deep` runs the interprocedural
//! passes (call graph + determinism taint + panic/float/dead-allow);
//! `--json` emits the machine-readable report instead of text;
//! `--rules` lists the rule ids.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deep = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("faasnap-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--deep" => deep = true,
            "--json" => json = true,
            "--rules" => {
                for id in faasnap_lint::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!(
                    "faasnap-lint: unknown argument {other:?} \
                     (usage: [--root DIR] [--deep] [--json] [--rules])"
                );
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| faasnap_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("faasnap-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let result = if deep {
        faasnap_lint::lint_workspace_deep(&root)
    } else {
        faasnap_lint::lint_workspace(&root)
    };
    match result {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
                println!(
                    "unwrap-budget: {} of {} non-test unwrap()/expect() call sites used",
                    report.unwrap_count, report.unwrap_budget
                );
                if deep {
                    println!(
                        "panic-path-budget: {} of {} non-test panic paths used",
                        report.panic_path_count, report.panic_path_budget
                    );
                }
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                eprintln!("faasnap-lint: {} diagnostic(s)", report.diagnostics.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("faasnap-lint: {e}");
            ExitCode::from(2)
        }
    }
}
