//! Diagnostics: stable, sortable `file:line: rule-id: message` records.

use std::fmt;

/// One lint finding. The derived `Ord` (path, then line, then rule, then
/// message) is the output order, so reports are byte-stable across runs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/sim-mm/src/fault.rs`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id (`no-unordered-iteration`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(path: &str, line: u32, rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message: message.into(),
        }
    }
}

/// Escapes a string for embedding in a JSON string literal. Minimal on
/// purpose (quote, backslash, control chars) — diagnostic text is ASCII
/// prose this crate itself produces.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let d = Diagnostic::new("crates/x/src/lib.rs", 7, "no-wallclock", "bad");
        assert_eq!(d.to_string(), "crates/x/src/lib.rs:7: no-wallclock: bad");
    }

    #[test]
    fn sort_order_is_path_line_rule() {
        let mut v = [
            Diagnostic::new("b.rs", 1, "no-threads", "m"),
            Diagnostic::new("a.rs", 9, "no-threads", "m"),
            Diagnostic::new("a.rs", 2, "no-wallclock", "m"),
            Diagnostic::new("a.rs", 2, "no-os-entropy", "m"),
        ];
        v.sort();
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, "no-os-entropy");
        assert_eq!(v[3].path, "b.rs");
    }
}
