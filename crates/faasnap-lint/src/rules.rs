//! The text-rule engine: determinism rules over masked source lines.
//!
//! Rules match identifier-bounded substrings in code (never comments or
//! strings — see [`crate::lexer`]). Any finding can be suppressed with an
//! inline `allow` directive written as the `faasnap-lint` marker, a colon,
//! then `allow(rule-id, reason)` in a line comment; the reason is
//! mandatory. A directive suppresses matching findings on its own line and
//! on the line directly below it, so both trailing and preceding
//! placements work. A directive with a missing reason or an unknown rule
//! id is itself reported (`malformed-allow`) and suppresses nothing.

use crate::diag::Diagnostic;
use crate::lexer::{self, Comment};

/// Every rule id the tool can emit, in stable order. The first block is
/// the line-lexer rules; the second block only fires under `--deep`
/// (parser/call-graph/taint passes — see [`crate::taint`]).
pub const RULE_IDS: &[&str] = &[
    "no-wallclock",
    "no-os-entropy",
    "no-threads",
    "no-unordered-iteration",
    "unwrap-budget",
    "layering",
    "missing-forbid-unsafe",
    "malformed-allow",
    "no-env-read",
    "determinism-taint",
    "panic-path",
    "float-determinism",
    "dead-allow",
];

/// Where a source file sits, for rule applicability decisions.
#[derive(Clone, Copy, Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub path: &'a str,
    /// Cargo package name of the owning crate.
    pub crate_name: &'a str,
    /// True for files under `tests/`, `benches/`, or `examples/` —
    /// harness code, exempt from the unwrap budget.
    pub is_harness: bool,
}

/// Result of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileLint {
    /// Findings, sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test `unwrap()`/`expect()` call sites (budget input).
    pub unwrap_sites: u64,
    /// True if the file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Well-formed allow directives, with usage marks. The deep passes
    /// keep marking these; whatever stays unused becomes `dead-allow`.
    pub allows: Vec<AllowRecord>,
}

/// A parsed, well-formed allow directive plus whether it ever fired.
#[derive(Clone, Debug)]
pub struct AllowRecord {
    /// 1-based line the directive comment starts on.
    pub line: u32,
    /// Rule id it suppresses.
    pub rule: String,
    /// True once the directive has suppressed at least one finding (or
    /// exempted at least one budget site) in any pass.
    pub used: bool,
}

impl AllowRecord {
    /// A directive covers its own line (trailing form) and the next line
    /// (preceding form).
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (self.line == line || self.line + 1 == line)
    }
}

/// True if some directive covers (rule, line); marks it used.
pub fn consume_allow(allows: &mut [AllowRecord], rule: &str, line: u32) -> bool {
    let mut hit = false;
    for a in allows.iter_mut() {
        if a.covers(rule, line) {
            a.used = true;
            hit = true;
        }
    }
    hit
}

struct TextRule {
    id: &'static str,
    patterns: &'static [&'static str],
    /// `{}` is replaced with the matched pattern.
    message: &'static str,
    applies: fn(&FileCtx) -> bool,
}

fn everywhere(_: &FileCtx) -> bool {
    true
}

/// Wall-clock is sanctioned in exactly two crates: the criterion shim
/// (measures real benchmark iterations) and faasnap-obs, whose
/// self-profiler reads a monotonic clock behind the off-by-default
/// `wallclock` cargo feature and never feeds timing back into the
/// simulation. Everything else must derive time from SimTime.
fn wallclock_sanctioned(ctx: &FileCtx) -> bool {
    ctx.crate_name != "criterion" && ctx.crate_name != "faasnap-obs"
}

const TEXT_RULES: &[TextRule] = &[
    TextRule {
        id: "no-wallclock",
        patterns: &["Instant::now", "SystemTime"],
        message: "wall-clock source `{}` in deterministic code; derive time from \
                  sim_core::time::SimTime instead",
        applies: wallclock_sanctioned,
    },
    TextRule {
        id: "no-os-entropy",
        patterns: &[
            "RandomState",
            "thread_rng",
            "OsRng",
            "from_entropy",
            "getrandom",
        ],
        message: "OS entropy source `{}`; use a seeded sim_core::rng::Prng so runs replay \
                  byte-identically",
        applies: everywhere,
    },
    TextRule {
        id: "no-threads",
        patterns: &["thread::spawn", "thread::sleep"],
        message: "`{}` in simulation/runtime code; the DES engine is single-threaded and \
                  sleeps in simulated time only",
        applies: everywhere,
    },
    // sim_core::detmap::DetMap / DetSet are the sanctioned hash
    // containers: seeded hashing, insertion-ordered iteration, so they
    // replay byte-identically and never match this rule.
    TextRule {
        id: "no-unordered-iteration",
        patterns: &["HashMap", "HashSet"],
        message: "`{}` has unspecified iteration order, the classic determinism leak; use \
                  sim_core::detmap::DetMap/DetSet (seeded, insertion-ordered), \
                  BTreeMap/BTreeSet, or sort before iterating",
        applies: everywhere,
    },
];

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Occurrences of `pat` in `line` at identifier boundaries (so `HashMap`
/// does not match inside `MyHashMapLike`).
pub fn count_matches(line: &str, pat: &str) -> u64 {
    let lb = line.as_bytes();
    let pb = pat.as_bytes();
    let bound_front = is_ident_byte(pb[0]);
    let bound_back = is_ident_byte(pb[pb.len() - 1]);
    let mut n = 0u64;
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(pat) {
        let p = start + pos;
        let end = p + pb.len();
        let pre_ok = !bound_front || p == 0 || !is_ident_byte(lb[p - 1]);
        let post_ok = !bound_back || end >= lb.len() || !is_ident_byte(lb[end]);
        if pre_ok && post_ok {
            n += 1;
        }
        start = p + 1;
    }
    n
}

const MARKER: &str = concat!("faasnap-lint", ":");

fn parse_directives(ctx: &FileCtx, comments: &[Comment]) -> (Vec<AllowRecord>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let rest = c.text[pos + MARKER.len()..].trim();
        let malformed = |msg: String| Diagnostic::new(ctx.path, c.line, "malformed-allow", msg);
        let Some(body) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            diags.push(malformed(format!(
                "directive must read `allow(rule-id, reason)`, got `{rest}`"
            )));
            continue;
        };
        let (rule, reason) = match body.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (body.trim(), ""),
        };
        if !RULE_IDS.contains(&rule) {
            diags.push(malformed(format!("unknown rule id `{rule}`")));
        } else if reason.is_empty() {
            diags.push(malformed(format!(
                "allow({rule}) needs a reason: `allow({rule}, why this is sound)`"
            )));
        } else {
            allows.push(AllowRecord {
                line: c.line,
                rule: rule.to_string(),
                used: false,
            });
        }
    }
    (allows, diags)
}

/// Marks lines inside `#[cfg(test)]`-attributed items (brace-balanced on
/// the masked text), which the unwrap budget skips.
pub fn cfg_test_lines(masked_lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; masked_lines.len()];
    let mut i = 0usize;
    while i < masked_lines.len() {
        if !masked_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut started = false;
        let mut j = i;
        'scan: while j < masked_lines.len() {
            for b in masked_lines[j].bytes() {
                match b {
                    b'{' => {
                        depth += 1;
                        started = true;
                    }
                    b'}' => {
                        depth -= 1;
                        if started && depth == 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(masked_lines.len() - 1);
        for flag in &mut in_test[i..=end] {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Lints one file's source text. Layering and crate-root checks live in
/// [`crate::layering`] and [`crate::lint_workspace`]; everything
/// line-shaped happens here.
pub fn lint_source(ctx: &FileCtx, source: &str) -> FileLint {
    lint_scanned(ctx, &lexer::scan(source))
}

/// [`lint_source`] over an already-scanned file, so the deep pipeline
/// can lex once and share the result with the parser.
pub fn lint_scanned(ctx: &FileCtx, scanned: &lexer::Scanned) -> FileLint {
    let (mut allows, mut diagnostics) = parse_directives(ctx, &scanned.comments);
    let test_lines = cfg_test_lines(&scanned.masked_lines);
    let mut unwrap_sites = 0u64;
    let mut has_forbid_unsafe = false;

    for (idx, mline) in scanned.masked_lines.iter().enumerate() {
        let line = idx as u32 + 1;
        if mline.contains("#![forbid(unsafe_code)]") {
            has_forbid_unsafe = true;
        }
        for rule in TEXT_RULES {
            if !(rule.applies)(ctx) {
                continue;
            }
            for pat in rule.patterns {
                if count_matches(mline, pat) > 0 && !consume_allow(&mut allows, rule.id, line) {
                    diagnostics.push(Diagnostic::new(
                        ctx.path,
                        line,
                        rule.id,
                        rule.message.replace("{}", pat),
                    ));
                }
            }
        }
        if !ctx.is_harness && !test_lines[idx] {
            let n = count_matches(mline, ".unwrap()") + count_matches(mline, ".expect(");
            if n > 0 && !consume_allow(&mut allows, "unwrap-budget", line) {
                unwrap_sites += n;
            }
        }
    }

    diagnostics.sort();
    FileLint {
        diagnostics,
        unwrap_sites,
        has_forbid_unsafe,
        allows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FileCtx<'static> {
        FileCtx {
            path: "crates/sim-x/src/lib.rs",
            crate_name: "sim-x",
            is_harness: false,
        }
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source(&ctx(), src)
            .diagnostics
            .iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn wallclock_and_entropy_fire() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() { let s = std::collections::hash_map::RandomState::new(); }\n";
        assert_eq!(rules_of(src), vec!["no-wallclock", "no-os-entropy"]);
    }

    #[test]
    fn criterion_exempt_from_wallclock_only() {
        let c = FileCtx {
            path: "crates/criterion/src/lib.rs",
            crate_name: "criterion",
            is_harness: false,
        };
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(lint_source(&c, src).diagnostics.is_empty());
    }

    #[test]
    fn obs_selfprofiler_exempt_from_wallclock_only() {
        let c = FileCtx {
            path: "crates/faasnap-obs/src/selfprof.rs",
            crate_name: "faasnap-obs",
            is_harness: false,
        };
        let wall = "fn f() { let t = std::time::Instant::now(); }\n";
        assert!(lint_source(&c, wall).diagnostics.is_empty());
        // The carve-out covers wall-clock only: entropy still fires.
        let entropy = "fn g() { let s = RandomState::new(); }\n";
        assert_eq!(
            lint_source(&c, entropy)
                .diagnostics
                .iter()
                .map(|d| d.rule)
                .collect::<Vec<_>>(),
            vec!["no-os-entropy"],
        );
    }

    #[test]
    fn detmap_and_detset_are_sanctioned() {
        // The deterministic hash containers must not trip the rule the
        // way HashMap/HashSet do — no per-site allow needed.
        let src = "use sim_core::detmap::{DetMap, DetSet};\n\
                   fn f() { let m: DetMap<u32, u32> = DetMap::new(); let _ = m.len(); }\n\
                   fn g() { let s: DetSet<u32> = DetSet::new(); let _ = s.len(); }\n";
        assert!(rules_of(src).is_empty());
        assert_eq!(
            rules_of("let m = HashMap::new();\n"),
            vec!["no-unordered-iteration"]
        );
    }

    #[test]
    fn patterns_in_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str { \"no HashMap, no Instant::now\" }\n\
                   fn g() {} /* thread::spawn in prose */\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn ident_boundary_respected() {
        assert_eq!(count_matches("struct MyHashMapLike;", "HashMap"), 0);
        assert_eq!(count_matches("let m: HashMap<u32, u32>;", "HashMap"), 1);
        assert_eq!(count_matches("a.unwrap().b.unwrap()", ".unwrap()"), 2);
        assert_eq!(count_matches("x.expect_err(\"e\")", ".expect("), 0);
    }

    #[test]
    fn unwrap_budget_counts_non_test_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn g(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"t\") }\n\
                   }\n";
        assert_eq!(lint_source(&ctx(), src).unwrap_sites, 1);
    }

    #[test]
    fn harness_files_skip_unwrap_budget() {
        let c = FileCtx {
            path: "crates/sim-x/tests/t.rs",
            crate_name: "sim-x",
            is_harness: true,
        };
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source(&c, src).unwrap_sites, 0);
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(lint_source(&ctx(), "#![forbid(unsafe_code)]\n").has_forbid_unsafe);
        assert!(!lint_source(&ctx(), "// #![forbid(unsafe_code)]\n").has_forbid_unsafe);
    }
}
