//! Workspace-wide call graph over the parsed items.
//!
//! Nodes are the `fn` items [`crate::parse`] extracted; edges come from
//! a token scan of each body (plain calls, `path::calls`, `.method()`
//! calls). Resolution is name-based and deliberately conservative:
//!
//! * a path call whose first segment names a workspace crate (or
//!   `crate`/`self`/`super`) is confined to that crate; `Type::name`
//!   prefers candidates owned by `Type`;
//! * a plain call prefers same-file, then same-crate, then any workspace
//!   function of that name (imports resolve aliases first);
//! * a method call links to **every** workspace method of that name —
//!   over-approximating the dynamic dispatch the analyzer cannot see.
//!
//! Extra edges make the taint pass over-report, never under-report,
//! which is the right failure mode for a determinism gate. Calls that
//! resolve to nothing are external (std, shimmed deps) and carry no
//! workspace taint — the nondeterminism *sources* among them are caught
//! textually at the call site by the line rules.
//!
//! The one hard prune is the Cargo dependency relation ([`CrateDeps`]):
//! a call cannot land in a crate the caller's crate does not
//! (transitively) depend on — the code would not link. Dev-dependencies
//! are reachable only from test/harness code, matching how Cargo builds
//! them. Without this prune, ubiquitous method names (`new`, `insert`,
//! `default`) would fan out across unrelated crates and a single source
//! would taint the entire workspace.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::layering::Manifest;
use crate::parse::{is_expr_keyword, ParsedFile, Tok};

/// Which crates each crate's code may call into. Crates absent from
/// `normal` are unconstrained (fixture snippets lint without manifests).
#[derive(Clone, Debug, Default)]
pub struct CrateDeps {
    /// crate → transitive closure of its normal dependencies.
    normal: BTreeMap<String, BTreeSet<String>>,
    /// crate → dev-dependencies plus *their* normal closures
    /// (reachable from test/harness code only).
    dev: BTreeMap<String, BTreeSet<String>>,
}

impl CrateDeps {
    /// Builds the relation from parsed manifests, closing normal deps
    /// transitively (re-exports make indirect deps callable).
    pub fn from_manifests(manifests: &[Manifest]) -> Self {
        let direct: BTreeMap<&str, Vec<&str>> = manifests
            .iter()
            .map(|m| {
                (
                    m.name.as_str(),
                    m.deps.iter().map(|d| d.name.as_str()).collect(),
                )
            })
            .collect();
        let closure = |seeds: &[&str]| -> BTreeSet<String> {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut queue: Vec<&str> = seeds.to_vec();
            while let Some(c) = queue.pop() {
                if seen.insert(c) {
                    if let Some(next) = direct.get(c) {
                        queue.extend(next.iter().copied());
                    }
                }
            }
            seen.into_iter().map(str::to_string).collect()
        };
        let mut out = CrateDeps::default();
        for m in manifests {
            let normal: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
            let mut dev_seeds = normal.clone();
            dev_seeds.extend(m.dev_deps.iter().map(|d| d.name.as_str()));
            out.normal.insert(m.name.clone(), closure(&normal));
            out.dev.insert(m.name.clone(), closure(&dev_seeds));
        }
        out
    }

    /// True if code in `caller` (test/harness code when `testish`) may
    /// call into `callee`.
    fn allows(&self, caller: &str, callee: &str, testish: bool) -> bool {
        if caller == callee {
            return true;
        }
        let Some(normal) = self.normal.get(caller) else {
            return true; // unknown crate: no manifest, stay permissive
        };
        if normal.contains(callee) {
            return true;
        }
        testish && self.dev.get(caller).is_some_and(|d| d.contains(callee))
    }
}

/// One analyzed source file: identity plus its parse.
pub struct FileUnit {
    /// Workspace-relative path.
    pub rel: String,
    /// Owning crate (Cargo package name, e.g. `sim-core`).
    pub crate_name: String,
    /// True under `tests/`, `benches/`, or `examples/`.
    pub is_harness: bool,
    /// Parsed items and tokens.
    pub parsed: ParsedFile,
}

/// One node of the call graph.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index of the owning [`FileUnit`].
    pub file: usize,
    /// Index of the [`crate::parse::FnItem`] within that file.
    pub item: usize,
    /// Function name.
    pub name: String,
    /// Owning crate name (copied from the file for cheap filtering).
    pub crate_name: String,
    /// `fn` keyword line.
    pub line: u32,
    /// Declared `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// In a `#[cfg(test)]` region or a harness file.
    pub is_test: bool,
    /// `impl`/`trait` owner, if any.
    pub self_type: Option<String>,
    /// Takes a `self` parameter.
    pub has_self: bool,
}

/// A call site extracted from a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallSite {
    /// `name(...)` — an unqualified call.
    Plain { name: String, line: u32 },
    /// `a::b::name(...)` — path-qualified call, all segments kept.
    Path { segments: Vec<String>, line: u32 },
    /// `.name(...)` — method call.
    Method { name: String, line: u32 },
    /// `name!(...)` — macro invocation.
    Macro { name: String, line: u32 },
    /// `expr[...]` — index expression (panic path).
    Index { line: u32 },
}

impl CallSite {
    /// Source line of the site.
    pub fn line(&self) -> u32 {
        match self {
            CallSite::Plain { line, .. }
            | CallSite::Path { line, .. }
            | CallSite::Method { line, .. }
            | CallSite::Macro { line, .. }
            | CallSite::Index { line } => *line,
        }
    }
}

/// Scans a body token range for call/macro/index sites.
pub fn extract_sites(parsed: &ParsedFile, body: Range<usize>) -> Vec<CallSite> {
    let toks = &parsed.tokens;
    let mut sites = Vec::new();
    let mut i = body.start;
    while i < body.end {
        match &toks[i].kind {
            Tok::Word(w) => {
                let line = toks[i].line;
                // Path or plain call: walk `::`-joined segments.
                let mut segments = vec![w.clone()];
                let mut j = i + 1;
                while j + 2 < body.end
                    && toks[j].kind.is(':')
                    && toks[j + 1].kind.is(':')
                    && matches!(toks[j + 2].kind, Tok::Word(_))
                {
                    if let Tok::Word(next) = &toks[j + 2].kind {
                        segments.push(next.clone());
                    }
                    j += 3;
                }
                let end_line = toks[j - 1].line;
                if j < body.end && toks[j].kind.is('!') && segments.len() == 1 {
                    sites.push(CallSite::Macro {
                        name: segments.remove(0),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                // Skip a turbofish before the call parens:
                // `collect::<Vec<_>>()`.
                let mut k = j;
                if k + 1 < body.end && toks[k].kind.is(':') && toks[k + 1].kind.is(':') {
                    k += 2;
                    if k < body.end && toks[k].kind.is('<') {
                        let mut depth = 0i64;
                        while k < body.end {
                            if toks[k].kind.is('<') {
                                depth += 1;
                            } else if toks[k].kind.is('>') {
                                depth -= 1;
                                if depth == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            k += 1;
                        }
                    }
                }
                if k < body.end && toks[k].kind.is('(') {
                    let is_method = i > body.start && toks[i - 1].kind.is('.');
                    let head = segments[0].as_str();
                    if is_method && segments.len() == 1 {
                        sites.push(CallSite::Method {
                            name: segments.remove(0),
                            line,
                        });
                    } else if segments.len() > 1 {
                        sites.push(CallSite::Path {
                            segments,
                            line: end_line,
                        });
                    } else if !is_expr_keyword(head) && head != "fn" {
                        sites.push(CallSite::Plain {
                            name: segments.remove(0),
                            line,
                        });
                    }
                }
                i = j;
            }
            Tok::Punct('[') => {
                // Postfix index: `word[`, `)[`, `][` — never after a
                // keyword (`return [vec]`), a type position, or `#[`.
                let indexes = i > body.start
                    && match &toks[i - 1].kind {
                        Tok::Word(w) => !is_expr_keyword(w),
                        Tok::Punct(p) => *p == ')' || *p == ']',
                    };
                if indexes {
                    sites.push(CallSite::Index { line: toks[i].line });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    sites
}

/// The workspace call graph.
pub struct Graph {
    /// All function nodes, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// Forward edges: `callees[n]` = nodes `n` may call (sorted, deduped).
    pub callees: Vec<Vec<usize>>,
    /// Reverse edges: `callers[n]` = nodes that may call `n`.
    pub callers: Vec<Vec<usize>>,
}

impl Graph {
    /// Human-readable node label: `Type::name` or `name`.
    pub fn label(&self, n: usize) -> String {
        let node = &self.nodes[n];
        match &node.self_type {
            Some(t) => format!("{t}::{}", node.name),
            None => node.name.clone(),
        }
    }

    /// Nodes reachable from the given start set over forward edges
    /// (including the starts themselves).
    pub fn reachable_from(&self, starts: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in starts {
            if !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            for &c in &self.callees[n] {
                if !seen[c] {
                    seen[c] = true;
                    queue.push(c);
                }
            }
        }
        seen
    }
}

/// Maps a crate-path segment (`sim_core`) to its package name
/// (`sim-core`) if it names a workspace crate.
fn segment_crate<'a>(seg: &str, crates: &'a [String]) -> Option<&'a str> {
    crates
        .iter()
        .map(String::as_str)
        .find(|c| c.replace('-', "_") == seg)
}

/// Builds the call graph over all files, pruning cross-crate edges the
/// dependency relation rules out.
pub fn build(files: &[FileUnit], deps: &CrateDeps) -> Graph {
    let mut nodes = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ii, item) in file.parsed.fns.iter().enumerate() {
            nodes.push(FnNode {
                file: fi,
                item: ii,
                name: item.name.clone(),
                crate_name: file.crate_name.clone(),
                line: item.line,
                is_pub: item.is_pub,
                is_test: item.in_cfg_test || file.is_harness,
                self_type: item.self_type.clone(),
                has_self: item.has_self_param,
            });
        }
    }

    // Name index over all nodes; BTreeMap so iteration (and therefore
    // edge order) is deterministic — the linter obeys its own rules.
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (n, node) in nodes.iter().enumerate() {
        by_name.entry(node.name.clone()).or_default().push(n);
    }
    let crate_names: Vec<String> = {
        let mut v: Vec<String> = files.iter().map(|f| f.crate_name.clone()).collect();
        v.sort();
        v.dedup();
        v
    };

    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (n, node) in nodes.iter().enumerate() {
        let file = &files[node.file];
        let item = &file.parsed.fns[node.item];
        if item.body.is_empty() {
            continue;
        }
        let mut out = Vec::new();
        for site in extract_sites(&file.parsed, item.body.clone()) {
            resolve(
                &site,
                node,
                file,
                &nodes,
                &by_name,
                &crate_names,
                deps,
                &mut out,
            );
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&c| c != n); // self-recursion adds nothing to taint
        callees[n] = out;
    }

    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (n, outs) in callees.iter().enumerate() {
        for &c in outs {
            callers[c].push(n);
        }
    }
    Graph {
        nodes,
        callees,
        callers,
    }
}

/// Appends the node indices a call site may land on.
#[allow(clippy::too_many_arguments)]
fn resolve(
    site: &CallSite,
    caller: &FnNode,
    file: &FileUnit,
    nodes: &[FnNode],
    by_name: &BTreeMap<String, Vec<usize>>,
    crate_names: &[String],
    deps: &CrateDeps,
    out: &mut Vec<usize>,
) {
    // Feasible candidates only: the dependency prune applies before any
    // narrowing, so an impossible cross-crate match can never shadow a
    // reachable one.
    let candidates = |name: &str| -> Vec<usize> {
        by_name
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|&c| deps.allows(&caller.crate_name, &nodes[c].crate_name, caller.is_test))
            .collect()
    };
    match site {
        CallSite::Method { name, .. } => {
            let cands = candidates(name);
            let with_self: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].has_self)
                .collect();
            out.extend(if with_self.is_empty() {
                cands.to_vec()
            } else {
                with_self
            });
        }
        CallSite::Plain { name, line } => {
            // An import may alias the name to a path; re-resolve as one.
            if let Some(imp) = file.parsed.imports.iter().find(|i| &i.name == name) {
                if imp.path.len() > 1 {
                    let path_site = CallSite::Path {
                        segments: imp.path.clone(),
                        line: *line,
                    };
                    resolve(
                        &path_site,
                        caller,
                        file,
                        nodes,
                        by_name,
                        crate_names,
                        deps,
                        out,
                    );
                    return;
                }
            }
            let cands = candidates(name);
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == caller.file)
                .collect();
            if !same_file.is_empty() {
                out.extend(same_file);
                return;
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].crate_name == caller.crate_name)
                .collect();
            out.extend(if same_crate.is_empty() {
                cands.to_vec()
            } else {
                same_crate
            });
        }
        CallSite::Path { segments, .. } => {
            let Some(name) = segments.last() else { return };
            // Expand a leading import alias (`use x::y; y::f()`).
            let mut segs: Vec<String> = segments.clone();
            if let Some(imp) = file.parsed.imports.iter().find(|i| i.name == segs[0]) {
                let mut full = imp.path.clone();
                full.extend(segs[1..].iter().cloned());
                segs = full;
            }
            let crate_filter: Option<&str> = match segs[0].as_str() {
                "crate" | "self" | "super" => Some(caller.crate_name.as_str()),
                "std" | "core" | "alloc" => return, // external; no workspace edge
                first => segment_crate(first, crate_names),
            };
            let type_seg: Option<&str> = if segs.len() >= 2 {
                let t = segs[segs.len() - 2].as_str();
                if t == "Self" {
                    caller.self_type.as_deref()
                } else if t.chars().next().is_some_and(char::is_uppercase) {
                    Some(t)
                } else {
                    None
                }
            } else {
                None
            };
            let cands = candidates(name);
            // Narrowing ladder: type+crate, then type alone, then crate
            // alone, then any candidate — first non-empty rung wins.
            let matches = |use_type: bool, use_crate: bool| -> Vec<usize> {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        let ok_type = !use_type
                            || type_seg.is_none()
                            || nodes[c].self_type.as_deref() == type_seg;
                        let ok_crate =
                            !use_crate || crate_filter.is_none_or(|cf| nodes[c].crate_name == cf);
                        ok_type && ok_crate
                    })
                    .collect()
            };
            for (use_type, use_crate) in [(true, true), (true, false), (false, true)] {
                let m = matches(use_type, use_crate);
                if !m.is_empty() {
                    out.extend(m);
                    return;
                }
            }
            out.extend(cands.to_vec());
        }
        CallSite::Macro { .. } | CallSite::Index { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parse::parse_file;

    fn unit(rel: &str, crate_name: &str, src: &str) -> FileUnit {
        FileUnit {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            is_harness: false,
            parsed: parse_file(&lexer::scan(src).masked_lines),
        }
    }

    fn names_of(g: &Graph, idxs: &[usize]) -> Vec<String> {
        idxs.iter().map(|&i| g.nodes[i].name.clone()).collect()
    }

    #[test]
    fn sites_extracted() {
        let src = "fn f(v: &[u32], m: &M) -> u32 {\n\
                       helper(1);\n\
                       sim_core::rng::seeded(7);\n\
                       m.lookup(3);\n\
                       panic!(\"boom\");\n\
                       v[0] + v.iter().collect::<Vec<_>>().len() as u32\n\
                   }\n";
        let p = parse_file(&lexer::scan(src).masked_lines);
        let sites = extract_sites(&p, p.fns[0].body.clone());
        assert!(sites.contains(&CallSite::Plain {
            name: "helper".into(),
            line: 2
        }));
        assert!(sites.contains(&CallSite::Path {
            segments: vec!["sim_core".into(), "rng".into(), "seeded".into()],
            line: 3
        }));
        assert!(sites.contains(&CallSite::Method {
            name: "lookup".into(),
            line: 4
        }));
        assert!(sites.contains(&CallSite::Macro {
            name: "panic".into(),
            line: 5
        }));
        assert!(sites.contains(&CallSite::Index { line: 6 }));
        // `.iter()` and `.collect::<..>()` are methods, not indexes.
        assert_eq!(
            sites
                .iter()
                .filter(|s| matches!(s, CallSite::Index { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let src = "fn f() -> [u32; 2] {\n    let a = [1, 2];\n    return [0, 1];\n}\n";
        let p = parse_file(&lexer::scan(src).masked_lines);
        let sites = extract_sites(&p, p.fns[0].body.clone());
        assert!(sites.iter().all(|s| !matches!(s, CallSite::Index { .. })));
    }

    #[test]
    fn plain_calls_prefer_same_file_then_same_crate() {
        let a = unit(
            "crates/a/src/lib.rs",
            "crate-a",
            "fn helper() {}\nfn top() { helper(); }\n",
        );
        let b = unit("crates/b/src/lib.rs", "crate-b", "pub fn helper() {}\n");
        let g = build(&[a, b], &CrateDeps::default());
        // top (node 1) calls helper; the same-file helper (node 0) wins.
        assert_eq!(g.callees[1], vec![0]);
        assert_eq!(g.callers[0], vec![1]);
        assert!(g.callers[2].is_empty());
    }

    #[test]
    fn path_calls_confined_to_named_crate() {
        let a = unit(
            "crates/a/src/lib.rs",
            "crate-a",
            "pub fn go() { crate_b::helper(); }\n",
        );
        let b = unit("crates/b/src/lib.rs", "crate-b", "pub fn helper() {}\n");
        let c = unit("crates/c/src/lib.rs", "crate-c", "pub fn helper() {}\n");
        let g = build(&[a, b, c], &CrateDeps::default());
        assert_eq!(names_of(&g, &g.callees[0]), vec!["helper"]);
        assert_eq!(g.callees[0], vec![1]); // crate-b's helper, not crate-c's
    }

    #[test]
    fn type_qualified_calls_prefer_owner() {
        let src = "struct Host;\nimpl Host {\n    pub fn new() -> Host { Host }\n}\n\
                   struct Disk;\nimpl Disk {\n    pub fn new() -> Disk { Disk }\n}\n\
                   pub fn boot() { let _ = Host::new(); }\n";
        let g = build(
            &[unit("crates/a/src/lib.rs", "crate-a", src)],
            &CrateDeps::default(),
        );
        let boot = g.nodes.iter().position(|n| n.name == "boot").expect("boot");
        let hosts: Vec<&str> = g.callees[boot]
            .iter()
            .map(|&c| g.nodes[c].self_type.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(hosts, vec!["Host"]);
    }

    #[test]
    fn method_calls_fan_out_to_all_owners() {
        let src = "struct A;\nimpl A { pub fn poll(&self) {} }\n\
                   struct B;\nimpl B { pub fn poll(&self) {} }\n\
                   pub fn drive(x: &A) { x.poll(); }\n";
        let g = build(
            &[unit("crates/a/src/lib.rs", "crate-a", src)],
            &CrateDeps::default(),
        );
        let drive = g
            .nodes
            .iter()
            .position(|n| n.name == "drive")
            .expect("drive");
        assert_eq!(g.callees[drive].len(), 2); // conservative: both polls
    }

    #[test]
    fn import_alias_resolves() {
        let a = unit(
            "crates/a/src/lib.rs",
            "crate-a",
            "use crate_b::deep::helper as h;\npub fn go() { h(); }\n",
        );
        let b = unit("crates/b/src/lib.rs", "crate-b", "pub fn helper() {}\n");
        let g = build(&[a, b], &CrateDeps::default());
        let go = g.nodes.iter().position(|n| n.name == "go").expect("go");
        assert_eq!(names_of(&g, &g.callees[go]), vec!["helper"]);
    }

    #[test]
    fn reachability_walks_forward() {
        let src = "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn island() {}\n";
        let g = build(
            &[unit("crates/a/src/lib.rs", "crate-a", src)],
            &CrateDeps::default(),
        );
        let reach = g.reachable_from(&[0]);
        assert_eq!(reach, vec![true, true, true, false]);
    }
}
