//! `faasnap-lint` — in-tree determinism and architecture linting.
//!
//! The reproduction's results are only trustworthy because every run is
//! deterministic: the byte-pinned Perfetto/Prometheus goldens and the
//! fleet-determinism property tests all assume no code path consults
//! wall-clock time, OS randomness, or hash-map iteration order. This
//! crate machine-checks those assumptions (plus the crate layering) so a
//! future perf PR cannot silently break them.
//!
//! Two depths. The **shallow** pass (`lint_workspace`) is the original
//! line lexer: comment/string-aware pattern rules over masked source.
//! The **deep** pass (`lint_workspace_deep`) additionally parses every
//! file into items ([`parse`]), links a workspace call graph
//! ([`callgraph`]), and runs the interprocedural passes ([`taint`]): a
//! wrapper that launders `SystemTime::now()` through two helpers into a
//! golden-emitting public fn is invisible to the line rules but is
//! exactly what `determinism-taint` reports, shortest chain included.
//!
//! Rules:
//!
//! | rule id | depth | what it flags |
//! |---|---|---|
//! | `no-wallclock` | shallow | `Instant::now` / `SystemTime` outside the criterion shim and the faasnap-obs self-profiler |
//! | `no-os-entropy` | shallow | `RandomState`, `thread_rng`-style OS randomness |
//! | `no-threads` | shallow | `thread::spawn` / `thread::sleep` |
//! | `no-unordered-iteration` | shallow | `HashMap` / `HashSet` (unspecified order) |
//! | `unwrap-budget` | shallow | non-test `unwrap()`/`expect(` count above [`UNWRAP_BUDGET`] |
//! | `layering` | shallow | crate-DAG violations (see [`layering::check_layering`]) |
//! | `missing-forbid-unsafe` | shallow | `sim-*`/`faasnap*` crate root without `#![forbid(unsafe_code)]` |
//! | `malformed-allow` | shallow | an allow directive with no reason or unknown rule id |
//! | `no-env-read` | deep | `env::var*` ambient reads in non-harness code |
//! | `determinism-taint` | deep | public fn reaching an unsanctioned nondeterminism source through calls |
//! | `panic-path` | deep | non-test panic sites (`panic!` family, `.expect(`, slice indexing) above [`PANIC_PATH_BUDGET`] |
//! | `float-determinism` | deep | float-keyed maps, `partial_cmp` on golden-reaching paths |
//! | `dead-allow` | deep | an allow directive that no longer suppresses anything |
//!
//! A finding is suppressed with a line comment holding the `faasnap-lint`
//! marker, a colon, and `allow(rule-id, reason)` — the reason is
//! mandatory, and the directive covers its own line plus the next one.
//! Run via `cargo run -p faasnap-lint` or `faasnapd lint [--deep]
//! [--json]`; the repo gate (`scripts/check.sh`) fails on any diagnostic
//! at either depth.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diag;
pub mod layering;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod taint;
pub mod walk;

use std::fs;
use std::path::Path;

pub use diag::Diagnostic;
pub use rules::{lint_source, FileCtx, FileLint, RULE_IDS};
pub use walk::find_workspace_root;

/// Ratchet cap on `unwrap()`/`expect(` call sites in non-test library
/// code. The gate fails when the count exceeds this; when a cleanup PR
/// lowers the real count, lower the cap with it so it never climbs back.
pub const UNWRAP_BUDGET: u64 = 18;

/// Ratchet cap on non-test panic paths: `panic!`-family macros,
/// `.expect(`, and slice-index sites in non-harness, non-`cfg(test)`
/// code. Seeded at the measured baseline when the deep pass landed;
/// ratchet it down as panic paths are converted to `Result`s. Raised
/// 356 → 361 with the snapshot-branching layer (COW overlay range
/// asserts and the fork orchestration paths).
pub const PANIC_PATH_BUDGET: u64 = 361;

/// One source file handed to the deep linter. [`lint_sources_deep`]
/// takes these directly so tests and fixtures can lint in-memory
/// snippets with full call-graph resolution, no filesystem involved.
#[derive(Clone, Debug)]
pub struct SourceUnit {
    /// Workspace-relative path, used in diagnostics.
    pub rel: String,
    /// Owning crate name (layering + resolution).
    pub crate_name: String,
    /// True for bench/test/example harness files (relaxed rules).
    pub is_harness: bool,
    /// True for the crate's `lib.rs`/`main.rs` (forbid-unsafe check).
    pub is_crate_root: bool,
    /// Full file contents.
    pub source: String,
}

/// Result of linting the whole workspace.
#[derive(Clone, Debug)]
pub struct Report {
    /// All findings, sorted and deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test `unwrap()`/`expect(` call sites found.
    pub unwrap_count: u64,
    /// The cap the count is checked against ([`UNWRAP_BUDGET`]).
    pub unwrap_budget: u64,
    /// Non-test panic-path sites (deep mode only; 0 in shallow mode).
    pub panic_path_count: u64,
    /// The cap for the above ([`PANIC_PATH_BUDGET`]).
    pub panic_path_budget: u64,
    /// True when the interprocedural passes ran.
    pub deep: bool,
}

impl Report {
    /// True if the gate should pass.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Machine-readable rendering (`faasnapd lint --json`). Stable,
    /// hand-rolled (this crate depends on nothing but std), newline
    /// terminated, keys in fixed order — safe to pin as a golden.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"faasnap-lint/v1\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if self.deep { "deep" } else { "shallow" }
        ));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!(
            "  \"unwrap\": {{ \"count\": {}, \"budget\": {} }},\n",
            self.unwrap_count, self.unwrap_budget
        ));
        out.push_str(&format!(
            "  \"panic_path\": {{ \"count\": {}, \"budget\": {} }},\n",
            self.panic_path_count, self.panic_path_budget
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}",
                diag::json_escape(&d.path),
                d.line,
                d.rule,
                diag::json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// True for crates whose root must carry `#![forbid(unsafe_code)]`.
fn requires_forbid_unsafe(crate_name: &str) -> bool {
    crate_name.starts_with("sim-") || crate_name == "faasnap" || crate_name.starts_with("faasnap-")
}

/// Reads the workspace into [`SourceUnit`]s.
fn load_units(root: &Path) -> Result<(Vec<SourceUnit>, Vec<layering::Manifest>), String> {
    let ws = walk::discover(root)?;
    let mut units = Vec::with_capacity(ws.files.len());
    for f in &ws.files {
        let source = fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.rel))?;
        units.push(SourceUnit {
            rel: f.rel.clone(),
            crate_name: f.crate_name.clone(),
            is_harness: f.is_harness,
            is_crate_root: f.is_crate_root,
            source,
        });
    }
    Ok((units, ws.manifests))
}

/// Lints the workspace rooted at `root`: layering over the crate DAG,
/// text rules over every source file, the unwrap ratchet, and the
/// forbid-unsafe check on crate roots.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let (units, manifests) = load_units(root)?;
    Ok(lint_sources(&units, &manifests, false))
}

/// [`lint_workspace`] plus the interprocedural passes: parse, call
/// graph, determinism taint, env/panic/float rules, dead-allow.
pub fn lint_workspace_deep(root: &Path) -> Result<Report, String> {
    let (units, manifests) = load_units(root)?;
    Ok(lint_sources(&units, &manifests, true))
}

/// Deep-lints in-memory sources (no layering input). Fixture tests and
/// the stability proptest drive the analyzer through this.
pub fn lint_sources_deep(units: &[SourceUnit]) -> Report {
    lint_sources(units, &[], true)
}

/// Shared driver behind both depths. Lexes each file once; the deep
/// branch reuses the same masked text for parsing so the two depths can
/// never disagree about what is code and what is comment. Units are
/// analyzed in path order regardless of how the caller discovered them,
/// so the report — including taint tie-breaks — is byte-stable under
/// any file-discovery order.
fn lint_sources(units: &[SourceUnit], manifests: &[layering::Manifest], deep: bool) -> Report {
    let units: Vec<&SourceUnit> = {
        let mut v: Vec<&SourceUnit> = units.iter().collect();
        v.sort_by(|a, b| a.rel.cmp(&b.rel));
        v
    };
    let mut diagnostics = layering::check_layering(manifests);
    let mut unwrap_count = 0u64;
    let mut panic_path_count = 0u64;

    let mut scanned_masked: Vec<Vec<String>> = Vec::with_capacity(units.len());
    let mut allows: Vec<Vec<rules::AllowRecord>> = Vec::with_capacity(units.len());
    let mut shallow_diags: Vec<Diagnostic> = Vec::new();

    for u in &units {
        let scanned = lexer::scan(&u.source);
        let ctx = FileCtx {
            path: &u.rel,
            crate_name: &u.crate_name,
            is_harness: u.is_harness,
        };
        let lint = rules::lint_scanned(&ctx, &scanned);
        unwrap_count += lint.unwrap_sites;
        shallow_diags.extend(lint.diagnostics);
        if u.is_crate_root && requires_forbid_unsafe(&u.crate_name) && !lint.has_forbid_unsafe {
            diagnostics.push(Diagnostic::new(
                &u.rel,
                1,
                "missing-forbid-unsafe",
                "crate root must carry #![forbid(unsafe_code)] (the workspace is unsafe-free; \
                 keep it that way)",
            ));
        }
        allows.push(lint.allows);
        scanned_masked.push(scanned.masked_lines);
    }

    if deep {
        let files: Vec<callgraph::FileUnit> = units
            .iter()
            .enumerate()
            .map(|(i, u)| callgraph::FileUnit {
                rel: u.rel.clone(),
                crate_name: u.crate_name.clone(),
                is_harness: u.is_harness,
                parsed: parse::parse_file(&scanned_masked[i]),
            })
            .collect();
        let deps = callgraph::CrateDeps::from_manifests(manifests);
        let findings =
            taint::deep_passes(&files, &scanned_masked, &mut allows, &shallow_diags, &deps);
        panic_path_count = findings.panic_sites;
        diagnostics.extend(findings.diagnostics);
        if panic_path_count > PANIC_PATH_BUDGET {
            diagnostics.push(Diagnostic::new(
                "Cargo.toml",
                1,
                "panic-path",
                format!(
                    "{panic_path_count} non-test panic paths (panic!-family, .expect(, slice \
                     indexing) exceed the budget of {PANIC_PATH_BUDGET}; return a Result, or \
                     consciously raise PANIC_PATH_BUDGET in crates/faasnap-lint/src/lib.rs"
                ),
            ));
        }
    }

    diagnostics.extend(shallow_diags);

    if unwrap_count > UNWRAP_BUDGET {
        diagnostics.push(Diagnostic::new(
            "Cargo.toml",
            1,
            "unwrap-budget",
            format!(
                "{unwrap_count} non-test unwrap()/expect() call sites exceed the budget of \
                 {UNWRAP_BUDGET}; handle the error, or consciously raise UNWRAP_BUDGET in \
                 crates/faasnap-lint/src/lib.rs"
            ),
        ));
    }

    diagnostics.sort();
    diagnostics.dedup();
    Report {
        diagnostics,
        unwrap_count,
        unwrap_budget: UNWRAP_BUDGET,
        panic_path_count,
        panic_path_budget: PANIC_PATH_BUDGET,
        deep,
    }
}
